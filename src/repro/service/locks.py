"""Reader–writer lock manager with timeouts and deadlock detection.

Resources are just strings (the service locks *derivation clusters* —
see :mod:`repro.service.service` — but the manager does not care).
Locks come in two modes:

* ``"shared"`` — many owners may hold it together; blocks exclusive.
* ``"exclusive"`` — a single owner; blocks everything else.

Three properties the chaos soak depends on:

**Bounded waits.** Every :meth:`LockManager.acquire` carries a timeout
(and optionally a :class:`repro.cancel.Deadline`, whichever is
tighter); when it elapses the acquire fails with
:class:`repro.errors.LockTimeout` instead of parking forever. A lock
manager that can hang is a lock manager whose deadlocks you discover
in production.

**Deadlock detection.** Waiters are recorded in a wait-for graph
(owner → owners blocking it); before parking *and* on every wake-up
the would-be waiter runs a depth-first search for a cycle through
itself. Finding one raises :class:`repro.errors.DeadlockDetected`
immediately — the requester is the victim (it is the one that closed
the cycle), and the contract is that it drops everything it holds
(:meth:`LockManager.release_all`) and retries. Detection happens at
the waiter, so no background thread and no grace period.

**Upgrades.** A sole shared holder may acquire the same resource
exclusively (the classic read-modify-write step). Two shared holders
upgrading the same resource deadlock with each other by construction —
each waits for the other's shared release — and the cycle search
reports it; the retry loop in :class:`repro.service.DatabaseService`
then makes one of them back off and redo its read.

Everything is guarded by one mutex: acquisition latency here is
dominated by *waiting*, not by lock-manager bookkeeping, so a single
lock keeps the invariants easy to believe. Each waiter parks on its
own condition variable (sharing that mutex), and a release notifies
only the waiters whose (resource, mode) request may now be grantable
on a just-released resource — not the whole herd. Waits stay sliced at
50ms so a wait-for cycle formed *after* a waiter parked is still
detected within one slice.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterable

from repro.cancel import Deadline
from repro.errors import DeadlockDetected, LockTimeout
from repro.obs.hooks import OBS

__all__ = ["LockManager", "SHARED", "EXCLUSIVE"]

SHARED = "shared"
EXCLUSIVE = "exclusive"


class LockManager:
    """Named reader–writer locks with timeouts, upgrade support and
    waiter-side deadlock detection."""

    def __init__(self, *, default_timeout: float = 5.0) -> None:
        self.default_timeout = default_timeout
        self._mutex = threading.Lock()
        # owner -> the condition it parks on. One per owner, allocated
        # on first wait and reused; all share self._mutex, so the
        # grant-check/park pair stays atomic against releases.
        self._conds: dict[int, threading.Condition] = {}
        # resource -> owner -> hold count (re-entrant shared holds)
        self._shared: dict[str, dict[int, int]] = {}
        # resource -> (owner, hold count)
        self._exclusive: dict[str, tuple[int, int]] = {}
        # owner -> (resource, mode) it is currently parked on
        self._waiting: dict[int, tuple[str, str]] = {}
        # (resource, owner, mode) -> grant time, for hold histograms;
        # populated only while OBS is enabled, popped defensively so a
        # mid-run toggle cannot leak entries.
        self._held_since: dict[tuple[str, int, str], float] = {}

    # -- grant rules --------------------------------------------------------

    def _may_grant(self, resource: str, mode: str, owner: int) -> bool:
        exclusive = self._exclusive.get(resource)
        if exclusive is not None and exclusive[0] != owner:
            return False
        if mode == SHARED:
            return True
        holders = self._shared.get(resource)
        if holders and any(other != owner for other in holders):
            return False  # other readers in — no upgrade past them
        return True

    def _blockers(self, resource: str, mode: str, owner: int) -> set[int]:
        """Owners currently preventing the grant."""
        blockers: set[int] = set()
        exclusive = self._exclusive.get(resource)
        if exclusive is not None and exclusive[0] != owner:
            blockers.add(exclusive[0])
        if mode == EXCLUSIVE:
            for other in self._shared.get(resource, ()):
                if other != owner:
                    blockers.add(other)
        return blockers

    def _deadlocked(self, start: int, resource: str, mode: str) -> bool:
        """DFS over the wait-for graph: does waiting here close a cycle
        through ``start``?"""
        stack = list(self._blockers(resource, mode, start))
        seen: set[int] = set()
        while stack:
            owner = stack.pop()
            if owner == start:
                return True
            if owner in seen:
                continue
            seen.add(owner)
            waiting_on = self._waiting.get(owner)
            if waiting_on is not None:
                stack.extend(self._blockers(waiting_on[0],
                                            waiting_on[1], owner))
        return False

    # -- public API ---------------------------------------------------------

    def acquire(self, resource: str, mode: str = SHARED, *,
                owner: int | None = None,
                timeout: float | None = None,
                deadline: Deadline | None = None) -> None:
        """Acquire ``resource`` in ``mode`` or raise.

        Raises :class:`LockTimeout` when ``timeout`` (or the tighter
        ``deadline``) elapses first, :class:`DeadlockDetected` when
        waiting would close a wait-for cycle. Re-entrant per owner:
        each successful acquire needs a matching :meth:`release`.
        """
        if mode not in (SHARED, EXCLUSIVE):
            raise ValueError(f"unknown lock mode {mode!r}")
        me = threading.get_ident() if owner is None else owner
        limit = self.default_timeout if timeout is None else timeout
        if deadline is not None:
            limit = min(limit, max(deadline.remaining(), 0.0))
        expires = time.monotonic() + limit
        started = time.monotonic()
        with self._mutex:
            if (OBS.enabled and mode == EXCLUSIVE
                    and me in self._shared.get(resource, ())):
                OBS.inc("service.lock.upgrades")
            while True:
                if self._may_grant(resource, mode, me):
                    self._grant(resource, mode, me)
                    if OBS.enabled:
                        waited = time.monotonic() - started
                        OBS.observe("service.lock.wait_seconds", waited)
                        OBS.observe_log(
                            f"service.lock.wait.{mode}.{resource}",
                            waited,
                        )
                    return
                if self._deadlocked(me, resource, mode):
                    if OBS.enabled:
                        OBS.inc("service.lock.deadlocks")
                        OBS.event("lock.deadlock", resource=resource,
                                  mode=mode)
                    raise DeadlockDetected(
                        f"waiting for {resource!r} ({mode}) would "
                        f"deadlock; dropping locks and retrying is "
                        f"required"
                    )
                remaining = expires - time.monotonic()
                if remaining <= 0:
                    if OBS.enabled:
                        OBS.inc("service.lock.timeouts")
                        OBS.event("lock.timeout", resource=resource,
                                  mode=mode)
                    raise LockTimeout(
                        f"could not acquire {resource!r} ({mode}) "
                        f"within {limit:.3f}s"
                    )
                cond = self._conds.get(me)
                if cond is None:
                    cond = self._conds[me] = threading.Condition(
                        self._mutex
                    )
                self._waiting[me] = (resource, mode)
                if OBS.enabled:
                    OBS.gauge("service.lock.waiters", len(self._waiting))
                try:
                    # Sliced, not open-ended: the 50ms cap doubles as
                    # the deadlock-detection cadence for cycles formed
                    # while parked, and as insurance against a wakeup
                    # this manager's targeted notify did not foresee.
                    cond.wait(min(remaining, 0.05))
                finally:
                    self._waiting.pop(me, None)
                    if OBS.enabled:
                        OBS.gauge("service.lock.waiters",
                                  len(self._waiting))

    def _grant(self, resource: str, mode: str, owner: int) -> None:
        if mode == SHARED:
            holders = self._shared.setdefault(resource, {})
            fresh = owner not in holders
            holders[owner] = holders.get(owner, 0) + 1
        else:
            current = self._exclusive.get(resource)
            fresh = current is None or current[0] != owner
            if not fresh:
                self._exclusive[resource] = (owner, current[1] + 1)
            else:
                self._exclusive[resource] = (owner, 1)
        if fresh and OBS.enabled:
            self._held_since[(resource, owner, mode)] = time.monotonic()

    def _note_released(self, resource: str, owner: int,
                       mode: str) -> None:
        """The owner's last hold on ``resource`` just went away; feed
        the per-cluster hold-time histogram. Caller holds ``_mutex``."""
        since = self._held_since.pop((resource, owner, mode), None)
        if since is not None and OBS.enabled:
            OBS.observe_log(f"service.lock.hold.{mode}.{resource}",
                            time.monotonic() - since)

    def _wake(self, released: Iterable[str]) -> None:
        """Notify exactly the waiters whose parked (resource, mode)
        request may now be grantable on a just-released resource.
        Caller holds ``_mutex``. Waking a waiter does not reserve the
        grant — the woken thread re-runs :meth:`_may_grant` itself, so
        two compatible wakeups racing stays correct (the loser simply
        re-parks); what this avoids is the notify_all herd where every
        waiter on every resource stampedes the mutex per release."""
        targets = set(released)
        woken = 0
        for owner, (resource, mode) in self._waiting.items():
            if resource not in targets:
                continue
            if not self._may_grant(resource, mode, owner):
                continue
            cond = self._conds.get(owner)
            if cond is not None:
                cond.notify()
                woken += 1
        if woken and OBS.enabled:
            OBS.inc("service.lock.wakeups", woken)

    def release(self, resource: str, mode: str = SHARED, *,
                owner: int | None = None) -> None:
        """Release one hold; raises ``RuntimeError`` on a hold the
        owner does not have (always a caller bug worth hearing about)."""
        me = threading.get_ident() if owner is None else owner
        with self._mutex:
            if mode == SHARED:
                holders = self._shared.get(resource)
                if not holders or me not in holders:
                    raise RuntimeError(
                        f"releasing {resource!r} (shared) not held by "
                        f"owner {me}"
                    )
                holders[me] -= 1
                if holders[me] == 0:
                    del holders[me]
                    self._note_released(resource, me, SHARED)
                if not holders:
                    del self._shared[resource]
            else:
                current = self._exclusive.get(resource)
                if current is None or current[0] != me:
                    raise RuntimeError(
                        f"releasing {resource!r} (exclusive) not held "
                        f"by owner {me}"
                    )
                if current[1] > 1:
                    self._exclusive[resource] = (me, current[1] - 1)
                else:
                    del self._exclusive[resource]
                    self._note_released(resource, me, EXCLUSIVE)
            self._wake((resource,))

    def release_all(self, owner: int | None = None) -> None:
        """Drop every hold of ``owner`` — the deadlock victim's exit."""
        me = threading.get_ident() if owner is None else owner
        with self._mutex:
            released: list[str] = []
            for resource in [r for r, holders in self._shared.items()
                             if me in holders]:
                holders = self._shared[resource]
                del holders[me]
                self._note_released(resource, me, SHARED)
                if not holders:
                    del self._shared[resource]
                released.append(resource)
            for resource in [r for r, (o, _) in self._exclusive.items()
                             if o == me]:
                del self._exclusive[resource]
                self._note_released(resource, me, EXCLUSIVE)
                released.append(resource)
            self._wake(released)

    @contextmanager
    def held(self, resources: Iterable[str], mode: str = SHARED, *,
             owner: int | None = None, timeout: float | None = None,
             deadline: Deadline | None = None):
        """Hold several resources for a block, acquiring in sorted
        order (a global order means two lock *sets* cannot deadlock
        each other; upgrades still can, which is what the cycle search
        is for). On any failure, locks taken so far are released."""
        ordered = sorted(set(resources))
        taken: list[str] = []
        try:
            for resource in ordered:
                self.acquire(resource, mode, owner=owner,
                             timeout=timeout, deadline=deadline)
                taken.append(resource)
            yield
        finally:
            for resource in reversed(taken):
                self.release(resource, mode, owner=owner)

    # -- introspection ------------------------------------------------------

    def holders(self, resource: str) -> dict[str, tuple[int, ...]]:
        """Who holds ``resource`` right now (for tests and debugging)."""
        with self._mutex:
            shared = tuple(self._shared.get(resource, ()))
            exclusive = self._exclusive.get(resource)
            return {
                "shared": shared,
                "exclusive": (exclusive[0],) if exclusive else (),
            }
