"""Retry with capped exponential backoff and seeded jitter.

The taxonomy matters more than the loop: a retry policy is a statement
about *which failures are expected to pass*. Lock timeouts and
deadlock victims pass once the contending writer commits;
``faults.TransientError`` (surfaced as ``OSError``) and the WAL's
:class:`~repro.errors.PersistenceError` pass once the device recovers.
Schema errors, constraint violations and deadline expiry do not pass
— retrying them burns the caller's remaining deadline for nothing, so
they propagate immediately.

Jitter comes from an injected :class:`random.Random` so that a soak
run's backoff schedule is reproducible from its seed, and so that a
thundering herd of identical workers does not resubmit in lockstep.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro.cancel import Deadline
from repro.errors import DeadlockDetected, LockTimeout

__all__ = ["RetryPolicy", "DEFAULT_RETRYABLE"]

DEFAULT_RETRYABLE: tuple[type[BaseException], ...] = (
    LockTimeout,
    DeadlockDetected,
    OSError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff: attempt *n* (0-based) sleeps
    ``min(base_delay * multiplier**n, max_delay)`` plus a uniform
    jitter in ``[0, jitter]`` seconds."""

    max_attempts: int = 4
    base_delay: float = 0.005
    max_delay: float = 0.25
    multiplier: float = 2.0
    jitter: float = 0.005
    retryable: tuple[type[BaseException], ...] = DEFAULT_RETRYABLE

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0 or self.jitter < 0:
            raise ValueError("delays must be >= 0")

    def is_retryable(self, exc: BaseException) -> bool:
        return isinstance(exc, self.retryable)

    def delay(self, attempt: int, rng: random.Random | None = None) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        pause = min(self.base_delay * (self.multiplier ** attempt),
                    self.max_delay)
        if self.jitter and rng is not None:
            pause += rng.uniform(0.0, self.jitter)
        return pause

    def run(self, fn, *, rng: random.Random | None = None,
            deadline: Deadline | None = None,
            on_retry=None):
        """Call ``fn()`` under this policy.

        Non-retryable failures propagate at once; retryable ones are
        retried up to ``max_attempts`` total calls, backing off in
        between. A ``deadline`` bounds the whole affair: no retry is
        *started* once it has expired, and sleeps are clipped to the
        time remaining (better to attempt with a sliver of budget than
        to sleep through it). ``on_retry(attempt, exc)`` is called
        before each backoff — the service uses it to drop locks and
        count retries.
        """
        attempt = 0
        while True:
            try:
                return fn()
            except BaseException as exc:
                if not self.is_retryable(exc):
                    raise
                if attempt >= self.max_attempts - 1:
                    raise
                if deadline is not None and deadline.expired:
                    raise
                if on_retry is not None:
                    on_retry(attempt, exc)
                pause = self.delay(attempt, rng)
                if deadline is not None:
                    pause = min(pause, max(deadline.remaining(), 0.0))
                if pause > 0:
                    time.sleep(pause)
                attempt += 1
