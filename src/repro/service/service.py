"""The thread-safe execution layer over :class:`FunctionalDatabase`.

The engine beneath is strictly single-caller: one ``DEL`` on a derived
function fans out NC/NVC side-effects, and :class:`Transaction`'s
snapshot/restore covers the *whole* instance (all tables plus the
global NC and null counters). :class:`DatabaseService` makes that
engine safe to share:

**Locking.** Functions partition into *derivation clusters* — the
connected components of the graph joining every derived function to
the bases of its derivations. All of an update's side-effects stay
inside its cluster: a base update touches its own table and NCs whose
conjuncts are facts of sibling bases in some derivation (same
component by construction); a derived update walks chains of exactly
those bases. Reads take their clusters shared; writes take theirs
exclusive, so readers of disjoint clusters never contend and a reader
never observes a half-propagated NC set.

**Write serialisation.** Writers additionally hold the global
``__write__`` resource. This is not timidity but the rollback model:
a transaction abort restores *every* table and the *global* counters,
which would clobber a concurrent writer's committed work; and the
null/NC indices a replay allocates must match the live run's, which
only a total commit order guarantees. Writes to different clusters
therefore serialise, while reads run concurrently with each other and
with writes to other clusters. The payoff is the soak harness's
oracle: final state ≡ *exact* sequential replay of the committed-op
log, byte for byte, indexed nulls included.

**Degradation.** Admission (bounded queue, shedding) in front;
deadlines (cooperative cancellation through chain enumeration,
propagation and WAL appends) within; retry with capped backoff around
lock timeouts, deadlock victims and transient storage errors; a
circuit breaker that converts a dead log device into fast
:class:`ServiceReadOnly` rejections instead of a convoy; and a drain
that stops admissions, waits the executing tail out, and leaves the
database consistent.

**Telemetry.** Every public operation runs as one *request*: a fresh
request id, a ``service.request`` span under which admission wait
(``service.admission``), lock acquisition (``service.locks`` —
acquisition only, not the hold), retry attempts (``service.attempt``),
engine execution (``service.engine``) and the WAL commit
(``wal.commit``) nest, emitted as typed event records that
:func:`repro.obs.events.propagation_dag` joins to the update
propagation DAG. On completion the request feeds the per-family RED
instruments (``service.red.<family>.{requests,errors,duration_seconds}``)
and the service's :class:`repro.obs.slo.SLOMonitor`; the span's end
record is stamped ``committed=True`` exactly when the operation landed
in :meth:`DatabaseService.committed_ops` — the invariant the chaos
soak checks. :meth:`DatabaseService.serve_metrics` exposes all of it
live over HTTP.
"""

from __future__ import annotations

import itertools
import random
import threading
import time
from contextlib import ExitStack, contextmanager
from pathlib import Path
from typing import Callable, Iterable

from repro.cancel import Deadline, deadline_scope
from repro.errors import (DeadlockDetected, LockTimeout, PersistenceError,
                          ReplicationError, ServiceOverloaded)
from repro.fdb import wal as wal_module
from repro.fdb.database import FunctionalDatabase
from repro.fdb.logic import Truth
from repro.fdb.transaction import Transaction
from repro.fdb.updates import Update, UpdateSequence, apply_update
from repro.fdb.values import Value
from repro.obs.endpoint import MetricsEndpoint
from repro.obs.hooks import OBS
from repro.obs.slo import (Objective, SLOMonitor,
                           replication_lag_objective)
from repro.service.admission import AdmissionGate
from repro.service.breaker import OPEN, CircuitBreaker
from repro.service.locks import EXCLUSIVE, SHARED, LockManager
from repro.service.retry import DEFAULT_RETRYABLE, RetryPolicy

__all__ = ["DatabaseService", "WRITE_RESOURCE", "clusters_of"]

# Sorts before every "fn:..." cluster resource, so the lock manager's
# sorted acquisition order is: write token first, then clusters.
WRITE_RESOURCE = "__write__"

_WRITE_RETRYABLE = DEFAULT_RETRYABLE + (PersistenceError,)


def clusters_of(db: FunctionalDatabase) -> dict[str, str]:
    """function name -> cluster resource, by union-find over each
    derived function joined with the bases of its derivations."""
    parent: dict[str, str] = {}

    def find(name: str) -> str:
        root = name
        while parent.setdefault(root, root) != root:
            root = parent[root]
        while parent[name] != root:  # path compression
            parent[name], name = root, parent[name]
        return root

    def union(a: str, b: str) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[max(ra, rb)] = min(ra, rb)

    for name in db.base_names:
        find(name)
    for derived in db.derived_functions():
        find(derived.name)
        for derivation in derived.derivations:
            for step in derivation.steps:
                union(derived.name, step.function.name)
    return {name: f"fn:{find(name)}" for name in parent}


def _touched(update: Update | UpdateSequence) -> set[str]:
    if isinstance(update, UpdateSequence):
        return {simple.function for simple in update}
    return {update.function}


class DatabaseService:
    """Concurrent front door for one :class:`FunctionalDatabase`.

    With ``log`` attached, writes go through the write-ahead wrapper
    (:class:`repro.fdb.wal.LoggedDatabase`) and the circuit breaker
    guards the storage path; without one, writes still serialise and
    roll back on failure, but nothing is durable.
    """

    def __init__(
        self,
        db: FunctionalDatabase,
        *,
        log: wal_module.UpdateLog | str | Path | None = None,
        lock_timeout: float = 1.0,
        shard: int | None = None,
        default_deadline: float | None = None,
        retry: RetryPolicy | None = None,
        max_concurrent: int = 8,
        max_queue: int = 16,
        queue_timeout: float = 1.0,
        breaker: CircuitBreaker | None = None,
        objectives: Iterable[Objective] | None = None,
        replication=None,
        node: str = "primary",
        staleness_max_lag_seq: int | None = None,
        staleness_max_lag_seconds: float | None = None,
        seed: int = 0,
    ) -> None:
        self.db = db
        self.logged: wal_module.LoggedDatabase | None = None
        if log is not None:
            self.logged = wal_module.LoggedDatabase(db, log)
        self.locks = LockManager(default_timeout=lock_timeout)
        self.lock_timeout = lock_timeout
        self.default_deadline = default_deadline
        self.retry = retry or RetryPolicy(retryable=_WRITE_RETRYABLE)
        self.gate = AdmissionGate(max_concurrent=max_concurrent,
                                  max_queue=max_queue,
                                  queue_timeout=queue_timeout)
        self.breaker = breaker or CircuitBreaker()
        self.slo = SLOMonitor(
            tuple(objectives) if objectives is not None else None
        )
        self.endpoint: MetricsEndpoint | None = None
        self._rng = random.Random(seed)
        self._rng_lock = threading.Lock()
        # The cluster map is derived purely from the schema, so it is
        # cached against the database's schema_version and rebuilt only
        # when a declaration actually changed the schema — never on an
        # unknown-name probe (which used to re-run the union-find).
        self._cluster_of = clusters_of(db)
        self._cluster_version = db.schema_version
        # When this service is one lane of a ShardedDatabaseService
        # (see repro.shard), ``shard`` labels its telemetry
        # (service.shard.<i>.*) and ``cross_markers`` journals the
        # global ordering tokens of multi-shard writes as
        # (marker, committed-log index) pairs — strictly increasing in
        # both coordinates, which is what keeps this lane's replay
        # oracle sequential.
        self.shard = shard
        self.cross_markers: list[tuple[int, int]] = []
        # Commit-ordered log of every update this service applied;
        # appended while the writer still holds __write__, so replaying
        # it sequentially reproduces the live state exactly.
        self.committed: list[Update | UpdateSequence] = []
        self._committed_lock = threading.Lock()
        # Replication: attach this service as the group's primary and
        # hold the term token its write path must present on every
        # commit. ``acked`` is the subset of ``committed`` whose
        # replication quota was met — the ops a failover must never
        # lose — as (wal seq, update) pairs in ack order.
        self.replication = replication
        self.node = node
        self.staleness_max_lag_seq = staleness_max_lag_seq
        self.staleness_max_lag_seconds = staleness_max_lag_seconds
        self.acked: list[tuple[int, Update | UpdateSequence]] = []
        self._acked_lock = threading.Lock()
        self._repl_term: int | None = None
        if replication is not None:
            if self.logged is None:
                raise ReplicationError(
                    "replication requires a write-ahead log"
                )
            self._repl_term = replication.attach_primary(
                self.logged, node=node
            )
            # Snapshot catch-up dumps run while the write token is
            # held exclusively, so no commit lands mid-dump.
            replication.exclusive = lambda: self.locks.held(
                (WRITE_RESOURCE,), EXCLUSIVE, timeout=self.lock_timeout
            )
            # Lag SLO: probe the group's worst applied-seq lag at
            # every evaluation; a sustained breach turns ``/health``
            # into a 503 like any other alerting objective. Explicit
            # objective lists stay as given — only the default set is
            # widened for a replicated service.
            if objectives is None:
                self.slo.add_objective(replication_lag_objective())
                self.slo.set_probe("replication.lag",
                                   replication.worst_lag_seq)
            else:
                for objective in self.slo.objectives:
                    if objective.kind == "replication_lag":
                        self.slo.set_probe(objective.name,
                                           replication.worst_lag_seq)
        self._stats_lock = threading.Lock()
        self._stats = {
            "reads": 0, "writes": 0, "retries": 0, "deadlocks": 0,
            "lock_timeouts": 0, "cancelled": 0, "checkpoints": 0,
        }

    # -- plumbing -----------------------------------------------------------

    def _bump(self, key: str, by: int = 1) -> None:
        with self._stats_lock:
            self._stats[key] += by

    def _deadline(self, deadline: Deadline | float | None) -> Deadline | None:
        if deadline is None:
            if self.default_deadline is None:
                return None
            return Deadline(self.default_deadline)
        if isinstance(deadline, Deadline):
            return deadline
        return Deadline(deadline)

    @contextmanager
    def _request(self, family: str):
        """One caller-visible operation, instrumented end to end.

        Opens the ``service.request`` span (fresh request id, operation
        family) under which admission, lock acquisition, retry attempts
        and engine spans nest; on the way out feeds the RED instruments
        (``service.red.<family>.*``) and the SLO monitor, classifying
        the outcome: shed (:class:`ServiceOverloaded`), error (any
        other raise), or success. The yielded scope's ``attrs`` dict is
        live — callers stamp ``committed=True`` once the write landed,
        and the ``span.end`` record carries it (the chaos soak matches
        those records against ``committed_ops()``).
        """
        started = time.perf_counter()
        scope = OBS.span(
            "service.request", key=family,
            request=OBS.new_request_id() if OBS.enabled else None,
            family=family, committed=False,
        )
        error = shed = False
        try:
            with scope:
                yield scope
        except ServiceOverloaded:
            error = shed = True
            raise
        except BaseException:
            error = True
            raise
        finally:
            elapsed = time.perf_counter() - started
            self.slo.record(family, elapsed, error=error, shed=shed)
            if OBS.enabled:
                OBS.inc(f"service.red.{family}.requests")
                if error:
                    OBS.inc(f"service.red.{family}.errors")
                OBS.observe_log(
                    f"service.red.{family}.duration_seconds", elapsed
                )
                if self.shard is not None:
                    prefix = f"service.shard.{self.shard}"
                    OBS.inc(f"{prefix}.requests")
                    if error:
                        OBS.inc(f"{prefix}.errors")
                    OBS.observe_log(
                        f"{prefix}.duration_seconds", elapsed
                    )
            self.slo.maybe_evaluate()

    def cluster_of(self, name: str) -> str:
        """The lock resource guarding ``name`` (exposed for tests)."""
        if self.db.schema_version != self._cluster_version:
            # A function was declared after the map was built. Schema
            # changes are rare and single-threaded by convention, so
            # rebuilding the whole map is fine; unknown names no
            # longer trigger a rebuild (they raise KeyError directly).
            self._cluster_of = clusters_of(self.db)
            self._cluster_version = self.db.schema_version
        return self._cluster_of[name]

    def _clusters_for(self, names: Iterable[str]) -> set[str]:
        return {self.cluster_of(name) for name in names}

    # -- reads --------------------------------------------------------------

    def read(self, names: Iterable[str],
             fn: Callable[[FunctionalDatabase], object], *,
             deadline: Deadline | float | None = None) -> object:
        """Run ``fn(db)`` while the clusters of ``names`` are held
        shared. ``fn`` must not mutate."""
        limit = self._deadline(deadline)
        with self._request("read"):
            with OBS.span("service.admission"):
                self.gate.enter(deadline=limit)
            try:
                self._bump("reads")
                if OBS.enabled:
                    OBS.inc("service.reads")
                with ExitStack() as stack:
                    # The span covers *acquisition only*: the stack
                    # keeps the locks held for the body, so wait time
                    # and work time stay separable in the trace.
                    with OBS.span("service.locks", mode=SHARED):
                        stack.enter_context(self.locks.held(
                            self._clusters_for(names), SHARED,
                            timeout=self.lock_timeout, deadline=limit,
                        ))
                    with OBS.span("service.engine"):
                        with deadline_scope(limit):
                            return fn(self.db)
            finally:
                self.gate.leave()

    def truth_of(self, name: str, x: Value, y: Value, *,
                 deadline: Deadline | float | None = None) -> Truth:
        return self.read(
            (name,), lambda db: db.truth_of(name, x, y),
            deadline=deadline,
        )

    def extension(self, name: str, *,
                  deadline: Deadline | float | None = None):
        return self.read(
            (name,), lambda db: db.extension(name), deadline=deadline,
        )

    def read_replica(self, fn: Callable[[FunctionalDatabase], object],
                     *, max_lag_seq: int | None = None,
                     max_lag_seconds: float | None = None) -> object:
        """Serve ``fn(db)`` from a replica within the bounded-staleness
        window instead of the primary (offloads derived-function
        queries). Defaults to the service's configured staleness
        bounds; raises :class:`repro.errors.StalenessUnserved` when no
        replica qualifies and :class:`ReplicationError` when the
        service is unreplicated."""
        if self.replication is None:
            raise ReplicationError("service has no replication group")
        if max_lag_seq is None:
            max_lag_seq = self.staleness_max_lag_seq
        if max_lag_seconds is None:
            max_lag_seconds = self.staleness_max_lag_seconds
        with self._request("replica_read"):
            self._bump("reads")
            if OBS.enabled:
                OBS.inc("service.replica_reads")
            return self.replication.read(
                fn, max_lag_seq=max_lag_seq,
                max_lag_seconds=max_lag_seconds,
            )

    # -- writes -------------------------------------------------------------

    def execute(self, update: Update | UpdateSequence, *,
                deadline: Deadline | float | None = None) -> None:
        """Apply one update (or atomic sequence), durably when a log
        is attached. Retries lock timeouts, deadlock victimhood and
        transient storage failures under the service's
        :class:`RetryPolicy`; raises the final error when the policy
        gives up."""
        limit = self._deadline(deadline)
        clusters = self._clusters_for(_touched(update))
        with self._request("execute") as req:
            with OBS.span("service.admission"):
                self.gate.enter(deadline=limit)
            try:
                self._bump("writes")
                if OBS.enabled:
                    OBS.inc("service.writes")
                attempts = itertools.count(1)

                def once() -> int | None:
                    with OBS.span("service.attempt",
                                  attempt=next(attempts)):
                        return self._write_once(update, clusters, limit)

                seq = self.retry.run(
                    once,
                    rng=self._locked_rng(),
                    deadline=limit,
                    on_retry=self._on_retry,
                )
                req.attrs["committed"] = True
                # Replication ack wait runs after the span is stamped
                # and outside any locks: the op is committed locally
                # either way; a missed quota surfaces as
                # ReplicationTimeout without un-committing anything.
                self._replication_ack(seq, update)
            finally:
                self.gate.leave()

    def _locked_rng(self) -> random.Random:
        # random.Random is internally consistent enough for jitter, but
        # seed-reproducibility wants serialized draws.
        return _LockedRandom(self._rng, self._rng_lock)

    def _on_retry(self, attempt: int, exc: BaseException) -> None:
        self._bump("retries")
        if OBS.enabled:
            OBS.inc("service.retries")
            OBS.event("service.retry", attempt=attempt,
                      error=type(exc).__name__)
        if isinstance(exc, DeadlockDetected):
            self._bump("deadlocks")
            # The victim contract: drop everything before backing off.
            self.locks.release_all()
        elif isinstance(exc, LockTimeout):
            self._bump("lock_timeouts")

    def _write_once(self, update: Update | UpdateSequence,
                    clusters: set[str],
                    limit: Deadline | None) -> int | None:
        """One write attempt; returns the WAL sequence number of the
        commit (None without a log)."""
        # Leaderless fast-fail: with a lapsed leadership lease there is
        # no point queueing behind the write lock — surface the
        # self-demotion (LeaseExpired: a StalePrimary *and* a
        # ServiceReadOnly) before taking anything. The fence in
        # apply_prelocked still guards the logged path itself.
        if self.replication is not None and self.replication.leaderless():
            self.replication.check_primary(self._repl_term)
        gated = self.logged is not None
        if gated:
            self.breaker.allow()
        settled = False
        try:
            with ExitStack() as stack:
                with OBS.span("service.locks", mode=EXCLUSIVE,
                              resources=len(clusters) + 1):
                    stack.enter_context(self.locks.held(
                        {WRITE_RESOURCE} | clusters, EXCLUSIVE,
                        timeout=self.lock_timeout, deadline=limit,
                    ))
                settled = True
                return self.apply_prelocked(update, limit=limit,
                                            gated=gated)
        finally:
            # The attempt died before reaching the storage path (lock
            # timeout, deadlock victimhood): return the probe slot.
            if gated and not settled:
                self.breaker.release_probe()

    def apply_prelocked(self, update: Update | UpdateSequence, *,
                        limit: Deadline | None = None,
                        marker: int | None = None,
                        gated: bool | None = None) -> int | None:
        """Apply one update while the caller already holds this
        service's write token (and the update's clusters) exclusively.

        The commit tail shared by every write path: epoch fence, engine
        apply (WAL-logged or in-memory transactional), committed-log
        append, and replication journaling. The sharded facade's
        multi-shard lane (:mod:`repro.shard`) calls this directly after
        acquiring every involved lane's ``__write__`` token in sorted
        shard-id order. ``gated=None`` runs the breaker's full
        allow→verdict cycle here; callers that already spent
        :meth:`CircuitBreaker.allow` pass the gating verdict they
        computed. ``marker`` journals a cross-shard ordering token
        against the committed-log index. Returns the WAL sequence of
        the commit (None without a log)."""
        if gated is None:
            gated = self.logged is not None
            if gated:
                self.breaker.allow()
        storage_verdict = False
        seq: int | None = None
        try:
            # The epoch fence, checked while holding __write__ and
            # before the WAL append: a deposed primary's write is
            # rejected here (StalePrimary), never logged.
            if self.replication is not None:
                self.replication.check_primary(self._repl_term)
            with deadline_scope(limit):
                with OBS.span("service.engine"):
                    if self.logged is not None:
                        try:
                            seq = self.logged.execute(update)
                        except (OSError, PersistenceError) as exc:
                            storage_verdict = True
                            self.breaker.record_failure(exc)
                            raise
                        storage_verdict = True
                        self.breaker.record_success()
                    else:
                        with Transaction(self.db):
                            if isinstance(update, UpdateSequence):
                                for simple in update:
                                    apply_update(self.db, simple)
                            else:
                                apply_update(self.db, update)
            # Still holding __write__: commit order == list order.
            with self._committed_lock:
                self.committed.append(update)
                if marker is not None:
                    self.cross_markers.append(
                        (marker, len(self.committed) - 1)
                    )
            if OBS.enabled and self.shard is not None:
                OBS.gauge(f"service.shard.{self.shard}.committed",
                          len(self.committed))
            if self.replication is not None and seq is not None:
                # Journal for the shipped-stream oracle before a
                # checkpoint can fold the record away.
                self.replication.note_commit(seq)
            return seq
        finally:
            if gated and not storage_verdict:
                self.breaker.release_probe()

    def _replication_ack(self, seq: int | None,
                         update: Update | UpdateSequence) -> None:
        """Ship the commit and wait out the group's commit mode; on
        success record the op as replication-acknowledged."""
        if self.replication is None or seq is None:
            return
        ack = self.replication.on_commit(seq)
        with self._acked_lock:
            self.acked.append((seq, update))
        if OBS.enabled:
            # The audit timeline's commit entry: emitted inside the
            # request span, so the commit hangs off its pipeline in
            # the folded DAG and carries the term it was acked under.
            OBS.action("replication.commit_acked", seq=seq,
                       term=self._repl_term, acks=ack.get("acks"),
                       mode=ack.get("mode"), node=self.node)

    def insert(self, name: str, x: Value, y: Value, *,
               deadline: Deadline | float | None = None) -> None:
        self.execute(Update.ins(name, x, y), deadline=deadline)

    def delete(self, name: str, x: Value, y: Value, *,
               deadline: Deadline | float | None = None) -> None:
        self.execute(Update.delete(name, x, y), deadline=deadline)

    def replace(self, name: str, old: tuple[Value, Value],
                new: tuple[Value, Value], *,
                deadline: Deadline | float | None = None) -> None:
        self.execute(Update.rep(name, old, new), deadline=deadline)

    # -- read-modify-write --------------------------------------------------

    def read_modify_write(
        self,
        names: Iterable[str],
        build: Callable[[FunctionalDatabase], Update | UpdateSequence | None],
        *,
        deadline: Deadline | float | None = None,
    ) -> Update | UpdateSequence | None:
        """Read under shared locks, build an update from what was seen,
        upgrade to exclusive, apply atomically.

        The upgrade is the textbook deadlock generator (two holders of
        the same shared cluster upgrading at once wait on each other);
        the lock manager detects the cycle and this method's retry
        drops everything and redoes the *read*, so the update is always
        built from state it still holds the locks for. Returns the
        update applied, or None when ``build`` declined."""
        limit = self._deadline(deadline)
        name_list = tuple(names)
        with self._request("rmw") as req:
            with OBS.span("service.admission"):
                self.gate.enter(deadline=limit)
            try:
                self._bump("writes")
                if OBS.enabled:
                    OBS.inc("service.rmw")
                attempts = itertools.count(1)

                def once():
                    with OBS.span("service.attempt",
                                  attempt=next(attempts)):
                        return self._rmw_once(name_list, build, limit)

                result = self.retry.run(
                    once,
                    rng=self._locked_rng(),
                    deadline=limit,
                    on_retry=self._on_retry,
                )
                if result is None:
                    return None
                applied, seq = result
                req.attrs["committed"] = True
                self._replication_ack(seq, applied)
                return applied
            finally:
                self.gate.leave()

    def _rmw_once(self, names: tuple[str, ...], build,
                  limit: Deadline | None):
        # Same leaderless fast-fail as _write_once, before any lock.
        if self.replication is not None and self.replication.leaderless():
            self.replication.check_primary(self._repl_term)
        clusters = self._clusters_for(names)
        me = threading.get_ident()
        try:
            with ExitStack() as read_stack:
                with OBS.span("service.locks", mode=SHARED):
                    read_stack.enter_context(self.locks.held(
                        clusters, SHARED,
                        timeout=self.lock_timeout, deadline=limit,
                    ))
                with deadline_scope(limit):
                    update = build(self.db)
                if update is None:
                    return None
                extra = self._clusters_for(_touched(update)) - clusters
                # Upgrade: exclusive on top of our shared holds. This
                # breaks the sorted-order discipline on purpose — the
                # resulting deadlocks are detected, not prevented, and
                # the retry redoes the read.
                gated = self.logged is not None
                if gated:
                    self.breaker.allow()
                settled = False
                try:
                    with ExitStack() as write_stack:
                        with OBS.span("service.locks", mode=EXCLUSIVE,
                                      upgrade=True):
                            write_stack.enter_context(self.locks.held(
                                {WRITE_RESOURCE} | clusters | extra,
                                EXCLUSIVE,
                                timeout=self.lock_timeout,
                                deadline=limit,
                            ))
                        settled = True
                        seq = self.apply_prelocked(update, limit=limit,
                                                   gated=gated)
                    return update, seq
                finally:
                    if gated and not settled:
                        self.breaker.release_probe()
        except BaseException:
            # A deadlock victim (or timeout) may have left partial
            # holds from the inner held(); drop everything we own.
            self.locks.release_all(me)
            raise

    # -- checkpoint ---------------------------------------------------------

    def checkpoint(self, snapshot_path: str | Path) -> None:
        """Fold the WAL into a snapshot while holding the write token
        (no writer can be mid-append), leaving readers undisturbed."""
        if self.logged is None:
            raise PersistenceError("no update log attached")
        with self._request("checkpoint"):
            with OBS.span("service.admission"):
                self.gate.enter()
            try:
                self._bump("checkpoints")
                self.breaker.allow()
                verdict = False
                try:
                    with ExitStack() as stack:
                        with OBS.span("service.locks", mode=EXCLUSIVE):
                            stack.enter_context(self.locks.held(
                                (WRITE_RESOURCE,), EXCLUSIVE,
                                timeout=self.lock_timeout,
                            ))
                        try:
                            wal_module.checkpoint(self.logged,
                                                  snapshot_path)
                        except (OSError, PersistenceError) as exc:
                            verdict = True
                            self.breaker.record_failure(exc)
                            raise
                        verdict = True
                        self.breaker.record_success()
                finally:
                    if not verdict:
                        self.breaker.release_probe()
            finally:
                self.gate.leave()

    # -- shutdown -----------------------------------------------------------

    def drain(self, timeout: float = 10.0) -> bool:
        """Stop admitting, wait for the executing tail. Idempotent."""
        self.gate.close()
        if OBS.enabled:
            OBS.action("service.drain", timeout=timeout)
        return self.gate.wait_idle(timeout)

    def close(self, *, drain: bool = True, timeout: float = 10.0) -> bool:
        """Drain (optionally), stop the metrics endpoint if one is
        serving, and mark the service closed."""
        drained = self.drain(timeout) if drain else True
        if not drain:
            self.gate.close()
        self.stop_metrics()
        if OBS.enabled:
            OBS.action("service.closed", drained=drained)
        return drained

    @property
    def closed(self) -> bool:
        return self.gate.closed

    # -- live exposition ----------------------------------------------------

    def serve_metrics(self, *, host: str = "127.0.0.1",
                      port: int = 0) -> MetricsEndpoint:
        """Start (or return, if already serving) the live exposition
        endpoint: ``/metrics`` (Prometheus text), ``/health`` (breaker
        + SLO verdict, 200/503) and ``/slo`` (JSON) — see
        :mod:`repro.obs.endpoint`. Port 0 picks a free port; the bound
        address is ``self.endpoint.url``. Stopped by :meth:`close` or
        :meth:`stop_metrics`."""
        if self.endpoint is None or not self.endpoint.running:
            self.endpoint = MetricsEndpoint(
                OBS.metrics, slo=self.slo, health=self._health,
                host=host, port=port,
            ).start()
        return self.endpoint

    def stop_metrics(self) -> None:
        """Stop the exposition endpoint if one is serving. Idempotent."""
        if self.endpoint is not None:
            self.endpoint.stop()
            self.endpoint = None

    def _health(self) -> dict:
        """The ``/health`` verdict body (the endpoint folds in SLO
        alerts): healthy means writes are being accepted — breaker not
        OPEN and the gate not draining."""
        breaker = self.breaker.state
        verdict = {
            "healthy": breaker != OPEN and not self.closed,
            "breaker": breaker,
            "draining": self.closed,
            "committed": len(self.committed),
        }
        if self.replication is not None:
            repl = self.replication.health(
                max_lag_seq=self.staleness_max_lag_seq,
                max_lag_seconds=self.staleness_max_lag_seconds,
            )
            verdict["replication"] = repl
            bounded = (self.staleness_max_lag_seq is not None
                       or self.staleness_max_lag_seconds is not None)
            if bounded and not repl["servable"]:
                # Bounded-staleness reads cannot be served: surface
                # the outage as a 503 rather than silent stale data.
                verdict["healthy"] = False
            lease = repl.get("lease")
            if lease is not None:
                verdict["leaderless"] = not lease["held"]
                if not lease["held"]:
                    # The lease lapsed: writes are being refused
                    # (LeaseExpired) until a quorum renews or a new
                    # primary is elected — that is an outage.
                    verdict["healthy"] = False
        return verdict

    # -- reporting ----------------------------------------------------------

    def stats(self) -> dict:
        with self._stats_lock:
            snapshot = dict(self._stats)
        snapshot["shed"] = self.gate.shed
        snapshot["breaker_state"] = self.breaker.state
        snapshot["breaker_trips"] = self.breaker.trips
        snapshot["breaker_resets"] = self.breaker.resets
        snapshot["committed"] = len(self.committed)
        snapshot["slo_healthy"] = self.slo.healthy
        snapshot["slo_alerts"] = list(self.slo.alerts)
        snapshot["slo_alerts_raised"] = self.slo.raised
        snapshot["slo_alerts_cleared"] = self.slo.cleared
        if self.logged is not None:
            snapshot["wal"] = self.logged.log.health()
        if self.replication is not None:
            snapshot["acked"] = len(self.acked)
            snapshot["replication"] = self.replication.health(
                max_lag_seq=self.staleness_max_lag_seq,
                max_lag_seconds=self.staleness_max_lag_seconds,
            )
        return snapshot

    def committed_ops(self) -> tuple[Update | UpdateSequence, ...]:
        """A stable copy of the commit-ordered operation log; replay
        it with :func:`repro.fdb.updates.apply_update` /
        :func:`apply_sequence` over an identically seeded instance to
        reproduce the live state exactly."""
        with self._committed_lock:
            return tuple(self.committed)

    def acked_ops(self) -> tuple[tuple[int, Update | UpdateSequence], ...]:
        """The replication-acknowledged subset of the committed log as
        (WAL seq, update) pairs — under ``sync(k>=1)``/``quorum``
        these are the operations a failover must preserve."""
        with self._acked_lock:
            return tuple(self.acked)


class _LockedRandom:
    """Serialises jitter draws from the service's seeded RNG."""

    def __init__(self, rng: random.Random, lock: threading.Lock) -> None:
        self._rng = rng
        self._lock = lock

    def uniform(self, a: float, b: float) -> float:
        with self._lock:
            return self._rng.uniform(a, b)
