"""Sharded keyspace: parallel per-shard write lanes.

Derivation clusters partition the function space (every update's
side-effects stay in one cluster), so clusters are the natural unit of
*placement*: :class:`ShardMap` hashes each cluster onto a shard
(with explicit pin overrides), and :class:`ShardedDatabaseService`
routes operations to N fully independent service lanes — each its own
database, WAL, lock manager and optional replication group — so writes
to clusters on different shards commit truly in parallel. See
``docs/SHARDING.md``.
"""

from repro.shard.map import ShardMap
from repro.shard.sharded import ShardedDatabaseService

__all__ = ["ShardMap", "ShardedDatabaseService"]
