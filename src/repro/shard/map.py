"""The shard map: derivation clusters → shard lanes.

The paper's derivation clusters (see :func:`repro.service.service.
clusters_of`) partition the function space so that every update's
side-effects stay inside one cluster. That makes the cluster the unit
of *placement*: assign each cluster to a shard and every single-cluster
operation touches exactly one shard's database, WAL and replication
group.

Placement is a stable hash of the cluster id (``zlib.crc32``, so the
assignment survives process restarts and is identical on every node
that sees the same schema), overridable per cluster with explicit
*pins* — the operator's tool for isolating a hot cluster on its own
lane or co-locating clusters that a workload frequently writes
together (turning multi-shard writes back into single-shard ones).

The map is pure schema metadata: it is rebuilt from the database's
``schema_version`` whenever a declaration lands, and two maps built
from equal schemas with equal pins are equal.
"""

from __future__ import annotations

import zlib

from repro.fdb.database import FunctionalDatabase
from repro.service.service import clusters_of

__all__ = ["ShardMap"]


class ShardMap:
    """Immutable-by-convention mapping of function names and cluster
    ids onto ``shards`` lanes."""

    def __init__(self, db: FunctionalDatabase, shards: int, *,
                 pins: dict[str, int] | None = None) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.shards = shards
        self.pins = dict(pins or {})
        for cluster, shard in self.pins.items():
            if not 0 <= shard < shards:
                raise ValueError(
                    f"pin {cluster!r} -> {shard} outside 0..{shards - 1}"
                )
        self.version = db.schema_version
        # name -> cluster resource ("fn:<root>"), then cluster -> shard.
        self._cluster_of = clusters_of(db)
        self._shard_of_cluster: dict[str, int] = {}
        for cluster in sorted(set(self._cluster_of.values())):
            self._shard_of_cluster[cluster] = self.pins.get(
                cluster, zlib.crc32(cluster.encode()) % shards
            )

    @classmethod
    def from_db(cls, db: FunctionalDatabase, shards: int, *,
                pins: dict[str, int] | None = None) -> "ShardMap":
        return cls(db, shards, pins=pins)

    # -- lookups ------------------------------------------------------------

    def cluster_of(self, name: str) -> str:
        """The cluster resource owning function ``name``."""
        return self._cluster_of[name]

    def shard_of_cluster(self, cluster: str) -> int:
        return self._shard_of_cluster[cluster]

    def shard_of(self, name: str) -> int:
        """The shard lane owning function ``name`` (KeyError when the
        name is not in the schema the map was built from)."""
        return self._shard_of_cluster[self._cluster_of[name]]

    def shards_of(self, names) -> set[int]:
        return {self.shard_of(name) for name in names}

    def clusters_on(self, shard: int) -> tuple[str, ...]:
        """Every cluster placed on ``shard``, sorted."""
        return tuple(sorted(
            cluster for cluster, s in self._shard_of_cluster.items()
            if s == shard
        ))

    def names_on(self, shard: int) -> tuple[str, ...]:
        """Every function name placed on ``shard``, sorted."""
        clusters = set(self.clusters_on(shard))
        return tuple(sorted(
            name for name, cluster in self._cluster_of.items()
            if cluster in clusters
        ))

    def assignments(self) -> dict[str, int]:
        """cluster -> shard, a stable copy (for display and tests)."""
        return dict(self._shard_of_cluster)

    def stale_for(self, db: FunctionalDatabase) -> bool:
        """Did the schema move past the version this map was built
        from? (The sharded service rebuilds on a stale map.)"""
        return db.schema_version != self.version

    def rebuilt(self, db: FunctionalDatabase) -> "ShardMap":
        """A fresh map over ``db``'s current schema with the same shard
        count and pins."""
        return ShardMap(db, self.shards, pins=self.pins)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ShardMap):
            return NotImplemented
        return (self.shards == other.shards
                and self._shard_of_cluster == other._shard_of_cluster
                and self._cluster_of == other._cluster_of)

    def __repr__(self) -> str:
        return (f"ShardMap(shards={self.shards}, "
                f"clusters={len(self._shard_of_cluster)}, "
                f"pins={len(self.pins)}, version={self.version})")
