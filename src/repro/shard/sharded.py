"""``ShardedDatabaseService``: N independent write lanes behind one
front door.

Every :class:`repro.service.DatabaseService` serialises its writes on
one ``__write__`` token because the engine's rollback model and
null/NC index allocation are whole-instance. Sharding sidesteps that
limit without touching the engine: each shard lane is a *complete*
service stack — its own :class:`FunctionalDatabase` (full schema,
only its clusters' data), its own WAL, lock manager, admission gate,
circuit breaker, and optionally its own replication group and lease —
so the per-instance serialisation arguments hold per lane, and writes
to clusters on different shards commit truly in parallel.

Routing is the :class:`repro.shard.map.ShardMap`: derivation clusters
are the placement unit, so a single-cluster operation (every simple
update, by construction) goes straight to its owning lane's normal
``execute``/``read`` path, with all of that lane's degradation
machinery intact.

The two cross-shard paths are deliberately narrower:

* **Scatter-gather reads** fan a read over every involved lane and
  stamp the gather with a per-shard commit-sequence vector (each
  entry captured under that lane's shared cluster locks). There is no
  cross-shard snapshot: two lanes' results may straddle a concurrent
  multi-shard write. The vector makes that staleness *observable*,
  not absent.
* **Multi-shard writes** run on the facade's "global lane": split the
  sequence by owning shard, take every involved lane's write token in
  sorted shard-id order — holds grow monotonically in shard id while
  single-lane writers never wait across lanes, so no cross-lane
  wait-for cycle can form — then apply each lane's slice via
  :meth:`DatabaseService.apply_prelocked` under one globally unique
  *marker*. Each lane journals ``(marker, committed-index)`` so its
  replay oracle stays strictly sequential, and markers shared between
  lanes are mutually ordered (allocation happens while holding every
  involved token). Cross-shard *atomicity* is not promised: a storage
  failure on the k-th lane leaves earlier lanes committed (the error
  says so). See ``docs/SHARDING.md`` for the full contract.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import ExitStack
from pathlib import Path
from typing import Callable, Iterable

from repro.cancel import Deadline
from repro.errors import CrossShardError, DeadlockDetected, LockTimeout
from repro.fdb.database import FunctionalDatabase
from repro.fdb.logic import Truth
from repro.fdb.updates import Update, UpdateSequence
from repro.fdb.values import Value
from repro.obs.endpoint import MetricsEndpoint
from repro.obs.hooks import OBS
from repro.service.locks import EXCLUSIVE
from repro.service.service import (DatabaseService, WRITE_RESOURCE,
                                   _touched)
from repro.shard.map import ShardMap

__all__ = ["ShardedDatabaseService"]


class ShardedDatabaseService:
    """Shard router over ``shards`` independent service lanes.

    Parameters
    ----------
    factory:
        Zero-argument callable returning a fresh
        :class:`FunctionalDatabase` carrying the *full* schema. Called
        once per lane: every lane knows every function (so routing and
        cluster analysis work anywhere) but only ever stores facts for
        the clusters its shard owns.
    shards:
        Number of lanes.
    pins:
        Optional explicit cluster -> shard overrides (see
        :class:`ShardMap`).
    log_dir:
        When given, lane ``i`` writes through its own WAL at
        ``<log_dir>/shard-<i>.wal``.
    replication_factory:
        Optional ``shard -> ReplicationGroup | None``; a returned
        group becomes that lane's replication (requires ``log_dir``).
    service_kwargs:
        Extra keyword arguments forwarded to every lane's
        :class:`DatabaseService` (timeouts, retry policy, breaker
        thresholds, ...).
    """

    def __init__(
        self,
        factory: Callable[[], FunctionalDatabase],
        shards: int = 2,
        *,
        pins: dict[str, int] | None = None,
        log_dir: str | Path | None = None,
        replication_factory=None,
        service_kwargs: dict | None = None,
    ) -> None:
        self.factory = factory
        kwargs = dict(service_kwargs or {})
        if log_dir is not None:
            Path(log_dir).mkdir(parents=True, exist_ok=True)
        self.lanes: list[DatabaseService] = []
        for shard in range(shards):
            db = factory()
            log = None
            if log_dir is not None:
                log = Path(log_dir) / f"shard-{shard}.wal"
            replication = None
            if replication_factory is not None:
                replication = replication_factory(shard)
            self.lanes.append(DatabaseService(
                db, log=log, shard=shard, replication=replication,
                node=f"shard-{shard}-primary", **kwargs,
            ))
        self.map = ShardMap(self.lanes[0].db, shards, pins=pins)
        # Global-lane bookkeeping: one counter mints every cross-shard
        # marker; allocation happens while holding all involved write
        # tokens, so markers sharing a lane are ordered like their
        # commits on that lane.
        self._marker = itertools.count(1)
        self._marker_lock = threading.Lock()
        self._multi_lock_timeout = kwargs.get("lock_timeout", 1.0)
        self._multi_retries = 3
        self._stats_lock = threading.Lock()
        self._multi_writes = 0
        self._scatter_reads = 0
        self.endpoint: MetricsEndpoint | None = None

    # -- routing ------------------------------------------------------------

    @property
    def shards(self) -> int:
        return self.map.shards

    def lane(self, shard: int) -> DatabaseService:
        return self.lanes[shard]

    def _map(self) -> ShardMap:
        # Schema declarations land on every lane through declare(); a
        # stale map (version skew) rebuilds from lane 0's schema.
        if self.map.stale_for(self.lanes[0].db):
            self.map = self.map.rebuilt(self.lanes[0].db)
        return self.map

    def shard_of(self, name: str) -> int:
        return self._map().shard_of(name)

    def declare(self, declare_fn) -> None:
        """Apply a schema declaration (``declare_fn(db)``) to *every*
        lane, keeping the shared schema identical, then rebuild the
        shard map. Schema changes are rare and single-threaded by
        convention, exactly as on the unsharded service."""
        for lane in self.lanes:
            declare_fn(lane.db)
        self.map = self.map.rebuilt(self.lanes[0].db)

    # -- writes -------------------------------------------------------------

    def execute(self, update: Update | UpdateSequence, *,
                deadline: Deadline | float | None = None) -> None:
        """Apply one update or atomic sequence, routed to its owning
        lane — or through the multi-shard global lane when the
        sequence's clusters land on several shards."""
        shard_ids = sorted(self._map().shards_of(_touched(update)))
        if len(shard_ids) == 1:
            self.lanes[shard_ids[0]].execute(update, deadline=deadline)
            return
        self._execute_multi(update, shard_ids, deadline)

    def insert(self, name: str, x: Value, y: Value, *,
               deadline: Deadline | float | None = None) -> None:
        self.execute(Update.ins(name, x, y), deadline=deadline)

    def delete(self, name: str, x: Value, y: Value, *,
               deadline: Deadline | float | None = None) -> None:
        self.execute(Update.delete(name, x, y), deadline=deadline)

    def replace(self, name: str, old: tuple[Value, Value],
                new: tuple[Value, Value], *,
                deadline: Deadline | float | None = None) -> None:
        self.execute(Update.rep(name, old, new), deadline=deadline)

    def _split(self, update: UpdateSequence) -> dict[int, object]:
        """Partition a sequence into per-shard slices, preserving each
        shard's internal order (cross-shard relative order is what the
        marker journals)."""
        parts: dict[int, list[Update]] = {}
        for simple in update:
            shard = self._map().shard_of(simple.function)
            parts.setdefault(shard, []).append(simple)
        return {
            shard: (slice_[0] if len(slice_) == 1
                    else UpdateSequence(tuple(slice_), label=update.label))
            for shard, slice_ in parts.items()
        }

    def _execute_multi(self, update: UpdateSequence,
                       shard_ids: list[int],
                       deadline: Deadline | float | None) -> None:
        """The global lane: all involved write tokens in sorted
        shard-id order, one marker, per-lane slices."""
        limit = self.lanes[0]._deadline(deadline)
        parts = self._split(update)
        started = time.perf_counter()
        scope = OBS.span(
            "service.request", key="multi_write",
            request=OBS.new_request_id() if OBS.enabled else None,
            family="multi_write", committed=False,
            shards=tuple(shard_ids),
        )
        error = False
        try:
            with scope:
                self._multi_once_with_retry(parts, shard_ids, limit,
                                            update, scope)
        except BaseException:
            error = True
            raise
        finally:
            with self._stats_lock:
                self._multi_writes += 1
            if OBS.enabled:
                elapsed = time.perf_counter() - started
                OBS.inc("service.red.multi_write.requests")
                if error:
                    OBS.inc("service.red.multi_write.errors")
                OBS.observe_log(
                    "service.red.multi_write.duration_seconds", elapsed
                )

    def _multi_once_with_retry(self, parts, shard_ids, limit,
                               update, scope) -> None:
        # Lock-phase failures (timeout on a busy lane) happen before
        # anything applied and are safe to retry; once the first lane
        # has applied, a failure is surfaced as CrossShardError —
        # partial cross-shard state is the documented non-guarantee.
        for attempt in itertools.count(1):
            try:
                self._multi_once(parts, shard_ids, limit, update)
                scope.attrs["committed"] = True
                return
            except (LockTimeout, DeadlockDetected):
                if attempt >= self._multi_retries:
                    raise
                if OBS.enabled:
                    OBS.inc("service.shard.multi_retries")

    def _multi_once(self, parts, shard_ids, limit, update) -> None:
        acks: list[tuple[DatabaseService, int | None, object]] = []
        applied: list[int] = []
        try:
            with ExitStack() as stack:
                for shard in shard_ids:  # sorted: the global order
                    lane = self.lanes[shard]
                    clusters = {
                        lane.cluster_of(name)
                        for name in _touched(parts[shard])
                    }
                    with OBS.span("service.locks", mode=EXCLUSIVE,
                                  shard=shard):
                        stack.enter_context(lane.locks.held(
                            {WRITE_RESOURCE} | clusters, EXCLUSIVE,
                            timeout=lane.lock_timeout, deadline=limit,
                        ))
                with self._marker_lock:
                    marker = next(self._marker)
                for shard in shard_ids:
                    lane = self.lanes[shard]
                    seq = lane.apply_prelocked(parts[shard],
                                               limit=limit,
                                               marker=marker)
                    applied.append(shard)
                    acks.append((lane, seq, parts[shard]))
        except (LockTimeout, DeadlockDetected):
            if applied:
                raise CrossShardError(
                    f"multi-shard write {update!s} failed after "
                    f"committing on shards {applied}; cross-shard "
                    f"atomicity is not guaranteed"
                )
            raise
        except Exception as exc:
            if applied:
                raise CrossShardError(
                    f"multi-shard write {update!s} failed after "
                    f"committing on shards {applied} "
                    f"({type(exc).__name__}: {exc}); cross-shard "
                    f"atomicity is not guaranteed"
                ) from exc
            raise
        # Tokens released: wait out each lane's replication quota.
        for lane, seq, part in acks:
            lane._replication_ack(seq, part)

    # -- reads --------------------------------------------------------------

    def read(self, names: Iterable[str],
             fn: Callable[[FunctionalDatabase], object], *,
             deadline: Deadline | float | None = None) -> object:
        """A single-lane read; raises :class:`CrossShardError` when
        ``names`` span shards (use :meth:`scatter_read`)."""
        name_list = tuple(names)
        shard_ids = self._map().shards_of(name_list)
        if len(shard_ids) != 1:
            raise CrossShardError(
                f"read of {name_list} spans shards "
                f"{sorted(shard_ids)}; use scatter_read"
            )
        return self.lanes[shard_ids.pop()].read(name_list, fn,
                                                deadline=deadline)

    def truth_of(self, name: str, x: Value, y: Value, *,
                 deadline: Deadline | float | None = None) -> Truth:
        return self.read(
            (name,), lambda db: db.truth_of(name, x, y),
            deadline=deadline,
        )

    def extension(self, name: str, *,
                  deadline: Deadline | float | None = None):
        return self.read(
            (name,), lambda db: db.extension(name), deadline=deadline,
        )

    def scatter_read(
        self,
        names: Iterable[str],
        fn: Callable[[FunctionalDatabase, tuple[str, ...]], object],
        *,
        deadline: Deadline | float | None = None,
    ) -> tuple[dict[int, object], dict[int, int]]:
        """Fan ``fn(db, lane_names)`` over every involved lane, under
        each lane's shared cluster locks; returns ``(results,
        vector)`` where ``vector[shard]`` is that lane's committed-op
        count observed *while its locks were held* — the per-shard
        commit-sequence stamp. No cross-shard snapshot is implied: the
        vector is how a caller detects that a concurrent multi-shard
        write straddled the gather."""
        by_shard: dict[int, list[str]] = {}
        for name in names:
            by_shard.setdefault(self._map().shard_of(name),
                                []).append(name)
        results: dict[int, object] = {}
        vector: dict[int, int] = {}
        for shard in sorted(by_shard):
            lane = self.lanes[shard]
            lane_names = tuple(by_shard[shard])

            def gather(db, lane=lane, lane_names=lane_names):
                value = fn(db, lane_names)
                return value, len(lane.committed)

            results[shard], vector[shard] = lane.read(
                lane_names, gather, deadline=deadline,
            )
        with self._stats_lock:
            self._scatter_reads += 1
        if OBS.enabled:
            OBS.inc("service.shard.scatter_reads")
        return results, vector

    def sequence_vector(self) -> dict[int, int]:
        """Each lane's committed-op count right now (unlocked: a
        monitoring stamp, not a consistency token — the locked variant
        is what :meth:`scatter_read` returns)."""
        return {shard: len(lane.committed)
                for shard, lane in enumerate(self.lanes)}

    # -- read-modify-write --------------------------------------------------

    def read_modify_write(
        self,
        names: Iterable[str],
        build: Callable[[FunctionalDatabase],
                        Update | UpdateSequence | None],
        *,
        deadline: Deadline | float | None = None,
    ) -> Update | UpdateSequence | None:
        """Single-shard only: the read and the write must land on one
        lane (a cross-shard rmw would need a cross-shard snapshot the
        facade does not provide). The built update is re-checked
        before apply; an update escaping the lane raises
        :class:`CrossShardError` without applying anything."""
        name_list = tuple(names)
        shard_ids = self._map().shards_of(name_list)
        if len(shard_ids) != 1:
            raise CrossShardError(
                f"read_modify_write of {name_list} spans shards "
                f"{sorted(shard_ids)}"
            )
        shard = shard_ids.pop()

        def checked(db):
            update = build(db)
            if update is not None:
                built_shards = self._map().shards_of(_touched(update))
                if built_shards != {shard}:
                    raise CrossShardError(
                        f"read_modify_write on shard {shard} built an "
                        f"update touching shards {sorted(built_shards)}"
                    )
            return update

        return self.lanes[shard].read_modify_write(
            name_list, checked, deadline=deadline,
        )

    # -- maintenance --------------------------------------------------------

    def checkpoint(self, snapshot_dir: str | Path) -> None:
        """Checkpoint every lane's WAL into
        ``<snapshot_dir>/shard-<i>.snap`` (each under its own write
        token; lanes checkpoint independently)."""
        directory = Path(snapshot_dir)
        for shard, lane in enumerate(self.lanes):
            lane.checkpoint(directory / f"shard-{shard}.snap")

    def swap_lane(self, shard: int, service: DatabaseService) -> None:
        """Replace a lane after failover: the shard soak promotes a
        replica of one lane's group and installs the new primary's
        service here. The incoming service must carry the same shard
        label so its telemetry stays on the same series."""
        if service.shard != shard:
            raise ValueError(
                f"replacement service is labelled shard "
                f"{service.shard!r}, expected {shard}"
            )
        self.lanes[shard] = service

    # -- lifecycle ----------------------------------------------------------

    def drain(self, timeout: float = 10.0) -> bool:
        ok = True
        for lane in self.lanes:
            ok = lane.drain(timeout) and ok
        return ok

    def close(self, *, drain: bool = True, timeout: float = 10.0) -> bool:
        ok = True
        for lane in self.lanes:
            ok = lane.close(drain=drain, timeout=timeout) and ok
        self.stop_metrics()
        return ok

    # -- exposition ---------------------------------------------------------

    def serve_metrics(self, *, host: str = "127.0.0.1",
                      port: int = 0) -> MetricsEndpoint:
        """One endpoint for the whole keyspace: OBS metrics are
        process-global (every lane's series, ``service_shard_*``
        included, is already in the registry), and ``/health`` folds
        all lanes."""
        if self.endpoint is None or not self.endpoint.running:
            self.endpoint = MetricsEndpoint(
                OBS.metrics, health=self._health, host=host, port=port,
            ).start()
        return self.endpoint

    def stop_metrics(self) -> None:
        if self.endpoint is not None:
            self.endpoint.stop()
            self.endpoint = None

    def _health(self) -> dict:
        lanes = {shard: lane._health()
                 for shard, lane in enumerate(self.lanes)}
        healthy = all(h["healthy"] for h in lanes.values()) and all(
            lane.slo.healthy for lane in self.lanes
        )
        return {
            "healthy": healthy,
            "shards": self.shards,
            "lanes": {str(shard): verdict
                      for shard, verdict in lanes.items()},
        }

    # -- reporting ----------------------------------------------------------

    def stats(self) -> dict:
        with self._stats_lock:
            multi = self._multi_writes
            scatter = self._scatter_reads
        return {
            "shards": self.shards,
            "assignments": self.map.assignments(),
            "multi_writes": multi,
            "scatter_reads": scatter,
            "sequence_vector": self.sequence_vector(),
            "lanes": {str(shard): lane.stats()
                      for shard, lane in enumerate(self.lanes)},
        }

    def committed_ops(self, shard: int):
        return self.lanes[shard].committed_ops()

    def acked_ops(self, shard: int):
        return self.lanes[shard].acked_ops()

    def cross_markers(self, shard: int) -> tuple[tuple[int, int], ...]:
        """Lane ``shard``'s (marker, committed-index) journal, a
        stable copy."""
        lane = self.lanes[shard]
        with lane._committed_lock:
            return tuple(lane.cross_markers)
