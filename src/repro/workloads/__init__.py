"""Workload generators and the paper's running examples.

:mod:`repro.workloads.university` packages every schema, instance,
update sequence and designer script appearing in the paper, so tests,
examples and benches all replay the same artifacts.
:mod:`repro.workloads.generator` produces seeded synthetic schemas,
instances and update streams for the scaling and comparison
experiments (E4, E5, E9, E10).
"""

from __future__ import annotations

from repro.workloads.university import (
    design_trace_functions,
    design_trace_designer,
    pupil_database,
    schema_s1,
    schema_s2,
    section_31_relational,
    section_42_updates,
)
from repro.workloads.company import (
    company_database,
    company_design_order,
    company_designer,
    company_schema,
)
from repro.workloads.generator import (
    WorkloadConfig,
    chain_fdb,
    cyclic_design_schema,
    paired_chain_workload,
    random_instance,
    random_updates,
    tree_schema_with_derived,
)

__all__ = [
    "schema_s1",
    "schema_s2",
    "design_trace_functions",
    "design_trace_designer",
    "pupil_database",
    "section_31_relational",
    "section_42_updates",
    "company_schema",
    "company_design_order",
    "company_designer",
    "company_database",
    "WorkloadConfig",
    "tree_schema_with_derived",
    "cyclic_design_schema",
    "chain_fdb",
    "random_instance",
    "random_updates",
    "paired_chain_workload",
]
