"""A second full workload: the company database.

The university example never exercises one-one functionalities or a
*false twin* — two syntactically and type-functionally identical
functions with different semantics. This fixture adds both:

* ``works_in: employee -> department`` (many-one),
  ``manages: manager -> department`` (one-one),
  ``badge: employee -> badge_id`` (one-one);
* ``reports_to: employee -> manager`` (many-one) — a *base* function:
  people report across department lines;
* ``dept_head_of: employee -> manager`` (many-one) — *derived*:
  ``works_in o manages^-1``.

``reports_to`` and ``dept_head_of`` have identical signatures and
functionalities, so the UFA would conflate them — the design session
needs the paper's designer intervention twice: keep the
works_in/manages/reports_to cycle (the system's candidate is wrong),
then classify dept_head_of as derived when it arrives.

The one-one functions make the FD machinery earn its keep: derived
inserts on ``dept_head_of`` put nulls into *both* a single-valued and
an injective position, and :func:`repro.fdb.constraints.resolve_nulls`
must exploit both directions.
"""

from __future__ import annotations

from repro.core.derivation import Derivation, Op, Step
from repro.core.design_aid import ScriptedDesigner
from repro.core.schema import FunctionDef, Schema
from repro.core.schema_text import parse_schema
from repro.fdb.database import FunctionalDatabase

__all__ = [
    "company_schema",
    "company_design_order",
    "company_designer",
    "company_database",
]

_SCHEMA_TEXT = """
works_in: employee -> department; (many-one)
manages: manager -> department; (one-one)
reports_to: employee -> manager; (many-one)
badge: employee -> badge_id; (one-one)
dept_head_of: employee -> manager; (many-one)
badge_owner: badge_id -> employee; (one-one)
"""


def company_schema() -> Schema:
    """All eight functions, base and derived alike."""
    return parse_schema(_SCHEMA_TEXT)


def company_design_order() -> tuple[FunctionDef, ...]:
    """The order a designer would naturally declare them."""
    schema = company_schema()
    return tuple(schema[name] for name in (
        "works_in", "manages", "reports_to", "badge",
        "dept_head_of", "badge_owner",
    ))


def company_designer() -> ScriptedDesigner:
    """The informed designer decisions.

    The works_in/manages/reports_to cycle offers wrong candidates
    (reports_to crosses departments) — keep it. dept_head_of really is
    works_in o manages^-1 — remove it, in whichever cycle it first
    appears. badge_owner = badge^-1 — remove it.
    """
    return ScriptedDesigner(
        removals={
            frozenset({"works_in", "manages", "reports_to"}): None,
            frozenset({"works_in", "manages", "dept_head_of"}):
                "dept_head_of",
            frozenset({"reports_to", "dept_head_of"}): "dept_head_of",
            frozenset({"badge", "badge_owner"}): "badge_owner",
        },
        rejected_derivations=[
            # reports_to's path is NOT a derivation of dept_head_of and
            # vice versa; only the real one is confirmed.
            ("dept_head_of", "reports_to"),
        ],
    )


def company_database(*, insert_mode: str = "all") -> FunctionalDatabase:
    """The designed database with a small consistent instance.

    carol reports to erin, who heads her department — but alice reports
    to erin *across* departments (dept head dave): the pair of facts
    that makes reports_to and dept_head_of semantically different.
    """
    schema = company_schema()
    db = FunctionalDatabase(insert_mode=insert_mode)
    for name in ("works_in", "manages", "reports_to", "badge"):
        db.declare_base(schema[name])
    db.declare_derived(
        schema["dept_head_of"],
        Derivation([
            Step(schema["works_in"]),
            Step(schema["manages"], Op.INVERSE),
        ]),
    )
    db.declare_derived(
        schema["badge_owner"],
        Derivation([Step(schema["badge"], Op.INVERSE)]),
    )
    db.load_instance({
        "works_in": [("alice", "sales"), ("bob", "sales"),
                     ("carol", "research")],
        "manages": [("dave", "sales"), ("erin", "research")],
        "reports_to": [("alice", "erin"), ("bob", "dave"),
                       ("carol", "erin")],
        "badge": [("alice", "b1"), ("bob", "b2"), ("carol", "b3")],
    })
    return db
