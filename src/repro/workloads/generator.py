"""Seeded synthetic workload generators.

The paper's evaluation artifacts are worked examples and complexity
claims; the scaling and comparison benches (E4, E5, E9, E10) need
families of schemas, instances and update streams parameterized by
size. Everything here is driven by an explicit seed through
``random.Random`` — two runs with the same configuration produce the
same workload.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.derivation import Derivation, Op, Step
from repro.core.schema import FunctionDef, Schema
from repro.core.types import ObjectType, TypeFunctionality, compose_functionalities
from repro.fdb.database import FunctionalDatabase
from repro.fdb.logic import Truth
from repro.fdb.updates import Update
from repro.relational.relation import Relation, RelationalDatabase
from repro.relational.view import ChainView

__all__ = [
    "WorkloadConfig",
    "tree_schema_with_derived",
    "cyclic_design_schema",
    "chain_fdb",
    "random_instance",
    "random_updates",
    "paired_chain_workload",
]

_FUNCTIONALITY_POOL = (
    TypeFunctionality.ONE_ONE,
    TypeFunctionality.ONE_MANY,
    TypeFunctionality.MANY_ONE,
    TypeFunctionality.MANY_MANY,
)


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs for :func:`random_updates`.

    The mix weights need not sum to one; they are normalized. Derived
    weights are ignored when the database has no derived functions.
    """

    seed: int = 0
    base_insert: float = 0.35
    base_delete: float = 0.25
    derived_insert: float = 0.2
    derived_delete: float = 0.2
    value_pool: int = 50
    fresh_value_rate: float = 0.3

    def weights(self, with_derived: bool) -> dict[str, float]:
        mix = {
            "base_insert": self.base_insert,
            "base_delete": self.base_delete,
        }
        if with_derived:
            mix["derived_insert"] = self.derived_insert
            mix["derived_delete"] = self.derived_delete
        total = sum(mix.values())
        if total <= 0:
            raise ValueError("update mix must have positive weight")
        return {kind: weight / total for kind, weight in mix.items()}


# -- schema families ------------------------------------------------------------


def tree_schema_with_derived(
    n_types: int,
    n_derived: int,
    seed: int = 0,
    *,
    max_path: int = 4,
) -> Schema:
    """A UFA-friendly schema: a random tree of base functions over
    ``n_types`` object types, plus ``n_derived`` derived functions whose
    definitions follow tree paths (so each has a genuine derivation and
    a matching type functionality).

    Used by the AMS scaling bench (E4): the function graph is a tree
    plus ``n_derived`` chords, so AMS has real work on every edge.
    """
    if n_types < 2:
        raise ValueError("need at least two object types")
    rng = random.Random(seed)
    types = [ObjectType(f"T{i}") for i in range(n_types)]
    schema = Schema()
    # Random tree: connect type i to a random earlier type.
    parent_edges: dict[int, tuple[int, FunctionDef]] = {}
    for i in range(1, n_types):
        j = rng.randrange(i)
        functionality = rng.choice(_FUNCTIONALITY_POOL)
        function = FunctionDef(f"f{i}", types[j], types[i], functionality)
        schema.add(function)
        parent_edges[i] = (j, function)

    def tree_path(a: int, b: int) -> list[Step]:
        """Steps along the unique tree path from type a to type b."""
        def to_root(node: int) -> list[tuple[int, FunctionDef, bool]]:
            hops = []
            while node != 0:
                parent, function = parent_edges[node]
                hops.append((parent, function, False))  # up = inverse
                node = parent
            return hops

        up_a = to_root(a)
        up_b = to_root(b)
        ancestors_a = [a] + [hop[0] for hop in up_a]
        ancestors_b = {b: 0}
        for depth, hop in enumerate(up_b, start=1):
            ancestors_b[hop[0]] = depth
        meet_index = next(
            i for i, node in enumerate(ancestors_a) if node in ancestors_b
        )
        meet = ancestors_a[meet_index]
        down_length = ancestors_b[meet]
        steps = [
            Step(function, Op.INVERSE) for _, function, _ in up_a[:meet_index]
        ]
        descend = up_b[:down_length]
        for _, function, _ in reversed(descend):
            steps.append(Step(function, Op.IDENTITY))
        return steps

    added = 0
    attempts = 0
    while added < n_derived and attempts < n_derived * 50:
        attempts += 1
        a, b = rng.sample(range(n_types), 2)
        steps = tree_path(a, b)
        if not 2 <= len(steps) <= max_path:
            continue
        derivation = Derivation(steps)
        name = f"d{added}"
        schema.add(FunctionDef(
            name, types[a], types[b], derivation.functionality
        ))
        added += 1
    if added < n_derived:
        raise ValueError(
            f"could not place {n_derived} derived functions on this tree "
            f"(placed {added}); lower n_derived or raise max_path"
        )
    return schema


def cyclic_design_schema(n_paths: int, *, path_length: int = 2) -> Schema:
    """A theta-graph schema for the design-aid worst case (E5):
    ``n_paths`` parallel many-many paths between two hub types, then a
    closing hub-to-hub function whose addition creates ``n_paths``
    simultaneous cycles (and an exponential number once the kept cycles
    interconnect)."""
    if n_paths < 1 or path_length < 1:
        raise ValueError("need n_paths >= 1 and path_length >= 1")
    left = ObjectType("Hub0")
    right = ObjectType("Hub1")
    schema = Schema()
    for p in range(n_paths):
        previous = left
        for h in range(path_length - 1):
            mid = ObjectType(f"M{p}_{h}")
            schema.add(FunctionDef(
                f"p{p}_{h}", previous, mid, TypeFunctionality.MANY_MANY
            ))
            previous = mid
        schema.add(FunctionDef(
            f"p{p}_{path_length - 1}", previous, right,
            TypeFunctionality.MANY_MANY,
        ))
    schema.add(FunctionDef(
        "closer", left, right, TypeFunctionality.MANY_MANY
    ))
    return schema


def chain_fdb(
    k: int,
    *,
    functionality: TypeFunctionality = TypeFunctionality.MANY_MANY,
    derived_name: str = "v",
    insert_mode: str = "all",
) -> FunctionalDatabase:
    """An empty database with base chain ``f1: T0 -> T1``, ...,
    ``fk: T(k-1) -> Tk`` and the derived ``v = f1 o ... o fk``."""
    if k < 1:
        raise ValueError("need k >= 1")
    db = FunctionalDatabase(insert_mode=insert_mode)
    types = [ObjectType(f"T{i}") for i in range(k + 1)]
    functions = []
    for i in range(k):
        function = FunctionDef(
            f"f{i + 1}", types[i], types[i + 1], functionality
        )
        db.declare_base(function)
        functions.append(function)
    composite = compose_functionalities(f.functionality for f in functions)
    db.declare_derived(
        FunctionDef(derived_name, types[0], types[k], composite),
        Derivation.of(*functions),
    )
    return db


# -- instances -------------------------------------------------------------------


def random_instance(
    db: FunctionalDatabase,
    rows_per_function: int,
    *,
    seed: int = 0,
    value_pool: int = 50,
) -> None:
    """Fill every base table with random true facts.

    Values are drawn per object type from pools ``<type>_0 ..
    <type>_{value_pool-1}``, so functions sharing a type join on shared
    values (giving derived functions non-trivial extensions).
    """
    rng = random.Random(seed)

    def pick(object_type: ObjectType) -> str:
        return f"{object_type.name}_{rng.randrange(value_pool)}"

    for name in db.base_names:
        definition = db.schema[name]
        table = db.table(name)
        guard = 0
        while len(table) < rows_per_function and guard < rows_per_function * 20:
            guard += 1
            x, y = pick(definition.domain), pick(definition.range)
            if table.get(x, y) is None:
                table.add_pair(x, y, Truth.TRUE)


def random_updates(
    db: FunctionalDatabase,
    count: int,
    config: WorkloadConfig = WorkloadConfig(),
) -> list[Update]:
    """A random update stream matched to the database's schema.

    Deletes target pairs likely to exist (sampled from current tables or
    by walking chains for derived functions); inserts mix existing and
    fresh values per ``config.fresh_value_rate``. The stream is built
    against the database's *current* state and does not mutate it.
    """
    rng = random.Random(config.seed)
    weights = config.weights(with_derived=bool(db.derived_names))
    kinds = list(weights)
    probabilities = [weights[kind] for kind in kinds]

    def pick_value(object_type: ObjectType) -> str:
        if rng.random() < config.fresh_value_rate:
            return f"{object_type.name}_new{rng.randrange(config.value_pool)}"
        return f"{object_type.name}_{rng.randrange(config.value_pool)}"

    def existing_pair(name: str) -> tuple | None:
        table = db.table(name)
        pairs = tuple(table.pairs())
        if not pairs:
            return None
        return rng.choice(pairs)

    def derivable_pair(name: str) -> tuple | None:
        """Walk one random exact chain of the primary derivation."""
        derivation = db.derived(name).primary
        for _ in range(10):
            pair = _walk_chain(db, derivation, rng)
            if pair is not None:
                return pair
        return None

    updates: list[Update] = []
    guard = 0
    while len(updates) < count and guard < count * 30:
        guard += 1
        kind = rng.choices(kinds, probabilities)[0]
        if kind == "base_insert":
            name = rng.choice(db.base_names)
            definition = db.schema[name]
            updates.append(Update.ins(
                name, pick_value(definition.domain),
                pick_value(definition.range),
            ))
        elif kind == "base_delete":
            name = rng.choice(db.base_names)
            pair = existing_pair(name)
            if pair is not None:
                updates.append(Update.delete(name, *pair))
        elif kind == "derived_insert":
            name = rng.choice(db.derived_names)
            definition = db.schema[name]
            updates.append(Update.ins(
                name, pick_value(definition.domain),
                pick_value(definition.range),
            ))
        else:
            name = rng.choice(db.derived_names)
            pair = derivable_pair(name)
            if pair is not None:
                updates.append(Update.delete(name, *pair))
    return updates


def _walk_chain(db: FunctionalDatabase, derivation: Derivation,
                rng: random.Random) -> tuple | None:
    """One random exactly-matching chain walk; returns its (start, end)
    or None when the walk dead-ends."""
    current = None
    start = None
    for step in derivation:
        table = db.table(step.function.name)
        inverse = step.op is Op.INVERSE
        if current is None:
            facts = tuple(table.facts())
        elif inverse:
            facts = table.facts_with_y(current)
        else:
            facts = table.facts_with_x(current)
        if not facts:
            return None
        fact = rng.choice(facts)
        source = fact.y if inverse else fact.x
        target = fact.x if inverse else fact.y
        if start is None:
            start = source
        current = target
    return (start, current)


# -- paired relational / functional workloads (E9) ---------------------------------


def paired_chain_workload(
    k: int,
    rows: int,
    *,
    seed: int = 0,
    value_pool: int | None = None,
) -> tuple[RelationalDatabase, FunctionalDatabase, list[tuple]]:
    """The same chain instance in both data models.

    Builds ``r1(A0 A1), ..., rk(A(k-1) Ak)`` with ``rows`` random tuples
    each and the chain view ``v``, plus the corresponding functional
    database (base ``f1..fk``, derived ``v``) holding identical pairs.
    Returns (relational db, functional db, current view tuples) — the
    view tuples are the candidate targets for delete workloads.
    """
    if k < 2:
        raise ValueError("a chain workload needs k >= 2")
    pool = value_pool if value_pool is not None else max(4, rows // 2)
    rng = random.Random(seed)
    levels = [
        [f"A{level}_{i}" for i in range(pool)] for level in range(k + 1)
    ]
    pair_sets: list[list[tuple]] = []
    for level in range(k):
        seen: set[tuple] = set()
        guard = 0
        while len(seen) < rows and guard < rows * 20:
            guard += 1
            seen.add((
                rng.choice(levels[level]), rng.choice(levels[level + 1])
            ))
        pair_sets.append(sorted(seen))

    relational = RelationalDatabase([
        Relation(f"r{i + 1}", (f"A{i}", f"A{i + 1}"), pair_sets[i])
        for i in range(k)
    ])
    view = relational.add_view(
        ChainView("v", tuple(f"r{i + 1}" for i in range(k)))
    )

    functional = chain_fdb(k)
    # chain_fdb names the derived function "v" and bases f1..fk.
    for i in range(k):
        functional.load(f"f{i + 1}", pair_sets[i])

    targets = list(view.evaluate(relational).tuples)
    return relational, functional, targets
