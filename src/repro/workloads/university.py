"""The paper's running university example, packaged as fixtures.

Everything printed in the paper lives here, byte-comparable:

* :func:`schema_s1` — Table 1;
* :func:`schema_s2` — the Section 2.1 UFA counterexample
  (teach / class_list / lecturer_of);
* :func:`design_trace_functions` / :func:`design_trace_designer` — the
  Section 2.3 trace: eleven functions in paper order plus the scripted
  designer decisions, reproducing Figure 1;
* :func:`pupil_database` — the Section 3 / 4.2 instance (teach,
  class_list, derived pupil);
* :func:`section_42_updates` — the update sequence u1..u5 of
  Section 4.2;
* :func:`section_31_relational` — the r1/r2/r3 chain-view instance of
  Section 3.1.
"""

from __future__ import annotations

from repro.core.derivation import Derivation
from repro.core.design_aid import ScriptedDesigner
from repro.core.schema import FunctionDef, Schema
from repro.core.schema_text import parse_schema
from repro.fdb.database import FunctionalDatabase
from repro.fdb.updates import Update
from repro.relational.relation import Relation, RelationalDatabase
from repro.relational.view import ChainView

__all__ = [
    "schema_s1",
    "schema_s2",
    "design_trace_functions",
    "design_trace_designer",
    "pupil_database",
    "section_42_updates",
    "section_31_relational",
]

_S1_TEXT = """
1. grade: [student; course] -> letter_grade; (many-one)
2. score: [student; course] -> marks; (many-one)
3. cutoff: marks -> letter_grade; (many-one)
4. teach: faculty -> course; (many-many)
5. taught_by: course -> faculty; (many-many)
"""

_S2_TEXT = """
teach: faculty -> course; (many-many)
class_list: course -> student; (many-many)
lecturer_of: student -> faculty; (many-many)
"""

_TRACE_TEXT = """
teach: faculty -> course; (many-many)
taught_by: course -> faculty; (many-many)
class_list: course -> student; (many-many)
lecturer_of: student -> faculty; (many-many)
grade: [student; course] -> letter_grade; (many-one)
attendance: [student; course] -> attn_percentage; (many-one)
attendance_eval: attn_percentage -> letter_grade; (many-one)
score: [student; course] -> marks; (many-one)
cutoff: marks -> letter_grade; (many-one)
"""


def schema_s1() -> Schema:
    """Table 1: conceptual schema S1."""
    return parse_schema(_S1_TEXT)


def schema_s2() -> Schema:
    """The Section 2.1 schema S2 that the UFA cannot admit: under the
    intended semantics only lecturer_of is derived, but each of the
    three functions is syntactically and type-functionally equivalent
    to the composition of the other two."""
    return parse_schema(_S2_TEXT)


def design_trace_functions() -> tuple[FunctionDef, ...]:
    """The nine functions of the Section 2.3 trace, in addition order."""
    return tuple(parse_schema(_TRACE_TEXT))


def design_trace_designer() -> ScriptedDesigner:
    """The designer decisions the paper records in Section 2.3.

    Cycle decisions: classify taught_by then lecturer_of then grade as
    derived; keep the grade-attendance-attendance_eval cycle ("the
    designer does not agree with the system") and the
    score-cutoff-attendance_eval-attendance cycle (no candidates).
    Derivation vetting: ``grade = attendance o attendance_eval`` is
    invalidated; everything else confirmed.
    """
    return ScriptedDesigner(
        removals={
            frozenset({"teach", "taught_by"}): "taught_by",
            frozenset({"teach", "class_list", "lecturer_of"}): "lecturer_of",
            frozenset({"grade", "attendance", "attendance_eval"}): None,
            frozenset({"grade", "score", "cutoff"}): "grade",
            frozenset(
                {"score", "cutoff", "attendance_eval", "attendance"}
            ): None,
        },
        rejected_derivations=[("grade", "attendance o attendance_eval")],
    )


def pupil_database(*, insert_mode: str = "all") -> FunctionalDatabase:
    """The Section 3 / 4.2 instance.

    teach = {<euclid, math>, <laplace, math>}, class_list =
    {<math, john>, <math, bill>}; pupil = teach o class_list derived.
    (Section 4.2 omits <laplace, physics>, which Section 3's copy of the
    instance includes; this fixture matches Section 4.2, whose update
    tables the E8 bench compares against. Add the pair back with one
    insert to get the Section 3 variant.)
    """
    schema = parse_schema("""
        teach: faculty -> course; (many-many)
        class_list: course -> student; (many-many)
        pupil: faculty -> student; (many-many)
    """)
    db = FunctionalDatabase(insert_mode=insert_mode)
    db.declare_base(schema["teach"])
    db.declare_base(schema["class_list"])
    db.declare_derived(
        schema["pupil"],
        Derivation.of(schema["teach"], schema["class_list"]),
    )
    db.load_instance({
        "teach": [("euclid", "math"), ("laplace", "math")],
        "class_list": [("math", "john"), ("math", "bill")],
    })
    return db


def section_42_updates() -> tuple[Update, ...]:
    """The update sequence u1..u5 of Section 4.2."""
    return (
        Update.delete("pupil", "euclid", "john"),
        Update.ins("pupil", "gauss", "bill"),
        Update.delete("teach", "euclid", "math"),
        Update.ins("class_list", "math", "john"),
        Update.ins("teach", "gauss", "math"),
    )


def section_31_relational() -> tuple[RelationalDatabase, str, tuple]:
    """The Section 3.1 instance: r1(AB), r2(BC), r3(CD), the chain view
    v1(AD), and the update target <a1, d1>.

    Returns (database, view name, view tuple to delete).
    """
    db = RelationalDatabase([
        Relation("r1", ("A", "B"), [("a1", "b1"), ("a1", "b2")]),
        Relation("r2", ("B", "C"), [("b1", "c1"), ("b2", "c1")]),
        Relation("r3", ("C", "D"), [("c1", "d1")]),
    ])
    db.add_view(ChainView("v1", ("r1", "r2", "r3")))
    return db, "v1", ("a1", "d1")
