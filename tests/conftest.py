"""Shared fixtures: the paper's schemas, instances and designer scripts.

Everything here delegates to :mod:`repro.workloads.university`, so tests
and benches replay identical artifacts.
"""

from __future__ import annotations

import pytest

from repro.core.schema import Schema
from repro.fdb.database import FunctionalDatabase
from repro.workloads.university import (
    design_trace_designer,
    design_trace_functions,
    pupil_database,
    schema_s1,
    schema_s2,
    section_31_relational,
    section_42_updates,
)


@pytest.fixture
def s1() -> Schema:
    """Table 1: conceptual schema S1."""
    return schema_s1()


@pytest.fixture
def s2() -> Schema:
    """Section 2.1: the UFA counterexample schema."""
    return schema_s2()


@pytest.fixture
def trace_functions():
    """The Section 2.3 design-trace functions in addition order."""
    return design_trace_functions()


@pytest.fixture
def trace_designer():
    """Fresh scripted designer replaying the paper's decisions."""
    return design_trace_designer()


@pytest.fixture
def pupil_db() -> FunctionalDatabase:
    """The Section 3 / 4.2 instance (teach, class_list, derived pupil)."""
    return pupil_database()


@pytest.fixture
def u_sequence():
    """Updates u1..u5 of Section 4.2."""
    return section_42_updates()


@pytest.fixture
def relational_31():
    """(db, view name, target tuple) of Section 3.1."""
    return section_31_relational()
