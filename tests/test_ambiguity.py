"""Tests for the degree-of-ambiguity metrics (Section 5 extension)."""

from __future__ import annotations

import pytest

from repro.fdb.ambiguity import measure
from repro.fdb.logic import Truth


class TestMeasureOnPupil:
    def test_clean_database(self, pupil_db):
        report = measure(pupil_db)
        assert report.degree == 0.0
        assert report.nc_count == 0
        assert report.null_count == 0
        assert report.total_facts == 8  # 4 base + 4 derived

    def test_after_derived_delete(self, pupil_db):
        pupil_db.delete("pupil", "euclid", "john")
        report = measure(pupil_db)
        assert report.nc_count == 1
        # 2 ambiguous base facts + 2 ambiguous pupil facts.
        assert report.ambiguous_facts == 4
        assert report.per_function("teach").ambiguous_facts == 1
        assert report.per_function("pupil").ambiguous_facts == 2
        assert 0 < report.degree < 1

    def test_after_derived_insert(self, pupil_db):
        pupil_db.insert("pupil", "gauss", "bill")
        report = measure(pupil_db)
        assert report.null_count == 1
        assert report.nc_count == 0

    def test_per_function_lookup(self, pupil_db):
        report = measure(pupil_db)
        entry = report.per_function("teach")
        assert entry.kind == "base"
        assert entry.total_facts == 2
        with pytest.raises(KeyError):
            report.per_function("nope")

    def test_degree_of_empty_extension(self, pupil_db):
        pupil_db.table("teach").discard("euclid", "math")
        pupil_db.table("teach").discard("laplace", "math")
        report = measure(pupil_db)
        assert report.per_function("pupil").degree == 0.0

    def test_str_report(self, pupil_db):
        pupil_db.delete("pupil", "euclid", "john")
        text = str(measure(pupil_db))
        assert "degree of ambiguity" in text
        assert "teach (base)" in text
        assert "pupil (derived)" in text

    def test_resolution_shrinks_ambiguity(self, pupil_db):
        pupil_db.delete("pupil", "euclid", "john")
        before = measure(pupil_db)
        pupil_db.insert("class_list", "math", "john")  # resolves the NC
        after = measure(pupil_db)
        assert after.ambiguous_facts < before.ambiguous_facts
        assert after.nc_count == 0
