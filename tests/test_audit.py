"""Tests for runtime derivation auditing."""

from __future__ import annotations

import pytest

from repro.core.derivation import Derivation
from repro.core.schema import FunctionDef
from repro.core.types import ObjectType, TypeFunctionality
from repro.fdb.audit import audit_derivations, audit_insert_coverage
from repro.fdb.database import FunctionalDatabase

A, B = ObjectType("A"), ObjectType("B")
MM = TypeFunctionality.MANY_MANY


def two_route_db(insert_mode: str = "all") -> FunctionalDatabase:
    """v has two single-step derivations: via f and via g."""
    db = FunctionalDatabase(insert_mode=insert_mode)
    f = FunctionDef("f", A, B, MM)
    g = FunctionDef("g", A, B, MM)
    db.declare_base(f)
    db.declare_base(g)
    db.declare_derived(
        FunctionDef("v", A, B, MM), [Derivation.of(f), Derivation.of(g)]
    )
    return db


class TestDerivationAgreement:
    def test_agreeing_instance_is_clean(self):
        db = two_route_db()
        db.insert("v", "a", "b")   # mode 'all': both routes materialize
        assert audit_derivations(db) == []

    def test_disagreement_detected(self):
        db = two_route_db()
        db.insert("f", "a", "b")   # only one route
        findings = audit_derivations(db)
        assert len(findings) == 1
        finding = findings[0]
        assert finding.function == "v"
        assert finding.pair == ("a", "b")
        assert finding.derives_it == "f"
        assert finding.misses_it == "g"
        assert "derivable via [f] but not via [g]" in str(finding)

    def test_single_derivation_functions_skipped(self, pupil_db):
        pupil_db.insert("teach", "solo", "course")  # lopsided data
        assert audit_derivations(pupil_db) == []

    def test_names_filter(self):
        db = two_route_db()
        db.insert("f", "a", "b")
        assert audit_derivations(db, names=()) == []
        assert len(audit_derivations(db, names=("v",))) == 1


class TestInsertCoverage:
    def test_mode_all_has_no_gaps(self):
        db = two_route_db(insert_mode="all")
        db.insert("v", "a", "b")
        assert audit_insert_coverage(db) == []

    def test_mode_primary_leaves_gap(self):
        db = two_route_db(insert_mode="primary")
        db.insert("v", "a", "b")
        gaps = audit_insert_coverage(db)
        assert len(gaps) == 1
        assert gaps[0].missing_in == "g"
        assert "no chain via [g]" in str(gaps[0])

    def test_gap_closed_by_later_insert(self):
        db = two_route_db(insert_mode="primary")
        db.insert("v", "a", "b")
        db.insert("g", "a", "b")
        assert audit_insert_coverage(db) == []

    def test_ambiguous_facts_not_required_to_be_covered(self):
        db = two_route_db()
        db.insert("v", "a", "b")
        db.delete("v", "a", "b")   # both single-fact chains -> deleted
        assert audit_insert_coverage(db) == []
