"""Tests for the view-update baselines against the Section 3.1 example,
plus side-effect measurement and the functional-database comparison."""

from __future__ import annotations

import pytest

from repro.core.derivation import Derivation
from repro.core.schema import FunctionDef
from repro.core.types import ObjectType, TypeFunctionality
from repro.fdb.database import FunctionalDatabase
from repro.fdb.evaluate import derived_extension
from repro.fdb.logic import Truth
from repro.relational.dayal_bernstein import DayalBernsteinTranslator
from repro.relational.fuv import FUVTranslator
from repro.relational.relation import Relation, RelationalDatabase
from repro.relational.translate import (
    Deletion,
    Translation,
    measure_side_effects,
)
from repro.relational.view import ChainView


class TestDayalBernstein:
    def test_section_31_translation(self, relational_31):
        """The paper: 'A correct translation of this update under [6]
        semantics is DEL(r1, <a1, b1>), and DEL(r1, <a1, b2>).'"""
        db, view, target = relational_31
        translation = DayalBernsteinTranslator().translate(db, view, target)
        assert translation.accepted
        assert translation.deletions == (
            Deletion("r1", ("a1", "b1")),
            Deletion("r1", ("a1", "b2")),
        )

    def test_absent_tuple_empty_translation(self, relational_31):
        db, view, _ = relational_31
        translation = DayalBernsteinTranslator().translate(
            db, view, ("zz", "d1")
        )
        assert translation.accepted and translation.deletions == ()

    def test_rejects_when_every_relation_causes_side_effects(self):
        """Shared tuples everywhere: no single-relation deletion set is
        side-effect free."""
        db = RelationalDatabase([
            Relation("r1", ("A", "B"),
                     [("a1", "b"), ("a2", "b")]),
            Relation("r2", ("B", "C"), [("b", "c")]),
        ])
        db.add_view(ChainView("v", ("r1", "r2")))
        # v = {<a1,c>, <a2,c>}. Deleting <a1,c>: from r1 remove
        # <a1,b> -> ok actually... choose a harder instance:
        db2 = RelationalDatabase([
            Relation("r1", ("A", "B"), [("a", "b1"), ("a", "b2")]),
            Relation("r2", ("B", "C"),
                     [("b1", "c1"), ("b2", "c1"), ("b2", "c2")]),
        ])
        db2.add_view(ChainView("v", ("r1", "r2")))
        # v = {<a,c1>, <a,c2>}. DEL(v, <a,c1>):
        #  - r1-only: must remove <a,b1> and <a,b2> -> kills <a,c2>.
        #  - r2-only: must remove <b1,c1> and <b2,c1> -> fine? <a,c2>
        #    survives via <b2,c2>. So r2 works; force failure by also
        #    routing c2 through b1... build the real rejection case:
        db3 = RelationalDatabase([
            Relation("r1", ("A", "B"), [("a", "b1"), ("a", "b2")]),
            Relation("r2", ("B", "C"),
                     [("b1", "c1"), ("b2", "c1"),
                      ("b1", "c2"), ("b2", "c3")]),
        ])
        db3.add_view(ChainView("v", ("r1", "r2")))
        # DEL(v, <a, c1>): r1-only kills c2/c3; r2-only removes
        # <b1,c1>, <b2,c1> which is side-effect free... c2 and c3 kept.
        translation = DayalBernsteinTranslator().translate(
            db3, "v", ("a", "c1")
        )
        assert translation.accepted
        assert all(d.relation == "r2" for d in translation.deletions)

    def test_true_rejection(self):
        """A view over one relation where the target shares its tuple
        with another view tuple cannot arise (each view tuple is its own
        base tuple); rejection needs shared participation on every
        relation. Construct it with a two-hop chain whose every
        single-relation fix breaks a sibling."""
        db = RelationalDatabase([
            Relation("r1", ("A", "B"), [("a", "b"), ("a2", "b")]),
            Relation("r2", ("B", "C"), [("b", "c"), ("b", "c2")]),
        ])
        db.add_view(ChainView("v", ("r1", "r2")))
        # v = {<a,c>, <a,c2>, <a2,c>, <a2,c2>}. DEL(v, <a, c>):
        #  r1-only: remove <a,b> -> also kills <a,c2>. Side effect.
        #  r2-only: remove <b,c> -> also kills <a2,c>. Side effect.
        translation = DayalBernsteinTranslator().translate(
            db, "v", ("a", "c")
        )
        assert not translation.accepted
        assert translation.deletions == ()


class TestFUV:
    def test_section_31_translation(self, relational_31):
        """The paper: 'according to the semantics of [9] u4 is performed
        by deleting DEL(r3, <c1, d1>)'."""
        db, view, target = relational_31
        translation = FUVTranslator().translate(db, view, target)
        assert translation.accepted
        assert translation.deletions == (Deletion("r3", ("c1", "d1")),)

    def test_minimum_cardinality(self):
        db = RelationalDatabase([
            Relation("r1", ("A", "B"), [("a", "b1"), ("a", "b2")]),
            Relation("r2", ("B", "C"), [("b1", "c"), ("b2", "c")]),
        ])
        db.add_view(ChainView("v", ("r1", "r2")))
        translation = FUVTranslator().translate(db, "v", ("a", "c"))
        # One deletion cannot be beaten; any single r1 tuple leaves the
        # other chain alive, so the minimum hits r2's shared... no —
        # both r2 tuples differ. Minimum hitting set has size 2 here?
        # chains: {r1<a,b1>, r2<b1,c>} and {r1<a,b2>, r2<b2,c>}; they
        # are disjoint, so the minimum has exactly 2 deletions.
        assert len(translation.deletions) == 2

    def test_greedy_fallback_matches_exact_on_easy_case(self,
                                                        relational_31):
        db, view, target = relational_31
        greedy = FUVTranslator(exact_limit=0).translate(db, view, target)
        exact = FUVTranslator().translate(db, view, target)
        assert set(greedy.deletions) == set(exact.deletions)

    def test_absent_tuple(self, relational_31):
        db, view, _ = relational_31
        translation = FUVTranslator().translate(db, view, ("zz", "d1"))
        assert translation.deletions == ()


class TestSideEffectMeasurement:
    def test_db_translation_side_effects(self, relational_31):
        db, view, target = relational_31
        effects = measure_side_effects(
            db, DayalBernsteinTranslator(), view, target
        )
        assert effects.accepted and effects.achieved
        assert effects.base_deletions == 2
        assert effects.view_losses == 0

    def test_fuv_translation_side_effects(self, relational_31):
        db, view, target = relational_31
        effects = measure_side_effects(db, FUVTranslator(), view, target)
        assert effects.base_deletions == 1
        assert effects.view_losses == 0

    def test_fuv_can_cause_view_losses(self):
        """Minimal change is not side-effect free: when the unique
        minimum hitting set is the shared last-hop tuple (the paper's
        r3 <c1, d1>, with a second source a2 added), deleting it kills
        the sibling view tuple."""
        db = RelationalDatabase([
            Relation("r1", ("A", "B"),
                     [("a1", "b1"), ("a1", "b2"), ("a2", "b1")]),
            Relation("r2", ("B", "C"), [("b1", "c1"), ("b2", "c1")]),
            Relation("r3", ("C", "D"), [("c1", "d1")]),
        ])
        db.add_view(ChainView("v", ("r1", "r2", "r3")))
        effects = measure_side_effects(db, FUVTranslator(), "v", ("a1", "d1"))
        assert effects.achieved
        assert effects.base_deletions == 1       # DEL(r3, <c1, d1>)
        assert effects.view_losses == 1          # <a2, d1> lost too

    def test_rejected_translation_measured_as_not_achieved(self):
        db = RelationalDatabase([
            Relation("r1", ("A", "B"), [("a", "b"), ("a2", "b")]),
            Relation("r2", ("B", "C"), [("b", "c"), ("b", "c2")]),
        ])
        db.add_view(ChainView("v", ("r1", "r2")))
        effects = measure_side_effects(
            db, DayalBernsteinTranslator(), "v", ("a", "c")
        )
        assert not effects.accepted and not effects.achieved
        assert effects.total == 0

    def test_measure_does_not_mutate(self, relational_31):
        db, view, target = relational_31
        measure_side_effects(db, FUVTranslator(), view, target)
        assert ("c1", "d1") in db.relation("r3")


class TestFunctionalCounterpart:
    """The paper's own answer on the same Section 3.1 instance."""

    def _functional_31(self) -> FunctionalDatabase:
        A, B, C, D = (ObjectType(n) for n in "ABCD")
        MM = TypeFunctionality.MANY_MANY
        db = FunctionalDatabase()
        r1 = FunctionDef("r1", A, B, MM)
        r2 = FunctionDef("r2", B, C, MM)
        r3 = FunctionDef("r3", C, D, MM)
        for f in (r1, r2, r3):
            db.declare_base(f)
        db.declare_derived(
            FunctionDef("v1", A, D, MM), Derivation.of(r1, r2, r3)
        )
        db.load("r1", [("a1", "b1"), ("a1", "b2")])
        db.load("r2", [("b1", "c1"), ("b2", "c1")])
        db.load("r3", [("c1", "d1")])
        return db

    def test_no_base_deletions_and_exact_ncs(self):
        db = self._functional_31()
        assert derived_extension(db, "v1") == {("a1", "d1"): Truth.TRUE}
        db.delete("v1", "a1", "d1")
        # Both derivation chains negated; footnote 4 of the paper.
        assert len(db.ncs) == 2
        # Zero base deletions.
        assert len(db.table("r1")) == 2
        assert len(db.table("r2")) == 2
        assert len(db.table("r3")) == 1
        # The target is gone.
        assert db.truth_of("v1", "a1", "d1") is Truth.FALSE
