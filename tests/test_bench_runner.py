"""The unified bench runner: discovery, execution, reports, comparison.

Drives :mod:`repro.bench` against synthetic bench modules (written to
``tmp_path``) so the tests stay fast and hermetic, plus the regression
comparison's decision table and the scale helpers the real benches
share.
"""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.bench import (
    FakeBenchmark,
    Report,
    ReportStore,
    compare_payloads,
    discover_benches,
    propagation_roundtrip,
    render_payload_text,
    run_bench,
    scale_factor,
    scaled,
    scaled_sizes,
)
from repro.bench.scale import ENV_VAR
from repro.obs import OBS


def _scrub():
    OBS.disable()
    OBS.reset()
    OBS.metrics.clear()
    OBS.events.clear_sinks()
    OBS.slowlog.disable()


@pytest.fixture(autouse=True)
def clean_obs():
    _scrub()
    yield
    _scrub()


# -- scale helpers ------------------------------------------------------------


class TestScale:
    def test_default_is_identity(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert scale_factor() == 1.0
        assert scaled(120) == 120

    def test_env_scales_with_floor(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "0.25")
        assert scaled(120) == 30
        assert scaled(2, minimum=10) == 10

    def test_bad_values_fall_back(self, monkeypatch):
        for bad in ("zero", "-1", "0"):
            monkeypatch.setenv(ENV_VAR, bad)
            assert scale_factor() == 1.0

    def test_scaled_sizes_dedups_preserving_order(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "0.01")
        sizes = scaled_sizes((16, 32, 64), minimum=8)
        assert sizes == (8,)


# -- reports ------------------------------------------------------------------


class TestReport:
    def test_text_is_a_render_of_the_json(self, tmp_path):
        store = ReportStore(tmp_path)
        report = Report("e99_demo")
        report.line("E99 -- demo")
        report.table(("a", "b"), [(1, 2), (30, 4)])
        report.attach({"metrics": {"counters": {"x": 1}}})
        text_path = store.flush(report)
        payload = json.loads(
            (tmp_path / "e99_demo.json").read_text()
        )
        assert payload["metrics"]["counters"]["x"] == 1
        assert text_path.read_text() == render_payload_text(payload)
        # The rendered lines are mirrored into the JSON itself.
        assert payload["report"][0] == "E99 -- demo"

    def test_flushes_accumulate_per_experiment(self, tmp_path):
        store = ReportStore(tmp_path)
        first = Report("e1_x")
        first.line("one")
        store.flush(first)
        second = Report("e1_x")
        second.line("two")
        store.flush(second)
        payload = store.payload("e1_x")
        assert [b["text"] for b in payload["blocks"]] == ["one", "two"]


# -- the runner ---------------------------------------------------------------


GOOD_BENCH = textwrap.dedent('''
    """A minimal bench module in the house style."""
    from dataclasses import dataclass

    from repro.obs import OBS


    @dataclass
    class Probe:
        n: int


    def work(n):
        total = 0
        for i in range(n):
            total += Probe(i).n
        return total


    def test_bench_work(benchmark):
        result = benchmark(work, 100)
        assert result == 4950


    def test_report(report):
        OBS.inc("demo.widgets", 25)
        report.line("demo -- results")
        report.table(("metric", "value"), [("widgets", 25)])
''')


FAILING_BENCH = textwrap.dedent('''
    def test_bench_broken(benchmark):
        assert False, "deliberate"


    def test_needs_db(benchmark, db_fixture):
        pass
''')


def _write_bench(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(source, encoding="utf-8")
    return path


class TestRunner:
    def test_fake_benchmark_protocol(self):
        fake = FakeBenchmark(rounds=2)
        calls = []
        result = fake(lambda: calls.append(1) or 42)
        assert result == 42
        assert len(calls) == 3  # one warm-up + two timed
        assert fake.stats["rounds"] == 2
        assert fake.stats["min_seconds"] >= 0

    def test_discover_orders_numerically(self, tmp_path):
        for name in ("bench_e10_b.py", "bench_e2_a.py", "bench_e1_c.py"):
            _write_bench(tmp_path, name, "")
        found = discover_benches(tmp_path)
        assert list(found) == ["e1", "e2", "e10"]

    def test_runs_module_and_collects(self, tmp_path):
        path = _write_bench(tmp_path, "bench_e99_demo.py", GOOD_BENCH)
        store = ReportStore(tmp_path / "results")
        result = run_bench(path, store=store, rounds=2)
        assert result.ok
        assert result.tests_run == 2
        assert result.timings["test_bench_work"]["rounds"] == 2
        assert result.counters() == {"demo.widgets": 25}
        payload = store.payload("e99_demo")
        assert payload["report"][0] == "demo -- results"

    def test_dataclass_in_bench_module_works(self, tmp_path):
        """Module registration in sys.modules: @dataclass resolves
        cls.__module__ at class creation (the e9 regression)."""
        path = _write_bench(tmp_path, "bench_e98_dc.py", GOOD_BENCH)
        result = run_bench(path, store=ReportStore(tmp_path / "r"))
        assert result.ok

    def test_failures_are_recorded_not_raised(self, tmp_path):
        path = _write_bench(tmp_path, "bench_e97_bad.py", FAILING_BENCH)
        result = run_bench(path, store=ReportStore(tmp_path / "r"))
        assert not result.ok
        errors = {f["test"]: f["error"] for f in result.failures}
        assert "deliberate" in errors["test_bench_broken"]
        assert "unsupported fixtures" in errors["test_needs_db"]

    def test_import_error_is_one_failure(self, tmp_path):
        path = _write_bench(tmp_path, "bench_e96_boom.py",
                            "raise RuntimeError('no')\n")
        result = run_bench(path, store=ReportStore(tmp_path / "r"))
        assert [f["test"] for f in result.failures] == ["<import>"]

    def test_counters_do_not_leak_between_modules(self, tmp_path):
        noisy = _write_bench(tmp_path, "bench_e95_noisy.py", GOOD_BENCH)
        quiet = _write_bench(
            tmp_path, "bench_e94_quiet.py",
            "def test_report(report):\n"
            "    from repro.obs import OBS\n"
            "    OBS.inc('quiet.only')\n"
            "    report.line('q')\n",
        )
        store = ReportStore(tmp_path / "r")
        run_bench(noisy, store=store)
        result = run_bench(quiet, store=store)
        assert result.counters() == {"quiet.only": 1}


class TestPropagationRoundtrip:
    def test_produces_dag_artifacts(self, tmp_path):
        summary = propagation_roundtrip(tmp_path)
        assert summary["causes"] == ["u1"]
        assert summary["spans"] >= 1
        dot = (tmp_path / "propagation_trace.dot").read_text()
        assert dot.startswith("digraph")
        jsonl = (tmp_path / "propagation_trace.jsonl").read_text()
        assert jsonl.strip()


# -- the comparison -----------------------------------------------------------


def _payload(scale=1.0, counters=None, timings=None):
    return {
        "scale": scale,
        "counters": counters or {},
        "timings": timings or {},
    }


class TestComparePayloads:
    def test_no_baseline(self):
        verdict = compare_payloads(_payload(), None)
        assert verdict["status"] == "no-baseline"

    def test_scale_mismatch_refuses(self):
        verdict = compare_payloads(
            _payload(scale=1.0), _payload(scale=0.25)
        )
        assert verdict["status"] == "scale-mismatch"

    def test_counter_regression_fails(self):
        verdict = compare_payloads(
            _payload(counters={"chains": 200}),
            _payload(counters={"chains": 100}),
        )
        assert verdict["status"] == "regression"
        (reg,) = verdict["counter_regressions"]
        assert reg["counter"] == "chains"
        assert reg["growth"] == 1.0

    def test_small_counters_are_exempt(self):
        verdict = compare_payloads(
            _payload(counters={"rare": 4}),
            _payload(counters={"rare": 1}),
            min_count=20,
        )
        assert verdict["status"] == "ok"

    def test_within_threshold_is_ok(self):
        verdict = compare_payloads(
            _payload(counters={"chains": 110}),
            _payload(counters={"chains": 100}),
            threshold=0.25,
        )
        assert verdict["status"] == "ok"

    def test_timings_informational_by_default(self):
        current = _payload(timings={"t": {"min_seconds": 2.0}})
        previous = _payload(timings={"t": {"min_seconds": 1.0}})
        verdict = compare_payloads(current, previous)
        assert verdict["status"] == "ok"
        assert verdict["timing_regressions"]
        enforced = compare_payloads(current, previous,
                                    enforce_timings=True)
        assert enforced["status"] == "regression"

    def test_new_counter_without_baseline_is_ignored(self):
        verdict = compare_payloads(
            _payload(counters={"fresh": 1000}), _payload()
        )
        assert verdict["status"] == "ok"


class TestVolatileCounters:
    def test_latency_shaped_families_are_excluded(self):
        from repro.bench.compare import VOLATILE_COUNTER_PREFIXES

        for prefix in VOLATILE_COUNTER_PREFIXES:
            name = prefix + "r0"
            verdict = compare_payloads(
                _payload(counters={name: 100_000, "chains": 100}),
                _payload(counters={name: 100, "chains": 100}),
            )
            assert verdict["status"] == "ok", name

    def test_deterministic_replication_counters_still_enforced(self):
        verdict = compare_payloads(
            _payload(counters={"replication.records_shipped": 500}),
            _payload(counters={"replication.records_shipped": 100}),
        )
        assert verdict["status"] == "regression"

    def test_snapshot_catch_ups_not_volatile(self):
        # Only the byte volumes are timing-shaped; the catch-up count
        # is a deterministic work counter and stays enforced.
        verdict = compare_payloads(
            _payload(counters={"replication.snapshot.catch_ups": 90}),
            _payload(counters={"replication.snapshot.catch_ups": 30}),
        )
        assert verdict["status"] == "regression"
