"""Tests for the closure computation (Section 2.1)."""

from __future__ import annotations

import pytest

from repro.core.closure import closure_signatures, derivable_functions
from repro.core.schema import FunctionDef, Schema
from repro.core.types import ObjectType, TypeFunctionality

A, B, C = (ObjectType(n) for n in "ABC")
MO = TypeFunctionality.MANY_ONE
OM = TypeFunctionality.ONE_MANY
MM = TypeFunctionality.MANY_MANY


def chain_schema() -> Schema:
    return Schema([
        FunctionDef("f", A, B, MO),
        FunctionDef("g", B, C, MO),
    ])


class TestClosureSignatures:
    def test_contains_generators_and_inverses(self):
        signatures = closure_signatures(chain_schema())
        assert (A, B, MO) in signatures
        assert (B, A, OM) in signatures
        assert str(signatures[(B, A, OM)]) == "f^-1"

    def test_contains_composites(self):
        signatures = closure_signatures(chain_schema())
        assert (A, C, MO) in signatures
        assert str(signatures[(A, C, MO)]) == "f o g"
        assert (C, A, OM) in signatures
        assert str(signatures[(C, A, OM)]) == "g^-1 o f^-1"

    def test_witnesses_are_shortest(self):
        # Add a direct A->C function: the witness for (A, C, many-one)
        # becomes the single step.
        schema = chain_schema()
        schema.add(FunctionDef("direct", A, C, MO))
        signatures = closure_signatures(schema)
        assert str(signatures[(A, C, MO)]) == "direct"

    def test_self_roundtrips_present(self):
        # f o f^-1 gives an A -> A signature (many-many).
        signatures = closure_signatures(chain_schema())
        assert (A, A, MM) in signatures

    def test_max_length_caps(self):
        signatures = closure_signatures(chain_schema(), max_length=1)
        assert (A, B, MO) in signatures
        assert (A, C, MO) not in signatures

    def test_empty_set(self):
        assert closure_signatures(Schema()) == {}

    def test_finite_bound(self):
        # At most |nodes|^2 * 4 signatures.
        signatures = closure_signatures(chain_schema())
        assert len(signatures) <= 9 * 4


class TestDerivableFunctions:
    def test_s1_partition(self, s1):
        result = derivable_functions(
            s1, ["score", "cutoff", "taught_by"]
        )
        assert str(result["grade"]) == "score o cutoff"
        assert str(result["teach"]) == "taught_by^-1"

    def test_underivable_reported_none(self, s1):
        result = derivable_functions(s1, ["taught_by"])
        assert result["grade"] is None
        assert str(result["teach"]) == "taught_by^-1"

    def test_base_functions_not_listed(self, s1):
        result = derivable_functions(
            s1, ["score", "cutoff", "taught_by"]
        )
        assert set(result) == {"grade", "teach"}

    def test_agrees_with_has_equivalent_walk(self, s1):
        from repro.core.graph import FunctionGraph

        base_names = ["score", "cutoff", "taught_by"]
        base = s1.restricted_to(base_names)
        graph = FunctionGraph.of_schema(base)
        result = derivable_functions(s1, base_names)
        for name, witness in result.items():
            assert (witness is not None) == graph.has_equivalent_walk(
                s1[name]
            )
            if witness is not None:
                assert witness.matches(s1[name])
