"""Tests for the company workload: false twins, one-one functions,
and injective null resolution."""

from __future__ import annotations

import pytest

from repro.core.design_aid import DesignSession
from repro.core.minimal_schema import minimal_schema_ams
from repro.fdb.constraints import resolve_nulls
from repro.fdb.evaluate import derived_extension
from repro.fdb.logic import Truth
from repro.fdb.values import is_null
from repro.workloads.company import (
    company_database,
    company_design_order,
    company_designer,
    company_schema,
)


class TestDesign:
    def test_session_lands_on_intended_split(self):
        session = DesignSession(company_designer())
        session.add_all(company_design_order())
        assert set(session.base_schema.names) == {
            "works_in", "manages", "reports_to", "badge",
        }
        assert set(session.derived_schema.names) == {
            "dept_head_of", "badge_owner",
        }

    def test_false_twin_cycle_offered_and_kept(self):
        """Adding reports_to closes a cycle whose candidate the
        designer must refuse — the UFA-breaking moment."""
        session = DesignSession(company_designer())
        functions = company_design_order()
        session.add(functions[0])  # works_in
        session.add(functions[1])  # manages
        reports = session.add(functions[2])  # reports_to -> cycle
        assert len(reports) == 1
        candidates = {f.name for f in reports[0].candidate_functions}
        # reports_to and works_in both look derivable; neither is.
        assert "reports_to" in candidates
        assert "reports_to" in session.base_schema.names

    def test_ams_would_misclassify(self):
        """Under the UFA, AMS removes works_in (first eligible) — a
        semantic error the session avoided."""
        base_only = company_schema().restricted_to(
            ["works_in", "manages", "reports_to"]
        )
        result = minimal_schema_ams(base_only)
        assert len(result.derived) == 1  # something got removed
        assert result.derived_names[0] in ("works_in", "reports_to")

    def test_confirmed_derivations(self):
        session = DesignSession(company_designer())
        session.add_all(company_design_order())
        outcome = session.finish()
        assert [str(d) for d in outcome.derivations["dept_head_of"]] == [
            "works_in o manages^-1",
        ]
        assert [str(d) for d in outcome.derivations["badge_owner"]] == [
            "badge^-1",
        ]

    def test_twin_not_offered_as_derivation(self):
        """reports_to is a syntactic twin of dept_head_of, so the system
        offers it as a potential derivation — and the script rejects it."""
        session = DesignSession(company_designer())
        session.add_all(company_design_order())
        potentials = {
            str(d) for d in session.potential_derivations("dept_head_of")
        }
        assert "reports_to" in potentials
        confirmed = {
            str(d) for d in session.confirmed_derivations("dept_head_of")
        }
        assert confirmed == {"works_in o manages^-1"}


class TestInstanceSemantics:
    def test_twins_disagree_on_data(self):
        """alice reports across departments: the two employee->manager
        functions answer differently, proving they are not the same
        function."""
        db = company_database()
        assert db.truth_of("reports_to", "alice", "erin") is Truth.TRUE
        assert db.truth_of("dept_head_of", "alice", "erin") is Truth.FALSE
        assert db.truth_of("dept_head_of", "alice", "dave") is Truth.TRUE

    def test_dept_head_extension(self):
        db = company_database()
        assert derived_extension(db, "dept_head_of") == {
            ("alice", "dave"): Truth.TRUE,
            ("bob", "dave"): Truth.TRUE,
            ("carol", "erin"): Truth.TRUE,
        }

    def test_single_step_inverse_derived(self):
        db = company_database()
        assert db.truth_of("badge_owner", "b2", "bob") is Truth.TRUE
        db.insert("badge_owner", "b9", "frank")
        assert db.table("badge").get("frank", "b9") is not None

    def test_derived_delete_creates_nc(self):
        db = company_database()
        db.delete("dept_head_of", "alice", "dave")
        assert len(db.ncs) == 1
        assert db.truth_of("dept_head_of", "alice", "dave") is Truth.FALSE
        # No base fact deleted; the two chain members are ambiguous.
        assert db.table("works_in").get("alice", "sales").truth is (
            Truth.AMBIGUOUS
        )
        assert db.table("manages").get("dave", "sales").truth is (
            Truth.AMBIGUOUS
        )


class TestOneOneResolution:
    def test_nvc_resolved_through_both_fd_directions(self):
        """INS(dept_head_of, <frank, erin>) creates <frank, n1> in
        works_in and <erin, n1> in manages. manages is one-one and
        already maps erin to research, so n1 := research resolves both
        rows."""
        db = company_database()
        db.insert("dept_head_of", "frank", "erin")
        assert any(
            is_null(fact.y) for fact in db.table("works_in").facts()
        )
        performed = resolve_nulls(db)
        assert len(performed) == 1
        assert str(performed[0].value) == "research"
        assert db.table("works_in").get("frank", "research") is not None
        # No null remains anywhere.
        for name in db.base_names:
            for fact in db.table(name).facts():
                assert not is_null(fact.x) and not is_null(fact.y)
        assert db.truth_of("dept_head_of", "frank", "erin") is Truth.TRUE

    def test_injective_direction(self):
        """badge is one-one: a null *domain* row unifies through the
        injective (range -> domain) dependency."""
        db = company_database()
        n1 = db.nulls.fresh()
        db.table("badge").add_pair(n1, "b1")  # someone's badge is b1
        performed = resolve_nulls(db)
        assert any(str(s.value) == "alice" for s in performed)
        assert db.table("badge").null_x_facts() == ()


class TestGuardedCompanyPolicy:
    def test_one_badge_per_employee_enforced(self):
        from repro.errors import ConstraintViolation
        from repro.fdb.integrity import CardinalityConstraint, ConstraintSet
        from repro.fdb.updates import Update

        db = company_database()
        policy = ConstraintSet([
            CardinalityConstraint("badge", per="domain", maximum=1),
        ])
        with pytest.raises(ConstraintViolation):
            policy.guarded(db, Update.ins("badge", "alice", "b99"))
        assert db.truth_of("badge", "alice", "b99") is Truth.FALSE
