"""Tests for functionality constraints and FD-driven null resolution."""

from __future__ import annotations

import pytest

from repro.core.derivation import Derivation
from repro.core.schema import FunctionDef
from repro.core.types import ObjectType, TypeFunctionality
from repro.errors import ConstraintViolation
from repro.fdb.constraints import (
    check_insert,
    guarded_insert,
    planned_unifications,
    resolve_nulls,
    substitute_null,
    violations,
)
from repro.fdb.database import FunctionalDatabase
from repro.fdb.logic import Truth
from repro.fdb.values import NullValue

A, B, C = (ObjectType(n) for n in "ABC")
MO = TypeFunctionality.MANY_ONE
OM = TypeFunctionality.ONE_MANY
OO = TypeFunctionality.ONE_ONE
MM = TypeFunctionality.MANY_MANY


def single_valued_db() -> FunctionalDatabase:
    db = FunctionalDatabase()
    db.declare_base(FunctionDef("f", A, B, MO))
    return db


class TestViolations:
    def test_single_valued_conflict_detected(self):
        db = single_valued_db()
        db.load("f", [("a", "b1"), ("a", "b2")])
        found = violations(db)
        assert len(found) == 1
        assert found[0].kind == "single_valued"
        assert "f" in str(found[0])

    def test_injective_conflict_detected(self):
        db = FunctionalDatabase()
        db.declare_base(FunctionDef("f", A, B, OM))
        db.load("f", [("a1", "b"), ("a2", "b")])
        found = violations(db)
        assert len(found) == 1
        assert found[0].kind == "injective"

    def test_one_one_checks_both(self):
        db = FunctionalDatabase()
        db.declare_base(FunctionDef("f", A, B, OO))
        db.load("f", [("a", "b1"), ("a", "b2"), ("a2", "b1")])
        kinds = {v.kind for v in violations(db)}
        assert kinds == {"single_valued", "injective"}

    def test_many_many_never_violates(self):
        db = FunctionalDatabase()
        db.declare_base(FunctionDef("f", A, B, MM))
        db.load("f", [("a", "b1"), ("a", "b2"), ("a2", "b1")])
        assert violations(db) == []

    def test_null_conflicts_not_definite(self):
        db = single_valued_db()
        n1 = db.nulls.fresh()
        db.table("f").add_pair("a", n1)
        db.table("f").add_pair("a", "b")
        assert violations(db) == []


class TestCheckInsert:
    def test_rejects_single_valued_conflict(self):
        db = single_valued_db()
        db.load("f", [("a", "b1")])
        with pytest.raises(ConstraintViolation):
            check_insert(db, "f", "a", "b2")

    def test_allows_reassertion(self):
        db = single_valued_db()
        db.load("f", [("a", "b1")])
        check_insert(db, "f", "a", "b1")  # no raise

    def test_allows_null_overlap(self):
        db = single_valued_db()
        n1 = db.nulls.fresh()
        db.table("f").add_pair("a", n1)
        check_insert(db, "f", "a", "b")  # unifiable, not a violation

    def test_injective_check(self):
        db = FunctionalDatabase()
        db.declare_base(FunctionDef("f", A, B, OM))
        db.load("f", [("a1", "b")])
        with pytest.raises(ConstraintViolation):
            check_insert(db, "f", "a2", "b")

    def test_guarded_insert(self):
        db = single_valued_db()
        guarded_insert(db, "f", "a", "b")
        with pytest.raises(ConstraintViolation):
            guarded_insert(db, "f", "a", "b2")


class TestPlannedUnifications:
    def test_null_unifies_with_data(self):
        db = single_valued_db()
        n1 = db.nulls.fresh()
        db.table("f").add_pair("a", n1)
        db.table("f").add_pair("a", "b")
        planned = planned_unifications(db)
        assert len(planned) == 1
        assert planned[0].null == n1 and planned[0].value == "b"

    def test_two_nulls_unify_to_lower_index(self):
        db = single_valued_db()
        n1, n2 = db.nulls.fresh(), db.nulls.fresh()
        db.table("f").add_pair("a", n1)
        db.table("f").add_pair("a", n2)
        planned = planned_unifications(db)
        assert len(planned) == 1
        assert planned[0].null == n2 and planned[0].value == n1

    def test_no_plan_for_many_many(self):
        db = FunctionalDatabase()
        db.declare_base(FunctionDef("f", A, B, MM))
        n1 = db.nulls.fresh()
        db.table("f").add_pair("a", n1)
        db.table("f").add_pair("a", "b")
        assert planned_unifications(db) == []

    def test_injective_plans_on_domain(self):
        db = FunctionalDatabase()
        db.declare_base(FunctionDef("f", A, B, OM))
        n1 = db.nulls.fresh()
        db.table("f").add_pair(n1, "b")
        db.table("f").add_pair("a", "b")
        planned = planned_unifications(db)
        assert len(planned) == 1
        assert planned[0].null == n1 and planned[0].value == "a"

    def test_each_null_claimed_once(self):
        """A null appearing in two groups gets one substitution per
        round (the fixpoint loop handles the rest)."""
        db = FunctionalDatabase()
        db.declare_base(FunctionDef("f", A, B, OO))
        n1 = db.nulls.fresh()
        db.table("f").add_pair("a", n1)
        db.table("f").add_pair("a", "b")
        db.table("f").add_pair("a2", n1)   # same null elsewhere
        planned = planned_unifications(db)
        assert len([s for s in planned if s.null == n1]) == 1


class TestSubstitution:
    def test_substitute_everywhere(self):
        db = FunctionalDatabase()
        db.declare_base(FunctionDef("f", A, B, MM))
        db.declare_base(FunctionDef("g", B, C, MM))
        n1 = db.nulls.fresh()
        db.table("f").add_pair("a", n1)
        db.table("g").add_pair(n1, "c")
        substitute_null(db, n1, "b")
        assert db.table("f").get("a", "b") is not None
        assert db.table("g").get("b", "c") is not None
        assert db.table("f").get("a", n1) is None

    def test_merge_keeps_truth_and_dismantles(self):
        db = FunctionalDatabase()
        db.declare_base(FunctionDef("f", A, B, MM))
        n1 = db.nulls.fresh()
        nvc_fact = db.table("f").add_pair("a", n1)          # true (NVC)
        real_fact = db.table("f").add_pair("a", "b")
        db.ncs.create([("f", real_fact)])                    # ambiguous
        substitute_null(db, n1, "b")
        merged = db.table("f").get("a", "b")
        assert merged.truth is Truth.TRUE
        assert merged.ncl == set()
        assert len(db.ncs) == 0

    def test_nc_refs_rewritten(self):
        db = FunctionalDatabase()
        db.declare_base(FunctionDef("f", A, B, MM))
        db.declare_base(FunctionDef("g", B, C, MM))
        n1 = db.nulls.fresh()
        f_fact = db.table("f").add_pair("a", n1)
        g_fact = db.table("g").add_pair("x", "c")
        nc = db.ncs.create([("f", f_fact), ("g", g_fact)])
        substitute_null(db, n1, "b")
        members = {str(m) for m in db.ncs.get(nc.index).members}
        assert members == {"<f, a, b>", "<g, x, c>"}
        # Dual structure intact after rewrite.
        assert nc.index in db.table("f").get("a", "b").ncl


class TestResolveFixpoint:
    def test_resolves_nvc_against_real_fact(self):
        """The motivating scenario: derived insert created <a, n1>,
        <n1, c>; a later real insert <a, b> under a single-valued f1
        forces n1 = b everywhere."""
        db = FunctionalDatabase()
        f1 = FunctionDef("f1", A, B, MO)
        f2 = FunctionDef("f2", B, C, MO)
        db.declare_base(f1)
        db.declare_base(f2)
        db.declare_derived(
            FunctionDef("v", A, C, MO), Derivation.of(f1, f2)
        )
        db.insert("v", "a", "c")          # creates <a, n1>, <n1, c>
        db.insert("f1", "a", "b")         # forces n1 = b
        performed = resolve_nulls(db)
        assert len(performed) == 1
        assert db.table("f1").get("a", "b") is not None
        assert db.table("f2").get("b", "c") is not None
        assert db.table("f1").null_y_facts() == ()
        assert db.truth_of("v", "a", "c") is Truth.TRUE

    def test_chained_resolution(self):
        """n2 := n1 then n1 := b requires two rounds."""
        db = single_valued_db()
        n1, n2 = db.nulls.fresh(), db.nulls.fresh()
        db.table("f").add_pair("a", n2)
        db.table("f").add_pair("a", n1)
        db.table("f").add_pair("a", "b")
        performed = resolve_nulls(db)
        assert len(performed) >= 2
        assert [f.pair for f in db.table("f").facts()] == [("a", "b")]

    def test_noop_when_nothing_to_do(self):
        db = single_valued_db()
        db.load("f", [("a", "b")])
        assert resolve_nulls(db) == []

    def test_reduces_ambiguity_metric(self):
        from repro.fdb.ambiguity import measure

        db = FunctionalDatabase()
        f1 = FunctionDef("f1", A, B, MO)
        f2 = FunctionDef("f2", B, C, MO)
        db.declare_base(f1)
        db.declare_base(f2)
        db.declare_derived(FunctionDef("v", A, C, MO),
                           Derivation.of(f1, f2))
        db.load("f2", [("b", "c2")])
        db.insert("v", "a", "c")
        db.insert("f1", "a", "b")
        before = measure(db).null_count
        resolve_nulls(db)
        after = measure(db).null_count
        assert after < before
