"""Cross-layer property tests: the big invariants that tie the
subsystems together, under randomized workloads.

* persistence is lossless for any reachable state;
* the journal's undo_all is a true inverse of any update stream;
* query-layer answers coincide with the evaluation layer;
* possible-worlds marginals are consistent with the three-valued
  verdicts;
* insert_mode='all' leaves no derivation-coverage gaps.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fdb import persistence
from repro.fdb.audit import audit_insert_coverage
from repro.fdb.evaluate import derived_extension
from repro.fdb.journal import Journal
from repro.fdb.logic import Truth
from repro.fdb.query import fn
from repro.fdb.worlds import ambiguous_atoms, analyze, derived_marginal
from repro.workloads.generator import (
    WorkloadConfig,
    chain_fdb,
    random_instance,
    random_updates,
)


def build_db(seed: int, k: int = 2, rows: int = 6):
    db = chain_fdb(k)
    random_instance(db, rows, seed=seed, value_pool=5)
    return db


def updates_for(db, seed: int, count: int):
    return random_updates(
        db, count, WorkloadConfig(seed=seed, value_pool=5,
                                  fresh_value_rate=0.3)
    )


def state_fingerprint(db) -> tuple:
    tables = tuple(
        (name, tuple(db.table(name).rows())) for name in db.base_names
    )
    ncs = tuple(sorted(
        (nc.index, tuple(str(m) for m in nc.members)) for nc in db.ncs
    ))
    return (tables, ncs, db.nulls.next_index, db.ncs.next_index)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000), n_updates=st.integers(0, 15))
def test_persistence_lossless_for_any_reachable_state(seed, n_updates):
    db = build_db(seed)
    for update in updates_for(db, seed + 1, n_updates):
        from repro.fdb.updates import apply_update

        apply_update(db, update)
    clone = persistence.loads(persistence.dumps(db))
    assert state_fingerprint(clone) == state_fingerprint(db)
    assert derived_extension(clone, "v") == derived_extension(db, "v")


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000), n_updates=st.integers(1, 12))
def test_journal_undo_all_is_exact_inverse(seed, n_updates):
    db = build_db(seed)
    before = state_fingerprint(db)
    journal = Journal(db)
    journal.execute_all(updates_for(db, seed + 1, n_updates))
    journal.undo_all()
    assert state_fingerprint(db) == before


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000), n_updates=st.integers(0, 12))
def test_query_layer_agrees_with_evaluation_layer(seed, n_updates):
    db = build_db(seed)
    for update in updates_for(db, seed + 1, n_updates):
        from repro.fdb.updates import apply_update

        apply_update(db, update)
    assert fn("v").pairs(db) == derived_extension(db, "v")
    inverted = (~fn("v")).pairs(db)
    assert {(y, x) for (x, y) in fn("v").pairs(db)} == set(inverted)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_world_marginals_respect_three_valued_verdicts(seed):
    db = build_db(seed, rows=5)
    extension = list(derived_extension(db, "v"))
    for pair in extension[:2]:
        db.delete("v", *pair)
    if len(ambiguous_atoms(db)) > 14:
        return  # keep exact enumeration fast
    for (x, y), truth in list(derived_extension(db, "v").items())[:5]:
        probability = derived_marginal(db, "v", x, y)
        if truth is Truth.TRUE:
            assert probability == 1.0
    for pair in extension[:2]:
        if db.truth_of("v", *pair) is Truth.FALSE:
            assert derived_marginal(db, "v", *pair) == 0.0
    report = analyze(db)
    for probability in report.base_marginals.values():
        assert 0.0 <= probability < 1.0  # ambiguous: never certain


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000), n_inserts=st.integers(1, 5))
def test_mode_all_never_leaves_coverage_gaps(seed, n_inserts):
    from repro.core.derivation import Derivation
    from repro.core.schema import FunctionDef
    from repro.core.types import ObjectType, TypeFunctionality
    from repro.fdb.database import FunctionalDatabase

    A, B, C = (ObjectType(n) for n in "ABC")
    MM = TypeFunctionality.MANY_MANY
    db = FunctionalDatabase(insert_mode="all")
    f1 = FunctionDef("f1", A, C, MM)
    f2 = FunctionDef("f2", C, B, MM)
    g = FunctionDef("g", A, B, MM)
    for f in (f1, f2, g):
        db.declare_base(f)
    db.declare_derived(
        FunctionDef("v", A, B, MM),
        [Derivation.of(f1, f2), Derivation.of(g)],
    )
    import random

    rng = random.Random(seed)
    for i in range(n_inserts):
        db.insert("v", f"a{rng.randrange(4)}", f"b{rng.randrange(4)}")
    assert audit_insert_coverage(db) == []
