"""Tests for the FunctionalDatabase container and its front-door API."""

from __future__ import annotations

import pytest

from repro.core.derivation import Derivation
from repro.core.design_aid import DesignSession
from repro.core.schema import FunctionDef
from repro.core.types import ObjectType, TypeFunctionality
from repro.errors import (
    NotABaseFunctionError,
    NotADerivedFunctionError,
    SchemaError,
    UnknownFunctionError,
)
from repro.fdb.database import DerivedFunction, FunctionalDatabase
from repro.fdb.logic import Truth
from repro.workloads.university import (
    design_trace_designer,
    design_trace_functions,
)

A, B, C = (ObjectType(n) for n in "ABC")
MM = TypeFunctionality.MANY_MANY


def make_db() -> FunctionalDatabase:
    db = FunctionalDatabase()
    f = FunctionDef("f", A, B, MM)
    g = FunctionDef("g", B, C, MM)
    db.declare_base(f)
    db.declare_base(g)
    db.declare_derived(FunctionDef("v", A, C, MM), Derivation.of(f, g))
    return db


class TestDeclaration:
    def test_classification(self):
        db = make_db()
        assert db.is_base("f") and db.is_base("g")
        assert db.is_derived("v")
        assert db.base_names == ("f", "g")
        assert db.derived_names == ("v",)

    def test_unknown_function(self):
        db = make_db()
        with pytest.raises(UnknownFunctionError):
            db.is_base("zzz")
        with pytest.raises(UnknownFunctionError):
            db.table("zzz")

    def test_table_of_derived_rejected(self):
        db = make_db()
        with pytest.raises(NotABaseFunctionError):
            db.table("v")

    def test_derived_of_base_rejected(self):
        db = make_db()
        with pytest.raises(NotADerivedFunctionError):
            db.derived("f")

    def test_derivation_must_use_declared_base(self):
        db = FunctionalDatabase()
        f = FunctionDef("f", A, B, MM)
        db.declare_base(f)
        stranger = FunctionDef("g", B, C, MM)
        with pytest.raises(SchemaError):
            db.declare_derived(
                FunctionDef("v", A, C, MM), Derivation.of(f, stranger)
            )

    def test_derivation_may_not_reference_derived(self):
        db = make_db()
        v = db.schema["v"]
        with pytest.raises(SchemaError):
            db.declare_derived(
                FunctionDef("w", A, C, MM), Derivation.of(v)
            )

    def test_derivation_endpoints_checked(self):
        db = FunctionalDatabase()
        f = FunctionDef("f", A, B, MM)
        db.declare_base(f)
        with pytest.raises(SchemaError):
            db.declare_derived(FunctionDef("v", A, C, MM), Derivation.of(f))

    def test_derived_needs_derivations(self):
        with pytest.raises(SchemaError):
            DerivedFunction(FunctionDef("v", A, C, MM), ())

    def test_insert_mode_validated(self):
        with pytest.raises(ValueError):
            FunctionalDatabase(insert_mode="sometimes")

    def test_multiple_derivations(self):
        db = FunctionalDatabase()
        f = FunctionDef("f", A, B, MM)
        g = FunctionDef("g", A, B, MM)
        db.declare_base(f)
        db.declare_base(g)
        derived = db.declare_derived(
            FunctionDef("v", A, B, MM),
            [Derivation.of(f), Derivation.of(g)],
        )
        assert len(derived.derivations) == 2
        assert derived.primary == Derivation.of(f)


class TestFromDesign:
    def test_roundtrip_from_paper_session(self):
        session = DesignSession(design_trace_designer())
        session.add_all(design_trace_functions())
        db = FunctionalDatabase.from_design(session.finish())
        assert set(db.base_names) == {
            "teach", "class_list", "score", "cutoff",
            "attendance", "attendance_eval",
        }
        assert set(db.derived_names) == {"taught_by", "lecturer_of", "grade"}
        assert str(db.derived("grade").primary) == "score o cutoff"

    def test_rejects_unconfirmed_derived(self):
        from repro.core.design_aid import DesignOutcome
        from repro.core.schema import Schema

        base = Schema([FunctionDef("f", A, B, MM)])
        derived = Schema([FunctionDef("v", A, B, MM)])
        outcome = DesignOutcome(base, derived, {"v": ()})
        with pytest.raises(SchemaError):
            FunctionalDatabase.from_design(outcome)


class TestInstance:
    def test_load_and_extension(self):
        db = make_db()
        db.load("f", [("a", "b")])
        db.load_instance({"g": [("b", "c")]})
        assert db.extension("f") == {("a", "b"): Truth.TRUE}
        assert db.extension("v") == {("a", "c"): Truth.TRUE}

    def test_counts(self):
        db = make_db()
        db.load("f", [("a", "b"), ("a2", "b")])
        counts = db.counts()
        assert counts["stored_facts"] == 2
        assert counts["true_facts"] == 2
        assert counts["ambiguous_facts"] == 0
        assert counts["ncs"] == 0

    def test_front_door_dispatch(self):
        db = make_db()
        db.insert("f", "a", "b")
        db.insert("g", "b", "c")
        assert db.truth_of("v", "a", "c") is Truth.TRUE
        db.delete("v", "a", "c")
        assert db.truth_of("v", "a", "c") is not Truth.TRUE
        assert db.counts()["ncs"] == 1

    def test_replace_front_door(self):
        db = make_db()
        db.insert("f", "a", "b")
        db.replace("f", ("a", "b"), ("a", "b2"))
        assert db.truth_of("f", "a", "b") is Truth.FALSE
        assert db.truth_of("f", "a", "b2") is Truth.TRUE

    def test_str(self):
        db = make_db()
        text = str(db)
        assert "2 base, 1 derived" in text
        assert "v = f o g (derived)" in text
