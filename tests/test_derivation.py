"""Tests for derivations (composition chains with inverses)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.derivation import Derivation, Op, Step
from repro.core.schema import FunctionDef
from repro.core.types import ObjectType, TypeFunctionality
from repro.errors import DerivationError

A, B, C, D = (ObjectType(n) for n in "ABCD")
f_ab = FunctionDef("f", A, B, TypeFunctionality.MANY_ONE)
g_bc = FunctionDef("g", B, C, TypeFunctionality.MANY_ONE)
h_cd = FunctionDef("h", C, D, TypeFunctionality.ONE_MANY)
loop_aa = FunctionDef("w", A, A, TypeFunctionality.MANY_MANY)


class TestStep:
    def test_identity_step(self):
        step = Step(f_ab)
        assert step.domain == A and step.range == B
        assert step.functionality == TypeFunctionality.MANY_ONE
        assert str(step) == "f"

    def test_inverse_step(self):
        step = Step(f_ab, Op.INVERSE)
        assert step.domain == B and step.range == A
        assert step.functionality == TypeFunctionality.ONE_MANY
        assert str(step) == "f^-1"

    def test_inverted_flips(self):
        step = Step(f_ab)
        assert step.inverted().op is Op.INVERSE
        assert step.inverted().inverted() == step


class TestDerivationConstruction:
    def test_empty_rejected(self):
        with pytest.raises(DerivationError):
            Derivation([])

    def test_chaining_validated(self):
        with pytest.raises(DerivationError):
            Derivation.of(f_ab, h_cd)  # B != C

    def test_of_wraps_functions(self):
        derivation = Derivation.of(f_ab, g_bc)
        assert derivation.domain == A and derivation.range == C
        assert str(derivation) == "f o g"

    def test_of_mixes_steps_and_functions(self):
        derivation = Derivation.of(Step(g_bc, Op.INVERSE), Step(f_ab, Op.INVERSE))
        assert derivation.domain == C and derivation.range == A
        assert str(derivation) == "g^-1 o f^-1"

    def test_inverse_chaining(self):
        # f: A->B then f^-1: B->A chains.
        derivation = Derivation.of(Step(f_ab), Step(f_ab, Op.INVERSE))
        assert derivation.domain == A and derivation.range == A

    def test_self_loop(self):
        derivation = Derivation.of(loop_aa, loop_aa)
        assert derivation.domain == A and derivation.range == A


class TestDerivationProperties:
    def test_functionality_composes(self):
        derivation = Derivation.of(f_ab, g_bc)
        assert derivation.functionality == TypeFunctionality.MANY_ONE
        derivation2 = Derivation.of(f_ab, g_bc, h_cd)
        assert derivation2.functionality == TypeFunctionality.MANY_MANY

    def test_function_names_and_uses(self):
        derivation = Derivation.of(f_ab, g_bc)
        assert derivation.function_names == ("f", "g")
        assert derivation.uses("f") and not derivation.uses("h")

    def test_container_protocol(self):
        derivation = Derivation.of(f_ab, g_bc)
        assert len(derivation) == 2
        assert derivation[0] == Step(f_ab)
        assert [str(s) for s in derivation] == ["f", "g"]

    def test_equality_and_hash(self):
        assert Derivation.of(f_ab, g_bc) == Derivation.of(f_ab, g_bc)
        assert Derivation.of(f_ab) != Derivation.of(g_bc)
        assert len({Derivation.of(f_ab), Derivation.of(f_ab)}) == 1


class TestEquivalence:
    def test_matches_requires_both(self):
        target_ok = FunctionDef("t", A, C, TypeFunctionality.MANY_ONE)
        target_wrong_tf = FunctionDef("t", A, C, TypeFunctionality.ONE_ONE)
        target_wrong_type = FunctionDef("t", A, D, TypeFunctionality.MANY_ONE)
        derivation = Derivation.of(f_ab, g_bc)
        assert derivation.matches(target_ok)
        assert not derivation.matches(target_wrong_tf)
        assert not derivation.matches(target_wrong_type)

    def test_paper_taught_by(self):
        teach = FunctionDef(
            "teach", ObjectType("faculty"), ObjectType("course"),
            TypeFunctionality.MANY_MANY,
        )
        taught_by = FunctionDef(
            "taught_by", ObjectType("course"), ObjectType("faculty"),
            TypeFunctionality.MANY_MANY,
        )
        assert Derivation.of(Step(teach, Op.INVERSE)).matches(taught_by)


class TestAlgebra:
    def test_inverted_reverses_and_flips(self):
        derivation = Derivation.of(f_ab, g_bc)
        inverse = derivation.inverted()
        assert str(inverse) == "g^-1 o f^-1"
        assert inverse.domain == C and inverse.range == A

    def test_inverted_functionality(self):
        derivation = Derivation.of(f_ab, g_bc)
        assert inverseness_check(derivation)

    def test_then_concatenates(self):
        left = Derivation.of(f_ab)
        right = Derivation.of(g_bc)
        assert str(left.then(right)) == "f o g"

    def test_then_validates(self):
        with pytest.raises(DerivationError):
            Derivation.of(f_ab).then(Derivation.of(h_cd))


def inverseness_check(derivation: Derivation) -> bool:
    return (
        derivation.inverted().functionality
        == derivation.functionality.inverse()
    )


# -- property tests over random well-formed derivations ----------------------

_functions = [f_ab, g_bc, h_cd, loop_aa]


@st.composite
def random_derivation(draw) -> Derivation:
    """A random well-formed derivation built as a walk over {A,B,C,D}."""
    by_domain: dict[ObjectType, list[Step]] = {}
    for function in _functions:
        for op in (Op.IDENTITY, Op.INVERSE):
            step = Step(function, op)
            by_domain.setdefault(step.domain, []).append(step)
    start = draw(st.sampled_from([A, B, C, D]))
    length = draw(st.integers(min_value=1, max_value=5))
    steps = []
    at = start
    for _ in range(length):
        options = by_domain.get(at)
        if not options:
            break
        step = draw(st.sampled_from(options))
        steps.append(step)
        at = step.range
    if not steps:
        steps = [Step(f_ab)]
    return Derivation(steps)


@given(random_derivation())
def test_double_inversion_is_identity(derivation):
    assert derivation.inverted().inverted() == derivation


@given(random_derivation())
def test_inversion_swaps_endpoints(derivation):
    inverse = derivation.inverted()
    assert inverse.domain == derivation.range
    assert inverse.range == derivation.domain


@given(random_derivation())
def test_inversion_inverts_functionality(derivation):
    assert inverseness_check(derivation)


@given(random_derivation(), random_derivation())
def test_then_endpoints(left, right):
    if left.range != right.domain:
        with pytest.raises(DerivationError):
            left.then(right)
        return
    combined = left.then(right)
    assert combined.domain == left.domain
    assert combined.range == right.range
    assert len(combined) == len(left) + len(right)
