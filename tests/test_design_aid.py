"""Tests for Method 2.1: the on-line interactive design aid."""

from __future__ import annotations

import pytest

from repro.core.design_aid import (
    AutoDesigner,
    CallbackDesigner,
    DesignSession,
    ScriptedDesigner,
    complement_in_cycle,
)
from repro.core.graph import FunctionGraph, Path, PathStep
from repro.core.minimal_schema import minimal_schema_ams
from repro.core.schema import FunctionDef, Schema
from repro.core.types import ObjectType, TypeFunctionality
from repro.errors import DesignError

A, B, C = (ObjectType(n) for n in "ABC")
MM = TypeFunctionality.MANY_MANY
MO = TypeFunctionality.MANY_ONE


def fd(name, dom, rng, tf=MM):
    return FunctionDef(name, dom, rng, tf)


class TestComplementInCycle:
    def _triangle_cycle(self) -> Path:
        graph = FunctionGraph([
            fd("direct", A, C, MO), fd("f", A, B, MO), fd("g", B, C, MO),
        ])
        cycles = list(graph.cycles_through("direct"))
        assert len(cycles) == 1
        return cycles[0]

    def test_complement_of_forward_edge(self):
        cycle = self._triangle_cycle()
        complement = complement_in_cycle(cycle, 0)
        assert str(complement) == "f o g"
        assert complement.start == A and complement.end == C

    def test_complement_orientation_for_backward_edges(self):
        cycle = self._triangle_cycle()
        # Positions 1 and 2 hold f and g (traversed backward from C to A
        # or forward, depending on enumeration) -- each complement must
        # read from that function's own domain to its range.
        for index, step in enumerate(cycle.steps):
            complement = complement_in_cycle(cycle, index)
            assert complement.start == step.edge.function.domain
            assert complement.end == step.edge.function.range

    def test_needs_a_cycle(self):
        graph = FunctionGraph([fd("f", A, B)])
        path = Path(A, [PathStep(graph.edge("f"), True)])
        with pytest.raises(DesignError):
            complement_in_cycle(path, 0)

    def test_index_bounds(self):
        cycle = self._triangle_cycle()
        with pytest.raises(DesignError):
            complement_in_cycle(cycle, 3)


class TestCandidates:
    def test_two_cycle_both_candidates(self):
        """teach / taught_by: both are candidates (Section 2.3)."""
        session = DesignSession(AutoDesigner())
        session.add(fd("teach", ObjectType("faculty"), ObjectType("course")))
        reports = session.add(
            fd("taught_by", ObjectType("course"), ObjectType("faculty"))
        )
        assert len(reports) == 1
        names = {f.name for f in reports[0].candidate_functions}
        assert names == {"teach", "taught_by"}

    def test_functionality_filters_candidates(self):
        """grade - attendance - attendance_eval: only grade qualifies."""
        student_course = ObjectType("[student; course]")
        letter = ObjectType("letter_grade")
        attn = ObjectType("attn_percentage")
        designer = ScriptedDesigner(removals={
            frozenset({"grade", "attendance", "attendance_eval"}): None,
        })
        session = DesignSession(designer)
        session.add(fd("grade", student_course, letter, MO))
        session.add(fd("attendance", student_course, attn, MO))
        reports = session.add(fd("attendance_eval", attn, letter, MO))
        assert len(reports) == 1
        assert [f.name for f in reports[0].candidate_functions] == ["grade"]
        # The derivation offered for grade is the other way around.
        assert str(reports[0].derivation_for("grade")) == (
            "attendance o attendance_eval"
        )

    def test_cycle_with_no_candidates(self):
        designer = ScriptedDesigner(removals={
            frozenset({"f", "g", "h"}): None,
        })
        session = DesignSession(designer)
        session.add(fd("f", A, B, MO))
        session.add(fd("g", B, C, MO))
        reports = session.add(fd("h", C, A, MO))
        # h's complement f^-1 o g^-1 ... all many-one edges; complements
        # are many-many or mixed; none equal many-one.
        assert len(reports) == 1
        assert reports[0].candidates == ()

    def test_report_describe(self):
        session = DesignSession(AutoDesigner())
        session.add(fd("teach", A, B))
        reports = session.add(fd("taught_by", B, A))
        # AutoDesigner removed taught_by; the report still describes it.
        text = reports[0].describe()
        assert "cycle:" in text and "candidate derived functions:" in text

    def test_derivation_for_unknown_candidate(self):
        session = DesignSession(AutoDesigner())
        session.add(fd("teach", A, B))
        reports = session.add(fd("taught_by", B, A))
        with pytest.raises(DesignError):
            reports[0].derivation_for("nope")


class TestDesignerValidation:
    def test_choice_must_be_in_cycle(self):
        designer = CallbackDesigner(lambda report: "outsider")
        session = DesignSession(designer)
        session.add(fd("f", A, B))
        session.add(fd("outsider", A, C))
        with pytest.raises(DesignError):
            session.add(fd("g", A, B))

    def test_choice_must_be_candidate(self):
        """Choosing an edge whose syntax/functionality disagrees with
        the rest of the cycle is rejected."""
        designer = CallbackDesigner(lambda report: "attendance")
        student_course = ObjectType("SC")
        letter = ObjectType("L")
        attn = ObjectType("P")
        session = DesignSession(designer)
        session.add(fd("grade", student_course, letter, MO))
        session.add(fd("attendance", student_course, attn, MO))
        with pytest.raises(DesignError):
            session.add(fd("attendance_eval", attn, letter, MO))

    def test_scripted_designer_requires_entries(self):
        designer = ScriptedDesigner(removals={})
        session = DesignSession(designer)
        session.add(fd("f", A, B))
        with pytest.raises(DesignError):
            session.add(fd("g", A, B))
        assert designer.unmatched_cycles


class TestSessionState:
    def test_is_derived(self):
        session = DesignSession(AutoDesigner())
        session.add(fd("teach", A, B))
        session.add(fd("taught_by", B, A))
        assert session.is_derived("taught_by")
        assert not session.is_derived("teach")

    def test_is_derived_unknown(self):
        session = DesignSession(AutoDesigner())
        with pytest.raises(DesignError):
            session.is_derived("f")

    def test_kept_cycle_not_rereported(self):
        """Once the designer keeps a cycle, the same cycle is not raised
        again by later additions."""
        removals = {frozenset({"f", "g", "h"}): None}
        designer = ScriptedDesigner(removals=removals)
        session = DesignSession(designer)
        session.add(fd("f", A, B, MO))
        session.add(fd("g", B, C, MO))
        reports = session.add(fd("h", C, A, MO))
        assert len(reports) == 1
        # A later unrelated function raises no report for the old cycle.
        more = session.add(fd("k", A, ObjectType("D"), MO))
        assert more == []

    def test_graph_stays_synchronized(self):
        session = DesignSession(AutoDesigner())
        session.add(fd("teach", A, B))
        session.add(fd("taught_by", B, A))
        assert set(session.base_schema.names) == {"teach"}
        assert set(session.derived_schema.names) == {"taught_by"}

    def test_duplicate_add_rejected(self):
        session = DesignSession(AutoDesigner())
        session.add(fd("f", A, B))
        with pytest.raises(Exception):
            session.add(fd("f", A, B))


class TestPaperTrace(object):
    """The full Section 2.3 walkthrough against Figure 1."""

    def _run(self, trace_functions, trace_designer) -> DesignSession:
        session = DesignSession(trace_designer)
        session.add_all(trace_functions)
        return session

    def test_final_split_matches_figure_1(self, trace_functions,
                                          trace_designer):
        session = self._run(trace_functions, trace_designer)
        assert set(session.base_schema.names) == {
            "teach", "class_list", "score", "cutoff",
            "attendance", "attendance_eval",
        }
        assert set(session.derived_schema.names) == {
            "taught_by", "lecturer_of", "grade",
        }

    def test_confirmed_derivations(self, trace_functions, trace_designer):
        session = self._run(trace_functions, trace_designer)
        outcome = session.finish()
        texts = {
            name: [str(d) for d in derivations]
            for name, derivations in outcome.derivations.items()
        }
        assert texts["taught_by"] == ["teach^-1"]
        assert texts["lecturer_of"] == ["class_list^-1 o teach^-1"]
        assert texts["grade"] == ["score o cutoff"]

    def test_invalidated_derivation_filtered(self, trace_functions,
                                             trace_designer):
        session = self._run(trace_functions, trace_designer)
        potentials = {str(d) for d in session.potential_derivations("grade")}
        assert potentials == {
            "score o cutoff", "attendance o attendance_eval",
        }
        confirmed = {str(d) for d in session.confirmed_derivations("grade")}
        assert confirmed == {"score o cutoff"}

    def test_cycle_sequence(self, trace_functions, trace_designer):
        session = self._run(trace_functions, trace_designer)
        cycles = [
            frozenset(event.report.cycle.edge_names)
            for event in session.log
            if event.kind == "cycle"
        ]
        assert cycles == [
            frozenset({"teach", "taught_by"}),
            frozenset({"teach", "class_list", "lecturer_of"}),
            frozenset({"grade", "attendance", "attendance_eval"}),
            frozenset({"grade", "score", "cutoff"}),
            frozenset({"score", "cutoff", "attendance_eval", "attendance"}),
        ]

    def test_final_graph_is_cyclic(self, trace_functions, trace_designer):
        """Figure 1 keeps the score-cutoff-attendance_eval-attendance
        cycle: the final dynamic graph is not acyclic."""
        session = self._run(trace_functions, trace_designer)
        assert not session.graph.is_acyclic()

    def test_trace_text(self, trace_functions, trace_designer):
        session = self._run(trace_functions, trace_designer)
        text = session.trace()
        assert "designer removed taught_by (derived)" in text
        assert "designer kept the cycle (no edge removed)" in text


class TestAutoDesignerAgainstAMS:
    def test_auto_session_matches_ams_on_s1(self, s1):
        """On a UFA-friendly schema the AutoDesigner (remove the newest
        candidate) lands on a valid minimal schema of the same size as
        AMS's."""
        session = DesignSession(AutoDesigner())
        session.add_all(s1)
        ams = minimal_schema_ams(s1)
        assert len(session.base_schema) == len(ams.minimal)
        assert len(session.derived_schema) == len(ams.derived)
        # AutoDesigner prefers removing the trigger: taught_by, grade.
        assert set(session.derived_schema.names) == {"taught_by", "grade"}


class TestDesignOutcome:
    def test_summary(self, trace_functions, trace_designer):
        session = DesignSession(trace_designer)
        session.add_all(trace_functions)
        summary = session.finish().summary()
        assert "Base functions:" in summary
        assert "grade = score o cutoff" in summary
        assert "attendance o attendance_eval" not in summary
