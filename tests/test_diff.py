"""Tests for state diffs and journal change inspection."""

from __future__ import annotations

import pytest

from repro.core.design_aid import AutoDesigner
from repro.errors import UpdateError
from repro.fdb import persistence
from repro.fdb.diff import diff_snapshots
from repro.fdb.journal import Journal
from repro.fdb.updates import Update
from repro.lang.interp import Interpreter


class TestDiffSnapshots:
    def test_empty_diff(self, pupil_db):
        snapshot = persistence.to_dict(pupil_db)
        diff = diff_snapshots(snapshot, snapshot)
        assert diff.is_empty
        assert diff.describe() == "(no changes)"

    def test_added_fact(self, pupil_db):
        before = persistence.to_dict(pupil_db)
        pupil_db.insert("teach", "gauss", "cs")
        diff = diff_snapshots(before, persistence.to_dict(pupil_db))
        assert diff.added == (("teach", ("gauss", "cs"), "T"),)
        assert not diff.removed and not diff.flag_changes
        assert "+ <teach, gauss, cs> [T]" in diff.describe()

    def test_removed_fact(self, pupil_db):
        before = persistence.to_dict(pupil_db)
        pupil_db.delete("teach", "euclid", "math")
        diff = diff_snapshots(before, persistence.to_dict(pupil_db))
        assert diff.removed == (("teach", ("euclid", "math"), "T"),)

    def test_derived_delete_shows_flags_and_nc(self, pupil_db):
        before = persistence.to_dict(pupil_db)
        pupil_db.delete("pupil", "euclid", "john")
        diff = diff_snapshots(before, persistence.to_dict(pupil_db))
        assert not diff.added and not diff.removed
        assert set(diff.flag_changes) == {
            ("teach", ("euclid", "math"), "T", "A"),
            ("class_list", ("math", "john"), "T", "A"),
        }
        assert len(diff.ncs_created) == 1
        assert diff.ncs_created[0].startswith("g1: NOT(")

    def test_nc_dismantled(self, pupil_db):
        pupil_db.delete("pupil", "euclid", "john")
        before = persistence.to_dict(pupil_db)
        pupil_db.insert("teach", "euclid", "math")
        diff = diff_snapshots(before, persistence.to_dict(pupil_db))
        assert len(diff.ncs_dismantled) == 1
        assert ("teach", ("euclid", "math"), "A", "T") in (
            diff.flag_changes
        )

    def test_tuple_values(self, pupil_db):
        from repro.core.schema import FunctionDef
        from repro.core.types import ObjectType, TypeFunctionality
        from repro.core.types import product_type

        pupil_db.declare_base(FunctionDef(
            "score", product_type("student", "course"),
            ObjectType("marks"), TypeFunctionality.MANY_ONE,
        ))
        before = persistence.to_dict(pupil_db)
        pupil_db.insert("score", ("john", "math"), 91)
        diff = diff_snapshots(before, persistence.to_dict(pupil_db))
        assert diff.added == (
            ("score", (("john", "math"), 91), "T"),
        )


class TestJournalChanges:
    def test_last_change(self, pupil_db):
        journal = Journal(pupil_db)
        journal.execute(Update.delete("pupil", "euclid", "john"))
        diff = journal.last_change()
        assert len(diff.ncs_created) == 1

    def test_change_of_interior_entry(self, pupil_db):
        journal = Journal(pupil_db)
        journal.execute(Update.ins("teach", "gauss", "cs"))
        journal.execute(Update.ins("teach", "noether", "algebra"))
        first = journal.change_of(1)
        assert first.added == (("teach", ("gauss", "cs"), "T"),)
        second = journal.change_of(2)
        assert second.added == (("teach", ("noether", "algebra"), "T"),)

    def test_bounds(self, pupil_db):
        journal = Journal(pupil_db)
        with pytest.raises(UpdateError):
            journal.last_change()
        journal.execute(Update.ins("teach", "gauss", "cs"))
        with pytest.raises(UpdateError):
            journal.change_of(2)
        with pytest.raises(UpdateError):
            journal.change_of(0)


class TestChangesStatement:
    def test_via_language(self):
        interp = Interpreter(AutoDesigner())
        out = interp.execute("""
            add teach: faculty -> course (many-many);
            add class_list: course -> student (many-many);
            add pupil: faculty -> student (many-many);
            commit;
            insert teach(euclid, math);
            insert class_list(math, john);
            delete pupil(euclid, john);
            changes;
        """)
        joined = "\n".join(out)
        assert "~ <teach, euclid, math> T -> A" in joined
        assert "+ NC g1: NOT(" in joined

    def test_changes_without_updates_reports_error(self):
        interp = Interpreter(AutoDesigner())
        out = interp.execute("""
            add teach: faculty -> course (many-many);
            commit;
            changes;
        """)
        assert out[-1] == "error: no updates applied yet"
