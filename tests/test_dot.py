"""Tests for DOT export of function graphs and designs."""

from __future__ import annotations

from repro.core.design_aid import DesignSession
from repro.core.dot import design_to_dot, graph_to_dot
from repro.core.graph import FunctionGraph
from repro.workloads.university import (
    design_trace_designer,
    design_trace_functions,
    schema_s1,
)


class TestGraphToDot:
    def test_structure(self):
        graph = FunctionGraph.of_schema(schema_s1())
        dot = graph_to_dot(graph)
        assert dot.startswith('graph "function_graph" {')
        assert dot.endswith("}")
        assert '"faculty" -- "course"' in dot
        assert "teach (many-many)" in dot
        assert '"[student; course]";' in dot

    def test_deterministic(self):
        graph = FunctionGraph.of_schema(schema_s1())
        assert graph_to_dot(graph) == graph_to_dot(graph)

    def test_custom_name_and_rankdir(self):
        graph = FunctionGraph()
        dot = graph_to_dot(graph, name="empty", rankdir="TB")
        assert '"empty"' in dot and "rankdir=TB" in dot

    def test_quoting(self):
        from repro.core.schema import FunctionDef
        from repro.core.types import ObjectType

        graph = FunctionGraph([FunctionDef(
            "f", ObjectType('we"ird'), ObjectType("ok")
        )])
        dot = graph_to_dot(graph)
        assert '\\"' in dot


class TestDesignToDot:
    def test_figure1_rendering(self):
        session = DesignSession(design_trace_designer())
        session.add_all(design_trace_functions())
        dot = design_to_dot(session.finish(), name="figure1")
        # Base edges: solid with functionality labels.
        assert "score (many-one)" in dot
        # Derived edges: dashed with derivations.
        assert "style=dashed" in dot
        assert "grade = score o cutoff" in dot
        assert "taught_by = teach^-1" in dot
        # Every object type of Figure 1 appears as a node.
        for node in ("faculty", "course", "student", "marks",
                     "letter_grade", "attn_percentage"):
            assert f'"{node}";' in dot

    def test_unconfirmed_derivation_marked(self):
        from repro.core.design_aid import DesignOutcome
        from repro.core.schema import FunctionDef, Schema
        from repro.core.types import ObjectType

        A, B = ObjectType("A"), ObjectType("B")
        outcome = DesignOutcome(
            Schema([FunctionDef("f", A, B)]),
            Schema([FunctionDef("v", A, B)]),
            {"v": ()},
        )
        dot = design_to_dot(outcome)
        assert "v = ?" in dot
