"""The log-bucketed histogram and the live metrics endpoint.

Covers LogHistogram's bucket math, percentile envelope and merge;
Prometheus rendering and the validating parser (round trip plus the
malformed cases the parser must reject); and the HTTP endpoint's
three routes, including the 503 health verdict.
"""

from __future__ import annotations

import json
import math
import urllib.error
import urllib.request

import pytest

from repro.obs import (
    LogHistogram,
    MetricsEndpoint,
    MetricsRegistry,
    Objective,
    SLOMonitor,
    parse_prometheus,
    render_prometheus,
)
from repro.obs.metrics import MetricError
from repro.obs.slo import ERROR_RATE


class TestLogHistogram:
    def test_exact_aggregates(self):
        hist = LogHistogram("h")
        for value in (0.001, 0.010, 0.100):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == pytest.approx(0.111)
        assert hist.min == pytest.approx(0.001)
        assert hist.max == pytest.approx(0.100)

    def test_percentile_relative_error_bounded_by_base(self):
        hist = LogHistogram("h")
        for i in range(1, 1001):
            hist.observe(i / 1000.0)  # 1ms .. 1s uniform
        p50 = hist.percentile(50)
        assert 0.5 / hist.base <= p50 <= 0.5 * hist.base
        p99 = hist.percentile(99)
        assert 0.99 / hist.base <= p99 <= 0.99 * hist.base

    def test_percentiles_clamped_to_observed_envelope(self):
        hist = LogHistogram("h")
        hist.observe(0.005)
        assert hist.percentile(0) == pytest.approx(0.005)
        assert hist.percentile(100) == pytest.approx(0.005)

    def test_tail_does_not_freeze_on_warmup(self):
        # The regression the log histogram exists to fix: a warm-up
        # burst of fast samples must not pin p99 forever.
        hist = LogHistogram("h")
        for _ in range(2000):
            hist.observe(0.001)
        for _ in range(2000):
            hist.observe(0.500)
        assert hist.percentile(99) == pytest.approx(0.500, rel=0.15)

    def test_merge_adds_buckets(self):
        a, b = LogHistogram("a"), LogHistogram("b")
        for _ in range(10):
            a.observe(0.001)
            b.observe(1.0)
        a.merge(b)
        assert a.count == 20
        assert a.max == pytest.approx(1.0)
        assert a.percentile(99) == pytest.approx(1.0, rel=0.10)

    def test_merge_rejects_mismatched_base(self):
        a = LogHistogram("a", base=2.0)
        b = LogHistogram("b", base=1.5)
        with pytest.raises(MetricError):
            a.merge(b)

    def test_buckets_are_cumulative(self):
        hist = LogHistogram("h")
        for value in (0.001, 0.010, 0.010, 0.100):
            hist.observe(value)
        buckets = hist.buckets()
        counts = [count for _, count in buckets]
        assert counts == sorted(counts)
        assert counts[-1] == hist.count
        bounds = [bound for bound, _ in buckets]
        assert bounds == sorted(bounds)


def populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("fdb.updates.insert").inc(7)
    registry.gauge("service.active").set(3)
    sampling = registry.histogram("fdb.query.seconds")
    for i in range(50):
        sampling.observe(i / 1000.0)
    log = registry.log_histogram("service.red.execute.duration_seconds")
    for i in range(1, 101):
        log.observe(i / 1000.0)
    return registry


class TestPrometheusRoundTrip:
    def test_render_parses_cleanly(self):
        families = parse_prometheus(render_prometheus(populated_registry()))
        assert families["fdb_updates_insert_total"]["type"] == "counter"
        assert families["fdb_updates_insert_total"]["samples"][
            "fdb_updates_insert_total"] == 7
        assert families["service_active"]["type"] == "gauge"
        assert families["fdb_query_seconds"]["type"] == "summary"
        hist = families["service_red_execute_duration_seconds"]
        assert hist["type"] == "histogram"
        assert hist["samples"][
            "service_red_execute_duration_seconds_count"] == 100

    def test_histogram_inf_bucket_equals_count(self):
        body = render_prometheus(populated_registry())
        families = parse_prometheus(body)
        samples = families["service_red_execute_duration_seconds"]["samples"]
        inf = samples['service_red_execute_duration_seconds_bucket{le=+Inf}']
        assert inf == samples["service_red_execute_duration_seconds_count"]

    def test_empty_registry_renders_empty_but_valid(self):
        assert parse_prometheus(render_prometheus(MetricsRegistry())) == {}

    def test_dotted_names_sanitized(self):
        registry = MetricsRegistry()
        registry.counter("a.b-c/d").inc()
        body = render_prometheus(registry)
        assert "a_b_c_d_total 1" in body
        parse_prometheus(body)


class TestParserRejectsMalformed:
    def test_missing_trailing_newline(self):
        with pytest.raises(Exception, match="newline"):
            parse_prometheus("x_total 1")

    def test_sample_without_type_declaration(self):
        with pytest.raises(Exception, match="TYPE"):
            parse_prometheus("x_total 1\n")

    def test_malformed_sample_line(self):
        with pytest.raises(Exception, match="malformed"):
            parse_prometheus("# TYPE x counter\nx one two three four\n")

    def test_non_cumulative_buckets(self):
        body = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\n'
            'h_bucket{le="1"} 3\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 1\n"
            "h_count 3\n"
        )
        with pytest.raises(Exception, match="cumulative"):
            parse_prometheus(body)

    def test_missing_inf_bucket(self):
        body = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\n'
            "h_sum 1\n"
            "h_count 5\n"
        )
        with pytest.raises(Exception, match=r"\+Inf"):
            parse_prometheus(body)

    def test_inf_bucket_disagrees_with_count(self):
        body = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 5\n'
            "h_sum 1\n"
            "h_count 9\n"
        )
        with pytest.raises(Exception, match="_count"):
            parse_prometheus(body)


def _get(url: str) -> tuple[int, str]:
    try:
        with urllib.request.urlopen(url, timeout=5) as resp:
            return resp.status, resp.read().decode("utf-8")
    except urllib.error.HTTPError as err:
        return err.code, err.read().decode("utf-8")


class TestMetricsEndpoint:
    def test_serves_metrics_health_and_slo(self):
        registry = populated_registry()
        slo = SLOMonitor((Objective("err", ERROR_RATE, 0.5),))
        health = lambda: {"healthy": True, "breaker": "closed"}  # noqa: E731
        with MetricsEndpoint(registry, slo=slo, health=health) as ep:
            status, body = _get(ep.url + "/metrics")
            assert status == 200
            assert parse_prometheus(body)

            status, body = _get(ep.url + "/health")
            assert status == 200
            verdict = json.loads(body)
            assert verdict["healthy"] is True
            assert verdict["slo_alerts"] == []

            status, body = _get(ep.url + "/slo")
            assert status == 200
            assert json.loads(body)["healthy"] is True

            status, _ = _get(ep.url + "/nope")
            assert status == 404
        assert not ep.running

    def test_health_is_503_when_unhealthy(self):
        registry = MetricsRegistry()
        with MetricsEndpoint(
            registry, health=lambda: {"healthy": False, "breaker": "open"}
        ) as ep:
            status, body = _get(ep.url + "/health")
            assert status == 503
            assert json.loads(body)["healthy"] is False

    def test_slo_alert_makes_health_unhealthy(self):
        slo = SLOMonitor(
            (Objective("err", ERROR_RATE, 0.01, window=60.0,
                       fast_fraction=1.0),)
        )
        for _ in range(10):
            slo.record("execute", 0.001, error=True)
        slo.evaluate()
        assert not slo.healthy
        with MetricsEndpoint(MetricsRegistry(), slo=slo) as ep:
            status, body = _get(ep.url + "/health")
            assert status == 503
            assert json.loads(body)["slo_alerts"] == ["err"]

    def test_start_and_stop_are_idempotent(self):
        ep = MetricsEndpoint(MetricsRegistry())
        ep.start()
        port = ep.port
        assert ep.start().port == port
        ep.stop()
        ep.stop()
        assert not ep.running

    def test_slo_route_404_without_monitor(self):
        with MetricsEndpoint(MetricsRegistry()) as ep:
            status, _ = _get(ep.url + "/slo")
            assert status == 404
