"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_is_repro_error(self):
        for name in errors.__all__:
            if name == "ReproError":
                continue
            exc_class = getattr(errors, name)
            assert issubclass(exc_class, errors.ReproError), name

    def test_schema_family(self):
        assert issubclass(errors.UnknownFunctionError, errors.SchemaError)
        assert issubclass(errors.UnknownTypeError, errors.SchemaError)
        assert issubclass(errors.DuplicateFunctionError,
                          errors.SchemaError)

    def test_update_family(self):
        assert issubclass(errors.ConstraintViolation, errors.UpdateError)
        assert issubclass(errors.NotABaseFunctionError,
                          errors.UpdateError)
        assert issubclass(errors.NotADerivedFunctionError,
                          errors.UpdateError)


class TestMessagesAndAttributes:
    def test_unknown_function_carries_name(self):
        exc = errors.UnknownFunctionError("grade")
        assert exc.name == "grade"
        assert "grade" in str(exc)

    def test_unknown_type_carries_name(self):
        exc = errors.UnknownTypeError("marks")
        assert exc.name == "marks"

    def test_duplicate_function(self):
        exc = errors.DuplicateFunctionError("teach")
        assert "duplicate" in str(exc)

    def test_not_a_base_function(self):
        exc = errors.NotABaseFunctionError("pupil")
        assert "derived function" in str(exc)

    def test_not_a_derived_function(self):
        exc = errors.NotADerivedFunctionError("teach")
        assert "base function" in str(exc)

    def test_parse_error_positions(self):
        plain = errors.ParseError("bad input")
        assert str(plain) == "bad input"
        assert plain.line is None
        with_line = errors.ParseError("bad input", line=3)
        assert "line 3" in str(with_line)
        full = errors.ParseError("bad input", line=3, column=7)
        assert "line 3, column 7" in str(full)
        assert full.column == 7


class TestCatchability:
    def test_single_handler_for_library_errors(self, pupil_db):
        with pytest.raises(errors.ReproError):
            pupil_db.table("zzz")
        with pytest.raises(errors.ReproError):
            pupil_db.table("pupil")
        from repro.lang.parser import parse_statement

        with pytest.raises(errors.ReproError):
            parse_statement("insert f(a b)")
