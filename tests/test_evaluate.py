"""Tests for chain enumeration and the Section 3.2 truth valuation."""

from __future__ import annotations

import pytest

from repro.core.derivation import Derivation, Op, Step
from repro.core.schema import FunctionDef
from repro.core.types import ObjectType, TypeFunctionality
from repro.fdb.database import FunctionalDatabase
from repro.fdb.evaluate import (
    derived_extension,
    derived_image,
    iter_chains,
    truth_of,
    truth_of_derived,
)
from repro.fdb.logic import Truth
from repro.fdb.values import NullValue

A, B, C = (ObjectType(n) for n in "ABC")
MM = TypeFunctionality.MANY_MANY


@pytest.fixture
def db() -> FunctionalDatabase:
    """f1: A->B, f2: B->C, v = f1 o f2, small real instance."""
    database = FunctionalDatabase()
    f1 = FunctionDef("f1", A, B, MM)
    f2 = FunctionDef("f2", B, C, MM)
    database.declare_base(f1)
    database.declare_base(f2)
    database.declare_derived(
        FunctionDef("v", A, C, MM), Derivation.of(f1, f2)
    )
    database.load("f1", [("a1", "b1"), ("a2", "b1"), ("a3", "b2")])
    database.load("f2", [("b1", "c1"), ("b2", "c2")])
    return database


class TestChainEnumeration:
    def test_all_chains(self, db):
        derivation = db.derived("v").primary
        chains = list(iter_chains(db, derivation))
        pairs = sorted(c.pair for c in chains)
        assert pairs == [("a1", "c1"), ("a2", "c1"), ("a3", "c2")]
        assert all(c.all_exact for c in chains)

    def test_fixed_endpoints(self, db):
        derivation = db.derived("v").primary
        chains = list(iter_chains(db, derivation, "a1", "c1"))
        assert len(chains) == 1
        assert str(chains[0]) == "<f1, a1, b1> . <f2, b1, c1>"

    def test_no_chain(self, db):
        derivation = db.derived("v").primary
        assert list(iter_chains(db, derivation, "a1", "c2")) == []

    def test_inverse_direction(self, db):
        inverted = db.derived("v").primary.inverted()
        chains = list(iter_chains(db, inverted, "c1", "a1"))
        assert len(chains) == 1
        assert chains[0].pair == ("c1", "a1")

    def test_ambiguous_matching_through_null(self, db):
        n1 = db.nulls.fresh()
        db.table("f1").add_pair("a9", n1)
        derivation = db.derived("v").primary
        chains = list(iter_chains(db, derivation, "a9", "c1"))
        assert len(chains) == 1
        assert not chains[0].all_exact

    def test_exact_only_mode(self, db):
        n1 = db.nulls.fresh()
        db.table("f1").add_pair("a9", n1)
        derivation = db.derived("v").primary
        assert list(
            iter_chains(db, derivation, "a9", "c1", allow_ambiguous=False)
        ) == []

    def test_null_probe_matches_everything_ambiguously(self, db):
        n1 = db.nulls.fresh()
        db.table("f1").add_pair("a9", n1)
        derivation = db.derived("v").primary
        # From a9 through n1 ambiguously into both f2 rows.
        pairs = {c.pair for c in iter_chains(db, derivation, x="a9")}
        assert pairs == {("a9", "c1"), ("a9", "c2")}

    def test_endpoints_are_exact(self, db):
        """A chain starting at a null is the derived fact <null, ...>,
        not a witness for any data endpoint."""
        n1 = db.nulls.fresh()
        db.table("f1").add_pair(n1, "b1")
        derivation = db.derived("v").primary
        assert list(iter_chains(db, derivation, "zzz", "c1")) == []
        with_null_start = [
            c for c in iter_chains(db, derivation) if c.start == n1
        ]
        assert {c.pair for c in with_null_start} == {(n1, "c1")}

    def test_conjuncts_and_refs(self, db):
        derivation = db.derived("v").primary
        chain = next(iter_chains(db, derivation, "a1", "c1"))
        assert [(name, fact.pair) for name, fact in chain.conjuncts()] == [
            ("f1", ("a1", "b1")), ("f2", ("b1", "c1")),
        ]
        assert len(chain.refs) == 2


class TestTruthValuation:
    def test_true_via_exact_true_chain(self, db):
        assert truth_of_derived(db, "v", "a1", "c1") is Truth.TRUE

    def test_false_when_no_chain(self, db):
        assert truth_of_derived(db, "v", "a1", "c2") is Truth.FALSE

    def test_ambiguous_via_ambiguous_fact(self, db):
        db.table("f1").get("a1", "b1").truth = Truth.AMBIGUOUS
        assert truth_of_derived(db, "v", "a1", "c1") is Truth.AMBIGUOUS

    def test_ambiguous_via_null_match(self, db):
        n1 = db.nulls.fresh()
        db.table("f1").add_pair("a9", n1)
        assert truth_of_derived(db, "v", "a9", "c1") is Truth.AMBIGUOUS

    def test_true_wins_over_ambiguous(self, db):
        n1 = db.nulls.fresh()
        db.table("f1").add_pair("a1", n1)  # extra ambiguous route
        assert truth_of_derived(db, "v", "a1", "c1") is Truth.TRUE

    def test_nc_superset_chain_excluded(self, db):
        """A chain that is a superset of an NC cannot make the fact
        ambiguous — the paper's 'not a superset of a NC' clause."""
        f1_fact = db.table("f1").get("a1", "b1")
        f2_fact = db.table("f2").get("b1", "c1")
        db.ncs.create([("f1", f1_fact), ("f2", f2_fact)])
        assert truth_of_derived(db, "v", "a1", "c1") is Truth.FALSE

    def test_nc_on_one_fact_leaves_other_chains(self, db):
        """a2 shares <f2, b1, c1> with the NC chain of a1 but has its
        own f1 fact: its chain is not a superset of the NC."""
        f1_fact = db.table("f1").get("a1", "b1")
        f2_fact = db.table("f2").get("b1", "c1")
        db.ncs.create([("f1", f1_fact), ("f2", f2_fact)])
        assert truth_of_derived(db, "v", "a2", "c1") is Truth.AMBIGUOUS

    def test_truth_of_dispatches(self, db):
        assert truth_of(db, "f1", "a1", "b1") is Truth.TRUE
        assert truth_of(db, "f1", "a1", "zzz") is Truth.FALSE
        assert truth_of(db, "v", "a1", "c1") is Truth.TRUE

    def test_multiple_derivations_any_can_witness(self):
        database = FunctionalDatabase()
        f = FunctionDef("f", A, B, MM)
        g = FunctionDef("g", A, B, MM)
        database.declare_base(f)
        database.declare_base(g)
        database.declare_derived(
            FunctionDef("v", A, B, MM),
            [Derivation.of(f), Derivation.of(g)],
        )
        database.load("g", [("a", "b")])
        assert truth_of_derived(database, "v", "a", "b") is Truth.TRUE


class TestExtensionAndImage:
    def test_extension(self, db):
        extension = derived_extension(db, "v")
        assert extension == {
            ("a1", "c1"): Truth.TRUE,
            ("a2", "c1"): Truth.TRUE,
            ("a3", "c2"): Truth.TRUE,
        }

    def test_extension_with_ambiguity(self, db):
        db.table("f1").get("a3", "b2").truth = Truth.AMBIGUOUS
        extension = derived_extension(db, "v")
        assert extension[("a3", "c2")] is Truth.AMBIGUOUS
        assert extension[("a1", "c1")] is Truth.TRUE

    def test_extension_excludes_nc_only_pairs(self, db):
        f1_fact = db.table("f1").get("a3", "b2")
        f2_fact = db.table("f2").get("b2", "c2")
        db.ncs.create([("f1", f1_fact), ("f2", f2_fact)])
        extension = derived_extension(db, "v")
        assert ("a3", "c2") not in extension

    def test_image(self, db):
        assert derived_image(db, "v", "a1") == {"c1": Truth.TRUE}
        assert derived_image(db, "v", "zzz") == {}

    def test_image_with_null_route(self, db):
        n1 = db.nulls.fresh()
        db.table("f1").add_pair("a9", n1)
        image = derived_image(db, "v", "a9")
        assert image == {"c1": Truth.AMBIGUOUS, "c2": Truth.AMBIGUOUS}


class TestThreeStepChains:
    def test_longer_derivation(self):
        database = FunctionalDatabase()
        D = ObjectType("D")
        f1 = FunctionDef("f1", A, B, MM)
        f2 = FunctionDef("f2", B, C, MM)
        f3 = FunctionDef("f3", C, D, MM)
        for f in (f1, f2, f3):
            database.declare_base(f)
        database.declare_derived(
            FunctionDef("v", A, D, MM), Derivation.of(f1, f2, f3)
        )
        database.load("f1", [("a", "b")])
        database.load("f2", [("b", "c")])
        database.load("f3", [("c", "d")])
        assert truth_of_derived(database, "v", "a", "d") is Truth.TRUE
        # Break the middle: the fact turns false.
        database.table("f2").discard("b", "c")
        assert truth_of_derived(database, "v", "a", "d") is Truth.FALSE

    def test_mixed_inverse_derivation(self):
        """v = f^-1 o g with real facts."""
        database = FunctionalDatabase()
        f = FunctionDef("f", B, A, MM)
        g = FunctionDef("g", B, C, MM)
        database.declare_base(f)
        database.declare_base(g)
        database.declare_derived(
            FunctionDef("v", A, C, MM),
            Derivation([Step(f, Op.INVERSE), Step(g)]),
        )
        database.load("f", [("b", "a")])
        database.load("g", [("b", "c")])
        assert truth_of_derived(database, "v", "a", "c") is Truth.TRUE
