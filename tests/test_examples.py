"""The example scripts must run clean and print their key landmarks."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=120,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestQuickstart:
    def test_runs_and_reports(self):
        out = run_example("quickstart.py")
        assert "pupil = teach o class_list" in out
        assert "g1: NOT(" in out
        assert "pupil(euclid, bill) is true again" in out


class TestUniversityRegistrar:
    def test_runs_and_reports(self):
        out = run_example("university_registrar.py")
        assert "designer removed taught_by (derived)" in out
        assert "grade = score o cutoff" in out
        assert "lecturer_of(john, laplace)    -> false" in out
        assert "degree of ambiguity" in out
        assert "n1 := 85" in out


class TestViewUpdateComparison:
    def test_runs_and_reports(self):
        out = run_example("view_update_comparison.py")
        assert "DEL(r1, <a1, b1>); DEL(r1, <a1, b2>)" in out
        assert "DEL(r3, <c1, d1>)" in out
        assert "0 base deletions" in out
        assert "every stored base fact survived: True" in out


class TestAmbiguityAnalysis:
    def test_runs_and_reports(self):
        out = run_example("ambiguity_analysis.py")
        assert "3 possible worlds over 2 ambiguous facts" in out
        assert "P(pupil('laplace', 'bill') derivable) = 1.000" in out
        assert "derivable via [score o cutoff] but not via" in out
        assert "undone DEL(pupil, <gauss, bill>)" not in out  # INS undone
        assert "undone INS(pupil, <gauss, bill>)" in out


class TestCompanyHr:
    def test_runs_and_reports(self):
        out = run_example("company_hr.py")
        assert "designer kept the cycle (no edge removed)" in out
        assert "dept_head_of = works_in o manages^-1" in out
        assert "n1 := research (forced by manages)" in out
        assert "error: update INS(badge, <alice, b99>) undone" in out
        assert "carol's department head: erin" in out


class TestDurability:
    def test_runs_and_reports(self):
        out = run_example("durability.py")
        assert "simulated crash: torn final log line" in out
        assert "recovered: 2 log entries (torn tail skipped)" in out
        assert "recovered state identical to pre-crash state: True" in out


class TestObservabilityDemo:
    def test_runs_and_reports(self):
        out = run_example("observability_demo.py")
        assert "u1: DEL(pupil, <euclid, john>)" in out
        assert ("+ nc.created index=g1 chain=<teach, euclid, math> . "
                "<class_list, math, john>") in out
        assert "+ nvc.created derivation=teach o class_list facts=2" in out
        assert "+ nc.dismantled index=g1 cause=delete" in out
        assert "observability: enabled, tracing" in out
        assert "fdb.updates.derived_delete" in out


class TestInteractiveScript:
    def test_runs_and_reports(self):
        out = run_example("interactive_script.py")
        assert "grade classified as derived" in out
        assert "taught_by(geometry) = euclid: true" in out
        assert "grade(('john', 'geometry')) = A: false" in out
        assert "g1: NOT(<score, ('john', 'geometry'), 91> AND "in out
