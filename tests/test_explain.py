"""Tests for truth-verdict explanations."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.design_aid import AutoDesigner
from repro.fdb.evaluate import derived_extension
from repro.fdb.explain import explain
from repro.fdb.logic import Truth
from repro.lang.interp import Interpreter
from repro.workloads.generator import (
    WorkloadConfig,
    chain_fdb,
    random_instance,
    random_updates,
)


class TestBaseExplanations:
    def test_true_fact(self, pupil_db):
        explanation = explain(pupil_db, "teach", "euclid", "math")
        assert explanation.verdict is Truth.TRUE
        assert explanation.kind == "base"
        assert explanation.stored_flag == "T"
        assert "asserted true" in explanation.describe()

    def test_absent_fact(self, pupil_db):
        explanation = explain(pupil_db, "teach", "gauss", "cs")
        assert explanation.verdict is Truth.FALSE
        assert explanation.stored_flag is None
        assert "absence means false" in explanation.describe()

    def test_ambiguous_fact(self, pupil_db):
        pupil_db.delete("pupil", "euclid", "john")
        explanation = explain(pupil_db, "teach", "euclid", "math")
        assert explanation.verdict is Truth.AMBIGUOUS
        assert explanation.stored_flag == "A"


class TestDerivedExplanations:
    def test_true_chain_shown(self, pupil_db):
        explanation = explain(pupil_db, "pupil", "euclid", "john")
        assert explanation.verdict is Truth.TRUE
        assert len(explanation.chains) == 1
        text = explanation.describe()
        assert "<teach, euclid, math>[T]" in text
        assert "supports true" in text

    def test_negated_chain_names_the_nc(self, pupil_db):
        pupil_db.delete("pupil", "euclid", "john")
        explanation = explain(pupil_db, "pupil", "euclid", "john")
        assert explanation.verdict is Truth.FALSE
        assert explanation.chains[0].supports is Truth.FALSE
        assert explanation.chains[0].negated_by == (1,)
        assert "negated by g1" in explanation.describe()

    def test_ambiguous_member_flags_shown(self, pupil_db):
        pupil_db.delete("pupil", "euclid", "john")
        explanation = explain(pupil_db, "pupil", "euclid", "bill")
        assert explanation.verdict is Truth.AMBIGUOUS
        text = explanation.describe()
        assert "<teach, euclid, math>[A]" in text
        assert "supports ambiguous" in text

    def test_no_chain(self, pupil_db):
        explanation = explain(pupil_db, "pupil", "nobody", "nothing")
        assert "no chain derives it" in explanation.describe()

    def test_ambiguous_match_quality_reported(self, pupil_db):
        pupil_db.insert("pupil", "gauss", "bill")
        explanation = explain(pupil_db, "pupil", "gauss", "john")
        assert explanation.verdict is Truth.AMBIGUOUS
        assert "ambiguous match" in explanation.describe()


class TestAgreementWithEvaluate:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), n_updates=st.integers(0, 12))
    def test_explanation_never_disagrees(self, seed, n_updates):
        from repro.fdb.updates import apply_update

        db = chain_fdb(2)
        random_instance(db, 6, seed=seed, value_pool=5)
        for update in random_updates(
            db, n_updates, WorkloadConfig(seed=seed + 1, value_pool=5)
        ):
            apply_update(db, update)
        for (x, y), truth in list(derived_extension(db, "v").items())[:5]:
            explanation = explain(db, "v", x, y)
            assert explanation.verdict is truth
            # The verdict is the strongest chain support.
            strongest = max(
                (e.supports for e in explanation.chains),
                default=Truth.FALSE,
            )
            assert strongest is truth


class TestLanguageStatement:
    def test_explain_via_language(self):
        interp = Interpreter(AutoDesigner())
        out = interp.execute("""
            add teach: faculty -> course (many-many);
            add class_list: course -> student (many-many);
            add pupil: faculty -> student (many-many);
            commit;
            insert teach(euclid, math);
            insert class_list(math, john);
            delete pupil(euclid, john);
            explain pupil(euclid, john);
            explain teach(euclid, math);
        """)
        joined = "\n".join(out)
        assert "pupil(euclid) = john: false" in joined
        assert "negated by g1" in joined
        assert "teach(euclid) = math: ambiguous" in joined
        assert "stored with flag A" in joined
