"""Tests for fact quadruples and function tables."""

from __future__ import annotations

import pytest

from repro.errors import UpdateError
from repro.fdb.facts import Fact, FactRef
from repro.fdb.logic import Truth
from repro.fdb.table import FunctionTable
from repro.fdb.values import NullValue


class TestFact:
    def test_quadruple_representation(self):
        fact = Fact("euclid", "math")
        assert fact.pair == ("euclid", "math")
        assert fact.truth is Truth.TRUE
        assert fact.flag == "T"
        assert fact.ncl == set()

    def test_false_fact_rejected(self):
        with pytest.raises(ValueError):
            Fact("a", "b", Truth.FALSE)

    def test_ncl_text(self):
        fact = Fact("a", "b", Truth.AMBIGUOUS, {2, 1})
        assert fact.ncl_text() == "{g1, g2}"
        assert Fact("a", "b").ncl_text() == "{}"

    def test_str(self):
        fact = Fact("a", "b", Truth.AMBIGUOUS, {1})
        assert str(fact) == "<a, b, A, {g1}>"

    def test_identity_by_object(self):
        assert Fact("a", "b") != Fact("a", "b")

    def test_ref(self):
        assert Fact("a", "b").ref("f") == FactRef("f", "a", "b")
        assert str(FactRef("f", "a", "b")) == "<f, a, b>"


class TestTableRows:
    def test_add_and_get(self):
        table = FunctionTable("teach")
        fact = table.add_pair("euclid", "math")
        assert table.get("euclid", "math") is fact
        assert ("euclid", "math") in table
        assert len(table) == 1

    def test_duplicate_pair_rejected(self):
        table = FunctionTable("teach")
        table.add_pair("a", "b")
        with pytest.raises(UpdateError):
            table.add_pair("a", "b")

    def test_discard(self):
        table = FunctionTable("teach")
        table.add_pair("a", "b")
        removed = table.discard("a", "b")
        assert removed is not None
        assert table.get("a", "b") is None
        assert table.discard("a", "b") is None

    def test_insertion_order_preserved(self):
        table = FunctionTable("t")
        table.add_pair("b", "1")
        table.add_pair("a", "2")
        assert [f.pair for f in table.facts()] == [("b", "1"), ("a", "2")]

    def test_truth_of(self):
        table = FunctionTable("t")
        table.add_pair("a", "b", Truth.AMBIGUOUS)
        assert table.truth_of("a", "b") is Truth.AMBIGUOUS
        assert table.truth_of("a", "zzz") is Truth.FALSE


class TestIndices:
    def _table(self) -> FunctionTable:
        table = FunctionTable("t")
        table.add_pair("a", "x")
        table.add_pair("a", "y")
        table.add_pair("b", "x")
        return table

    def test_facts_with_x(self):
        table = self._table()
        assert {f.y for f in table.facts_with_x("a")} == {"x", "y"}
        assert table.facts_with_x("zzz") == ()

    def test_facts_with_y(self):
        table = self._table()
        assert {f.x for f in table.facts_with_y("x")} == {"a", "b"}

    def test_image_preimage(self):
        table = self._table()
        assert set(table.image("a")) == {"x", "y"}
        assert set(table.preimage("x")) == {"a", "b"}

    def test_indices_updated_on_discard(self):
        table = self._table()
        table.discard("a", "x")
        assert {f.y for f in table.facts_with_x("a")} == {"y"}
        assert {f.x for f in table.facts_with_y("x")} == {"b"}

    def test_null_indices(self):
        table = FunctionTable("t")
        n1 = NullValue(1)
        table.add_pair("a", n1)
        table.add_pair(n1, "b")
        assert [f.pair for f in table.null_y_facts()] == [("a", n1)]
        assert [f.pair for f in table.null_x_facts()] == [(n1, "b")]
        table.discard("a", n1)
        assert table.null_y_facts() == ()


class TestMatching:
    def test_matching_x_exact_and_ambiguous(self):
        table = FunctionTable("t")
        n1, n2 = NullValue(1), NullValue(2)
        table.add_pair("math", "john")
        table.add_pair(n1, "bill")
        exact, ambiguous = table.matching_x("math")
        assert [f.pair for f in exact] == [("math", "john")]
        assert [f.pair for f in ambiguous] == [(n1, "bill")]

    def test_matching_x_with_null_probe(self):
        table = FunctionTable("t")
        n1, n2 = NullValue(1), NullValue(2)
        table.add_pair("math", "john")
        table.add_pair(n1, "bill")
        exact, ambiguous = table.matching_x(n1)
        assert [f.pair for f in exact] == [(n1, "bill")]
        # A null probe matches every differing fact ambiguously.
        assert [f.pair for f in ambiguous] == [("math", "john")]

    def test_matching_y(self):
        table = FunctionTable("t")
        n1 = NullValue(1)
        table.add_pair("gauss", n1)
        table.add_pair("laplace", "math")
        exact, ambiguous = table.matching_y("math")
        assert [f.pair for f in exact] == [("laplace", "math")]
        assert [f.pair for f in ambiguous] == [("gauss", n1)]


class TestCopyAndRender:
    def test_copy_is_deep_for_state(self):
        table = FunctionTable("t")
        fact = table.add_pair("a", "b")
        fact.ncl.add(1)
        clone = table.copy()
        clone_fact = clone.get("a", "b")
        clone_fact.ncl.add(2)
        clone_fact.truth = Truth.AMBIGUOUS
        assert fact.ncl == {1}
        assert fact.truth is Truth.TRUE

    def test_rows(self):
        table = FunctionTable("t")
        table.add_pair("a", "b")
        fact = table.add_pair("c", "d", Truth.AMBIGUOUS)
        fact.ncl.add(1)
        assert table.rows() == [
            ("a", "b", "T", "{}"),
            ("c", "d", "A", "{g1}"),
        ]

    def test_str(self):
        table = FunctionTable("t")
        assert "(empty)" in str(table)
        table.add_pair("a", "b")
        assert "a b T {}" in str(table)
