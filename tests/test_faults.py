"""Tests for the fault-injection registry and the crash matrix.

The matrix/sweep tests here run the full harness — every registered
fault point with a crash (and torn-write variants), plus a
byte-granular truncation sweep over the final WAL record — and assert
the acceptance criterion directly: recovery reproduces exactly the
committed prefix, for every cell, with every point actually reached.
"""

from __future__ import annotations

import pytest

from repro.errors import PersistenceError
from repro.faults import (
    FAULTS,
    CrashFault,
    ErrorFault,
    SimulatedCrash,
    TornWrite,
    TransientError,
)
from repro.faults.harness import (
    default_workload,
    run_crash_matrix,
    run_truncation_sweep,
    states_diff,
)
from repro.fdb import persistence
from repro.fdb.updates import Update
from repro.fdb.wal import LoggedDatabase, UpdateLog
from repro.obs import OBS
from repro.workloads.university import pupil_database


@pytest.fixture(autouse=True)
def clean_registry():
    """No test leaves a fault armed behind it."""
    FAULTS.disarm_all()
    yield
    FAULTS.disarm_all()


class TestRegistry:
    def test_catalogue_is_populated(self):
        names = {info.name for info in FAULTS.points()}
        # One representative per instrumented module.
        assert "storage.append.payload" in names
        assert "wal.append.after" in names
        assert "persistence.save.before" in names
        assert "txn.rollback.before-restore" in names

    def test_register_is_idempotent(self):
        before = FAULTS.points()
        for info in before:
            FAULTS.register(info.name, "other text", durable=True)
        assert FAULTS.points() == before

    def test_fire_unregistered_raises(self):
        with pytest.raises(KeyError):
            FAULTS.fire("no.such.point")

    def test_unarmed_fire_is_noop_but_counted(self):
        before = FAULTS.hits("wal.append.before")
        FAULTS.fire("wal.append.before")
        assert FAULTS.hits("wal.append.before") == before + 1

    def test_injected_context_manager_disarms(self):
        with FAULTS.injected("wal.append.before", CrashFault()):
            with pytest.raises(SimulatedCrash) as info:
                FAULTS.fire("wal.append.before")
            assert info.value.point == "wal.append.before"
        FAULTS.fire("wal.append.before")  # disarmed again

    def test_simulated_crash_evades_except_exception(self):
        FAULTS.arm("wal.append.before", CrashFault())
        with pytest.raises(SimulatedCrash):
            try:
                FAULTS.fire("wal.append.before")
            except Exception:  # noqa: BLE001 - the point of the test
                pytest.fail("SimulatedCrash must not be an Exception")

    def test_error_fault_exhausts(self):
        fault = ErrorFault(times=2)
        FAULTS.arm("wal.apply.before", fault)
        for _ in range(2):
            with pytest.raises(RuntimeError):
                FAULTS.fire("wal.apply.before")
        FAULTS.fire("wal.apply.before")  # third firing passes


class TestTransientRetry:
    def test_append_retries_through_transient_errors(self, tmp_path):
        log = UpdateLog(tmp_path / "log", backoff=0.0)
        FAULTS.arm("storage.append.before", TransientError(times=2))
        OBS.enable()
        try:
            log.append(Update.ins("teach", "gauss", "cs"))
            retries = OBS.metrics.counter("fdb.wal.retries").value
        finally:
            OBS.disable()
            OBS.reset()
            OBS.metrics.clear()
        assert retries == 2
        assert len(log) == 1  # exactly one record despite the retries

    def test_append_gives_up_after_retry_budget(self, tmp_path):
        log = UpdateLog(tmp_path / "log", retries=2, backoff=0.0)
        FAULTS.arm("storage.append.before", TransientError(times=10))
        with pytest.raises(PersistenceError, match="3 attempts"):
            log.append(Update.ins("teach", "gauss", "cs"))

    def test_torn_write_leaves_prefix(self, tmp_path):
        log = UpdateLog(tmp_path / "log")
        log.append(Update.ins("teach", "gauss", "cs"))
        size_before = log.path.stat().st_size
        FAULTS.arm("storage.append.payload", TornWrite(5))
        with pytest.raises(SimulatedCrash):
            log.append(Update.ins("teach", "noether", "algebra"))
        FAULTS.disarm_all()
        assert log.path.stat().st_size == size_before + 5
        assert log.tail_is_torn
        assert len(list(log.entries())) == 1


class TestCrashMatrix:
    def test_every_point_zero_divergence(self, tmp_path):
        """The acceptance criterion: a simulated kill at every
        registered fault point (plus torn-write variants) recovers to
        exactly the committed prefix."""
        outcomes = run_crash_matrix(tmp_path)
        failures = [str(o) + (f" :: {o.divergence}" if o.divergence
                              else "")
                    for o in outcomes if not o.ok]
        assert failures == []
        # Coverage: every cell fired its point, and every registered
        # single-node point appears in the matrix (repl.* points fire
        # only in a replicated topology; the failover matrix in
        # repro.faults.replication owns them).
        tested = {o.point for o in outcomes}
        for info in FAULTS.points():
            if info.name.startswith("repl."):
                continue
            assert info.name in tested

    def test_truncation_sweep_zero_divergence(self, tmp_path):
        """Every byte-truncation offset of the final WAL record
        recovers to the state without that record; only the complete
        record (newline aside) yields the full state."""
        outcomes = run_truncation_sweep(tmp_path)
        assert len(outcomes) > 100  # byte-granular, not spot checks
        failures = [str(o) + f" :: {o.divergence}"
                    for o in outcomes if not o.ok]
        assert failures == []

    def test_workload_exercises_checkpoint_and_sequences(self):
        steps = default_workload()
        kinds = [step[0] for step in steps]
        assert "checkpoint" in kinds
        assert any(step[0] == "update" and hasattr(step[1], "label")
                   for step in steps)

    def test_states_diff_reports_first_difference(self):
        left = pupil_database()
        right = pupil_database()
        assert states_diff(left, right) is None
        from repro.fdb.updates import apply_update

        apply_update(right, Update.ins("teach", "gauss", "cs"))
        diff = states_diff(left, right)
        assert diff is not None and "teach" in diff


class TestCheckpointCrashWindow:
    def test_crash_between_snapshot_and_truncate(self, tmp_path):
        """The double-apply window: the new snapshot already folds the
        log in, the old log still exists. Recovery must not replay the
        folded records a second time."""
        from repro.fdb.wal import checkpoint, recover

        snapshot = tmp_path / "snapshot.json"
        db = pupil_database()
        persistence.save(db, snapshot)
        logged = LoggedDatabase(db, tmp_path / "wal.log")
        logged.insert("pupil", "gauss", "bill")  # burns a null index
        FAULTS.arm("wal.checkpoint.after-snapshot", CrashFault())
        with pytest.raises(SimulatedCrash):
            checkpoint(logged, snapshot)
        FAULTS.disarm_all()
        assert len(UpdateLog(tmp_path / "wal.log")) == 1  # not truncated
        report = recover(snapshot, tmp_path / "wal.log")
        assert report.already_checkpointed == 1
        assert report.entries_applied == 0
        assert states_diff(logged.db, report.db) is None


class TestLatencyFault:
    def test_stalls_then_passes_through(self):
        import time

        from repro.faults import LatencyFault

        fault = LatencyFault(delay=0.02, times=2)
        start = time.monotonic()
        fault.trigger("storage.append.payload")
        fault.trigger("storage.append.payload")
        stalled = time.monotonic() - start
        assert stalled >= 0.04
        start = time.monotonic()
        fault.trigger("storage.append.payload")  # budget spent: no-op
        assert time.monotonic() - start < 0.02

    def test_armed_at_storage_point_slows_wal_append(self, tmp_path):
        import time

        from repro.faults import LatencyFault

        db = pupil_database()
        log = UpdateLog(tmp_path / "wal.jsonl")
        logged = LoggedDatabase(db, log)
        FAULTS.arm("storage.append.payload", LatencyFault(delay=0.03,
                                                          times=1))
        start = time.monotonic()
        logged.execute(Update.ins("teach", "gauss", "cs"))
        assert time.monotonic() - start >= 0.03
        # The write itself still committed.
        assert db.table("teach").get("gauss", "cs") is not None


class TestRegistryThreadSafety:
    def test_transient_budget_exact_under_contention(self):
        import threading

        budget = 16
        threads = 8
        per_thread = 10
        hits_before = FAULTS.hits("wal.append.before")
        FAULTS.arm("wal.append.before", TransientError(times=budget))
        raised = []
        lock = threading.Lock()
        barrier = threading.Barrier(threads)

        def worker():
            mine = 0
            barrier.wait()
            for _ in range(per_thread):
                try:
                    FAULTS.fire("wal.append.before")
                except OSError:
                    mine += 1
            with lock:
                raised.append(mine)

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join(10.0)
        # The shared budget is consumed exactly once per raise: no
        # double-decrement, no lost update.
        assert sum(raised) == budget
        assert (FAULTS.hits("wal.append.before") - hits_before
                == threads * per_thread)

    def test_concurrent_arm_disarm_is_safe(self):
        import threading

        stop = threading.Event()
        errors: list[BaseException] = []

        def churn():
            try:
                while not stop.is_set():
                    FAULTS.arm("wal.append.after",
                               TransientError(times=1))
                    FAULTS.disarm("wal.append.after")
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        def fire():
            try:
                while not stop.is_set():
                    try:
                        FAULTS.fire("wal.append.after")
                    except OSError:
                        pass
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        pool = [threading.Thread(target=churn),
                threading.Thread(target=fire)]
        for t in pool:
            t.start()
        import time

        time.sleep(0.2)
        stop.set()
        for t in pool:
            t.join(5.0)
        assert errors == []
