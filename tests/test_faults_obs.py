"""Observability of the durability path, under fault injection.

The recovery and checkpoint procedures emit ``fdb.recovery.*`` /
``fdb.wal.*`` counters and ``recovery.*`` / ``checkpoint.*`` action
records. These tests assert those signals are emitted accurately —
against clean runs first, then under the :mod:`repro.faults` crash
harness, where the counters must agree with what the recovery report
says happened.
"""

from __future__ import annotations

import pytest

from repro.faults import FAULTS, CrashFault, SimulatedCrash, TornWrite
from repro.faults.harness import run_scenario
from repro.fdb import persistence
from repro.fdb.updates import Update
from repro.fdb.wal import LoggedDatabase, UpdateLog, checkpoint, recover
from repro.obs import OBS, RingBufferSink
from repro.workloads.university import pupil_database


def _scrub():
    OBS.disable()
    OBS.reset()
    OBS.metrics.clear()
    OBS.events.clear_sinks()
    FAULTS.disarm_all()


@pytest.fixture(autouse=True)
def clean_state():
    _scrub()
    yield
    _scrub()


def _logged(tmp_path):
    db = pupil_database()
    snapshot = tmp_path / "snapshot.json"
    persistence.save(db, snapshot)
    return LoggedDatabase(db, UpdateLog(tmp_path / "wal.log")), snapshot


UPDATES = (
    Update.ins("teach", "gauss", "math"),
    Update.delete("class_list", "math", "bill"),
)


class TestCleanRunSignals:
    def test_recovery_counters_match_report(self, tmp_path):
        logged, snapshot = _logged(tmp_path)
        for update in UPDATES:
            logged.execute(update)
        OBS.enable()
        report = recover(snapshot, logged.log.path)
        assert report.entries_applied == len(UPDATES)
        counters = OBS.metrics.snapshot()["counters"]
        assert counters["fdb.recovery.runs"] == 1
        assert counters["fdb.recovery.records_applied"] == len(UPDATES)
        assert counters.get("fdb.recovery.records_skipped", 0) == 0
        assert "fdb.recovery.torn_tails" not in counters

    def test_recovery_actions_narrate_the_replay(self, tmp_path):
        logged, snapshot = _logged(tmp_path)
        for update in UPDATES:
            logged.execute(update)
        sink = OBS.events.add_sink(RingBufferSink())
        OBS.enable()
        recover(snapshot, logged.log.path)
        names = [r.name for r in sink.records]
        assert names[0] == "recovery.start"
        assert names[-1] == "recovery.finish"
        assert names.count("recovery.replay") == len(UPDATES)
        finish = sink.records[-1]
        # In-memory records keep native attr values (stringification
        # happens at JSON serialization time).
        assert finish.attrs["applied"] == len(UPDATES)
        assert finish.attrs["torn_tail"] is False

    def test_checkpoint_actions(self, tmp_path):
        logged, snapshot = _logged(tmp_path)
        logged.execute(UPDATES[0])
        sink = OBS.events.add_sink(RingBufferSink())
        OBS.enable()
        checkpoint(logged, snapshot)
        names = [r.name for r in sink.records]
        assert names == ["checkpoint.snapshot_written",
                         "checkpoint.log_truncated"]
        counters = OBS.metrics.snapshot()["counters"]
        assert counters["fdb.wal.checkpoints"] == 1


class TestUnderFaults:
    def test_torn_tail_counted_and_flagged(self, tmp_path):
        logged, snapshot = _logged(tmp_path)
        logged.execute(UPDATES[0])
        # Tear the final record mid-line, the classic crash artifact.
        log_path = logged.log.path
        raw = log_path.read_bytes()
        log_path.write_bytes(raw[: len(raw) - 7])
        sink = OBS.events.add_sink(RingBufferSink())
        OBS.enable()
        report = recover(snapshot, log_path, policy="salvage")
        assert report.torn_tail
        counters = OBS.metrics.snapshot()["counters"]
        assert counters["fdb.recovery.torn_tails"] == 1
        finish = [r for r in sink.records
                  if r.name == "recovery.finish"][0]
        assert finish.attrs["torn_tail"] is True

    def test_crash_mid_append_signals_agree(self, tmp_path):
        """Run one crash-matrix cell with instrumentation on: the
        harness's recovery must still round-trip, and the counters
        must match the cell's recovery report."""
        OBS.enable()
        outcome = run_scenario(
            "storage.append.payload", TornWrite(4), tmp_path / "cell"
        )
        assert outcome.fired
        assert outcome.ok, outcome.divergence
        counters = OBS.metrics.snapshot()["counters"]
        assert counters["fdb.recovery.runs"] == 1
        assert (counters.get("fdb.recovery.records_applied", 0)
                == outcome.report.entries_applied)

    def test_crash_after_append_replays_in_flight(self, tmp_path):
        sink = OBS.events.add_sink(RingBufferSink(capacity=4096))
        OBS.enable()
        outcome = run_scenario(
            "wal.append.after", CrashFault(), tmp_path / "cell"
        )
        assert outcome.fired and outcome.crashed
        assert outcome.ok, outcome.divergence
        replays = [r for r in sink.records
                   if r.name == "recovery.replay"]
        assert len(replays) == outcome.report.entries_applied
        # Every replayed record names the update it re-applied.
        assert all(r.attrs.get("entry") for r in replays)

    def test_crash_signal_is_not_a_counter(self, tmp_path):
        """A SimulatedCrash aborts the workload, not the accounting:
        counters collected before the crash survive it."""
        logged, snapshot = _logged(tmp_path)
        OBS.enable()
        logged.execute(UPDATES[0])
        appends_before = OBS.metrics.counter("fdb.wal.appends").value
        assert appends_before >= 1
        FAULTS.arm("wal.append.after", CrashFault())
        with pytest.raises(SimulatedCrash):
            logged.execute(UPDATES[1])
        FAULTS.disarm_all()
        assert (OBS.metrics.counter("fdb.wal.appends").value
                >= appends_before)
