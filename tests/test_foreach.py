"""Tests for the Daplex-style for-each loop and extent computation."""

from __future__ import annotations

import pytest

from repro.core.design_aid import AutoDesigner
from repro.errors import ParseError
from repro.lang import ast
from repro.lang.interp import Interpreter
from repro.lang.parser import parse_statement

SETUP = """
add teach: faculty -> course (many-many);
add class_list: course -> student (many-many);
add pupil: faculty -> student (many-many);
commit;
insert teach(euclid, math);
insert teach(laplace, math);
insert teach(laplace, physics);
insert class_list(math, john);
insert class_list(physics, bill);
"""


def run(script: str):
    interp = Interpreter(AutoDesigner())
    return interp, interp.execute(script)


class TestExtent:
    def test_extent_collects_both_columns(self, pupil_db):
        assert set(pupil_db.extent("faculty")) == {"euclid", "laplace"}
        assert set(pupil_db.extent("course")) == {"math"}
        assert set(pupil_db.extent("student")) == {"john", "bill"}

    def test_extent_preserves_first_appearance_order(self, pupil_db):
        assert pupil_db.extent("faculty") == ("euclid", "laplace")

    def test_nulls_excluded(self, pupil_db):
        pupil_db.insert("pupil", "gauss", "ada")
        assert "gauss" in pupil_db.extent("faculty")
        # The NVC's null course does not become an entity.
        assert all(
            not str(value).startswith("n")
            or value in ("john", "bill")  # names, not nulls
            for value in pupil_db.extent("course")
        )

    def test_unknown_type_is_empty(self, pupil_db):
        assert pupil_db.extent("building") == ()


class TestParsing:
    def test_basic(self):
        statement = parse_statement("for each f in faculty print teach")
        assert isinstance(statement, ast.ForEach)
        assert statement.variable == "f"
        assert statement.type_name == "faculty"
        assert statement.conditions == ()
        assert [str(q) for q in statement.prints] == ["teach"]

    def test_with_conditions(self):
        statement = parse_statement(
            "for each f in faculty such that teach(f) = math "
            "and pupil(f) contains john print teach, pupil"
        )
        assert len(statement.conditions) == 2
        assert statement.conditions[0].op == "="
        assert statement.conditions[1].op == "contains"
        assert statement.conditions[1].value == "john"
        assert len(statement.prints) == 2

    def test_condition_must_use_loop_variable(self):
        with pytest.raises(ParseError):
            parse_statement(
                "for each f in faculty such that teach(g) = math "
                "print teach"
            )

    def test_requires_each_and_print(self):
        with pytest.raises(ParseError):
            parse_statement("for f in faculty print teach")
        with pytest.raises(ParseError):
            parse_statement("for each f in faculty")


class TestExecution:
    def test_unfiltered_loop(self):
        interp, out = run(SETUP + "for each f in faculty print teach;")
        assert "  euclid: teach = {math}" in out
        assert "  laplace: teach = {math, physics}" in out

    def test_condition_filters(self):
        interp, out = run(
            SETUP
            + "for each f in faculty such that teach(f) = physics "
              "print pupil;"
        )
        body = [line for line in out if " = {" in line]
        assert body == ["  laplace: pupil = {john, bill}"]

    def test_conjunction(self):
        interp, out = run(
            SETUP
            + "for each f in faculty such that teach(f) = math "
              "and teach(f) = physics print teach;"
        )
        body = [line for line in out if " = {" in line]
        assert body == ["  laplace: teach = {math, physics}"]

    def test_inverse_expression_in_loop(self):
        interp, out = run(
            SETUP
            + "for each s in student such that "
              "(class_list^-1 o teach^-1)(s) = euclid "
              "print class_list^-1;"
        )
        body = [line for line in out if " = {" in line]
        assert body == ["  john: (class_list)^-1 = {math}"]

    def test_no_matches(self):
        interp, out = run(
            SETUP
            + "for each f in faculty such that teach(f) = alchemy "
              "print teach;"
        )
        assert out[-1] == "(no entities satisfy the conditions)"

    def test_empty_extent(self):
        interp, out = run(SETUP + "for each b in building print teach;")
        assert out[-1] == "(no building entities in the database)"

    def test_ambiguous_images_starred(self):
        interp, out = run(SETUP + """
            delete pupil(euclid, john);
            for each f in faculty print pupil;
        """)
        euclid_line = next(l for l in out if l.startswith("  euclid"))
        assert "*" not in euclid_line.split("{")[0]
        assert "{" in euclid_line  # image rendered
        # euclid's only remaining route to john is negated; pupil of
        # euclid is empty or starred depending on siblings.

    def test_ambiguity_condition_excluded(self):
        """Conditions require TRUE facts: an ambiguous fact fails."""
        interp, out = run(SETUP + """
            delete pupil(laplace, bill);
            for each f in faculty such that pupil(f) = bill print teach;
        """)
        body = [line for line in out if " = {" in line]
        assert body == []
