"""Tests for the function graph: paths, cycles, equivalence search."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.graph import FunctionGraph, Path, PathStep
from repro.core.schema import FunctionDef, Schema
from repro.core.types import ObjectType, TypeFunctionality
from repro.errors import GraphError

A, B, C, D = (ObjectType(n) for n in "ABCD")
MM = TypeFunctionality.MANY_MANY
MO = TypeFunctionality.MANY_ONE
OM = TypeFunctionality.ONE_MANY


def fd(name, dom, rng, tf=MM):
    return FunctionDef(name, dom, rng, tf)


@pytest.fixture
def triangle() -> FunctionGraph:
    """f: A->B, g: B->C, direct: A->C."""
    return FunctionGraph([
        fd("f", A, B, MO), fd("g", B, C, MO), fd("direct", A, C, MO),
    ])


class TestConstruction:
    def test_nodes_and_edges(self, triangle):
        assert set(triangle.edge_names) == {"f", "g", "direct"}
        assert set(triangle.nodes) == {A, B, C}
        assert len(triangle) == 3

    def test_duplicate_edge_rejected(self, triangle):
        with pytest.raises(GraphError):
            triangle.add(fd("f", A, B))

    def test_remove_keeps_nodes(self, triangle):
        triangle.remove("direct")
        assert "direct" not in triangle
        assert set(triangle.nodes) == {A, B, C}

    def test_remove_unknown(self):
        with pytest.raises(GraphError):
            FunctionGraph().remove("nope")

    def test_edge_lookup(self, triangle):
        edge = triangle.edge("f")
        assert edge.u == A and edge.v == B
        assert edge.other_end(A) == B
        assert edge.other_end(B) == A
        with pytest.raises(GraphError):
            edge.other_end(C)

    def test_of_schema_and_back(self, triangle):
        schema = triangle.to_schema()
        assert set(schema.names) == {"f", "g", "direct"}
        again = FunctionGraph.of_schema(schema)
        assert set(again.edge_names) == set(triangle.edge_names)

    def test_degree_counts_self_loop_twice(self):
        graph = FunctionGraph([fd("w", A, A), fd("f", A, B)])
        assert graph.degree(A) == 3
        assert graph.degree(B) == 1
        assert graph.degree(C) == 0

    def test_copy_independent(self, triangle):
        clone = triangle.copy()
        clone.remove("f")
        assert "f" in triangle


class TestPathObject:
    def test_empty_path(self):
        path = Path(A)
        assert path.start == path.end == A
        assert path.functionality == TypeFunctionality.ONE_ONE
        assert len(path) == 0
        with pytest.raises(GraphError):
            path.to_derivation()

    def test_nonchaining_rejected(self, triangle):
        g_edge = triangle.edge("g")
        with pytest.raises(GraphError):
            Path(A, [PathStep(g_edge, True)])  # g starts at B

    def test_syntax_and_functionality(self, triangle):
        path = Path(A, [
            PathStep(triangle.edge("f"), True),
            PathStep(triangle.edge("g"), True),
        ])
        assert path.syntax == (A, C)
        assert path.functionality == MO
        assert path.nodes == (A, B, C)
        assert path.edge_names == ("f", "g")

    def test_reversed(self, triangle):
        path = Path(A, [
            PathStep(triangle.edge("f"), True),
            PathStep(triangle.edge("g"), True),
        ])
        back = path.reversed()
        assert back.start == C and back.end == A
        assert str(back) == "g^-1 o f^-1"
        assert back.functionality == OM

    def test_to_derivation(self, triangle):
        path = Path(A, [PathStep(triangle.edge("f"), True)])
        derivation = path.to_derivation()
        assert str(derivation) == "f"

    def test_equivalent_to(self, triangle):
        path = Path(A, [
            PathStep(triangle.edge("f"), True),
            PathStep(triangle.edge("g"), True),
        ])
        assert path.equivalent_to(fd("direct", A, C, MO))
        assert not path.equivalent_to(fd("direct", A, C, MM))
        assert not path.equivalent_to(fd("other", A, B, MO))


class TestPathEnumeration:
    def test_simple_paths_triangle(self, triangle):
        paths = list(triangle.iter_paths(A, C))
        texts = {str(p) for p in paths}
        assert texts == {"direct", "f o g"}

    def test_avoiding(self, triangle):
        paths = list(triangle.iter_paths(A, C, avoiding=["direct"]))
        assert [str(p) for p in paths] == ["f o g"]

    def test_max_length(self, triangle):
        paths = list(triangle.iter_paths(A, C, max_length=1))
        assert [str(p) for p in paths] == ["direct"]

    def test_backward_traversal_uses_inverse(self, triangle):
        paths = {str(p) for p in triangle.iter_paths(C, A)}
        assert paths == {"direct^-1", "g^-1 o f^-1"}

    def test_no_node_revisits(self):
        # Diamond: two routes A->D; no path may bounce through B twice.
        graph = FunctionGraph([
            fd("ab", A, B), fd("bd", B, D), fd("ac", A, C), fd("cd", C, D),
            fd("bc", B, C),
        ])
        paths = list(graph.iter_paths(A, D))
        for path in paths:
            interior = path.nodes[:-1]
            assert len(set(interior)) == len(interior)
        assert {str(p) for p in paths} == {
            "ab o bd", "ac o cd", "ab o bc o cd", "ac o bc^-1 o bd",
        }

    def test_unknown_source_yields_nothing(self, triangle):
        assert list(triangle.iter_paths(D, A)) == []

    def test_parallel_edges_both_enumerated(self):
        graph = FunctionGraph([fd("e1", A, B), fd("e2", A, B)])
        assert {str(p) for p in graph.iter_paths(A, B)} == {"e1", "e2"}

    def test_self_loop_cycle(self):
        graph = FunctionGraph([fd("w", A, A)])
        cycles = {str(p) for p in graph.iter_paths(A, A)}
        assert cycles == {"w", "w^-1"}


class TestEquivalentPaths:
    def test_finds_derivation(self, triangle):
        paths = list(triangle.iter_equivalent_paths(
            triangle.edge("direct").function
        ))
        assert [str(p) for p in paths] == ["f o g"]

    def test_respects_functionality(self):
        graph = FunctionGraph([
            fd("f", A, B, MO), fd("g", B, C, OM), fd("direct", A, C, MO),
        ])
        # f o g is many-many, direct is many-one: no equivalent path.
        assert list(graph.iter_equivalent_paths(
            graph.edge("direct").function
        )) == []

    def test_excludes_self_by_default(self, triangle):
        # Looking for paths equivalent to f itself: only f, excluded.
        assert list(triangle.iter_equivalent_paths(
            triangle.edge("f").function
        )) == []


class TestEquivalentWalk:
    def test_matches_simple_path_search(self, triangle):
        direct = triangle.edge("direct").function
        assert triangle.has_equivalent_walk(direct)

    def test_respects_avoiding(self, triangle):
        direct = triangle.edge("direct").function
        assert not triangle.has_equivalent_walk(direct, avoiding=["g"])

    def test_no_walk_when_tf_wrong(self):
        graph = FunctionGraph([
            fd("f", A, B, MO), fd("g", B, C, OM), fd("direct", A, C, MO),
        ])
        assert not graph.has_equivalent_walk(graph.edge("direct").function)

    def test_walk_can_exceed_simple_paths(self):
        # direct: A->A many-many; w: A->A many-one. The walk w o w^-1 is
        # many-many and equivalent to direct even though simple cycles
        # through w alone are not.
        graph = FunctionGraph([
            fd("w", A, B, MO), fd("direct", A, A, MM),
        ])
        assert graph.has_equivalent_walk(graph.edge("direct").function)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=2 ** 30))
    def test_agrees_with_enumeration_on_random_graphs(self, seed):
        """On small random graphs: walk-search finds a witness iff
        exhaustive simple-path enumeration finds one, OR the walk needs
        a repeat (walk-positive, path-negative is legal; the converse
        is a bug)."""
        import random

        rng = random.Random(seed)
        nodes = [A, B, C, D]
        functions = []
        for i in range(rng.randint(2, 6)):
            dom, rng_t = rng.choice(nodes), rng.choice(nodes)
            tf = rng.choice(TypeFunctionality.all())
            functions.append(fd(f"e{i}", dom, rng_t, tf))
        graph = FunctionGraph(functions)
        for function in functions:
            path_exists = any(
                True for _ in graph.iter_equivalent_paths(function)
            )
            walk_exists = graph.has_equivalent_walk(function)
            if path_exists:
                assert walk_exists


class TestCycles:
    def test_cycles_through_triangle(self, triangle):
        cycles = list(triangle.cycles_through("direct"))
        assert len(cycles) == 1
        cycle = cycles[0]
        assert cycle.is_cycle
        assert cycle.edge_names[0] == "direct"
        assert set(cycle.edge_names) == {"direct", "f", "g"}

    def test_cycles_through_parallel_pair(self):
        graph = FunctionGraph([fd("e1", A, B), fd("e2", A, B)])
        cycles = list(graph.cycles_through("e1"))
        assert len(cycles) == 1
        assert set(cycles[0].edge_names) == {"e1", "e2"}

    def test_self_loop_cycle(self):
        graph = FunctionGraph([fd("w", A, A)])
        cycles = list(graph.cycles_through("w"))
        assert len(cycles) == 1
        assert len(cycles[0]) == 1

    def test_acyclic_edge_has_no_cycles(self, triangle):
        triangle.remove("direct")
        assert list(triangle.cycles_through("f")) == []

    def test_multiple_cycles(self):
        # Two midpoints give two cycles through the closer.
        graph = FunctionGraph([
            fd("p0", A, B), fd("q0", B, C),
            fd("p1", A, D), fd("q1", D, C),
            fd("closer", A, C),
        ])
        cycles = list(graph.cycles_through("closer"))
        assert len(cycles) == 2


class TestAcyclicity:
    def test_tree_is_acyclic(self):
        graph = FunctionGraph([fd("ab", A, B), fd("ac", A, C), fd("bd", B, D)])
        assert graph.is_acyclic()

    def test_triangle_is_cyclic(self, triangle):
        assert not triangle.is_acyclic()

    def test_parallel_edges_cyclic(self):
        graph = FunctionGraph([fd("e1", A, B), fd("e2", A, B)])
        assert not graph.is_acyclic()

    def test_self_loop_cyclic(self):
        graph = FunctionGraph([fd("w", A, A)])
        assert not graph.is_acyclic()

    def test_empty_acyclic(self):
        assert FunctionGraph().is_acyclic()

    def test_disconnected_components(self):
        graph = FunctionGraph([fd("ab", A, B), fd("cd", C, D)])
        assert graph.is_acyclic()
