"""End-to-end integration: design session -> database -> updates ->
queries -> persistence, plus cross-checks between the API layers."""

from __future__ import annotations

import pytest

from repro import (
    AutoDesigner,
    DesignSession,
    FunctionalDatabase,
    Truth,
    fn,
    parse_schema,
)
from repro.core.design_aid import DesignSession as CoreSession
from repro.fdb import persistence
from repro.fdb.ambiguity import measure
from repro.fdb.constraints import resolve_nulls
from repro.fdb.evaluate import derived_extension
from repro.lang.interp import Interpreter
from repro.workloads.university import (
    design_trace_designer,
    design_trace_functions,
    section_42_updates,
)


class TestDesignToDatabasePipeline:
    def test_paper_design_drives_paper_updates(self):
        """Full pipeline: Section 2.3 design produces the schema; the
        Section 4.2 updates then run against the designed database
        through the derived function taught_by and friends."""
        session = DesignSession(design_trace_designer())
        session.add_all(design_trace_functions())
        db = FunctionalDatabase.from_design(session.finish())

        db.insert("teach", "euclid", "math")
        db.insert("class_list", "math", "john")
        # taught_by = teach^-1 answers through the derivation.
        assert db.truth_of("taught_by", "math", "euclid") is Truth.TRUE
        # lecturer_of = class_list^-1 o teach^-1.
        assert db.truth_of("lecturer_of", "john", "euclid") is Truth.TRUE
        # grade = score o cutoff accepts derived inserts with nulls.
        db.insert("grade", ("john", "math"), "A")
        assert db.truth_of("grade", ("john", "math"), "A") is Truth.TRUE
        assert db.counts()["next_null_index"] == 2  # one NVC null

    def test_grade_null_resolution_via_fd(self):
        """score is many-one: a real score for (john, math) forces the
        NVC null, and cutoff inherits the real mark."""
        session = DesignSession(design_trace_designer())
        session.add_all(design_trace_functions())
        db = FunctionalDatabase.from_design(session.finish())
        db.insert("grade", ("john", "math"), "A")
        db.insert("score", ("john", "math"), 91)
        substitutions = resolve_nulls(db)
        assert len(substitutions) == 1
        assert db.table("cutoff").get(91, "A") is not None
        assert measure(db).null_count == 0

    def test_interpreter_agrees_with_api(self, pupil_db, u_sequence):
        """The same scenario through the surface language and through
        the Python API lands on identical stored state."""
        from repro.fdb.updates import apply_update

        for update in u_sequence:
            apply_update(pupil_db, update)

        interp = Interpreter(AutoDesigner())
        interp.execute("""
            add teach: faculty -> course (many-many);
            add class_list: course -> student (many-many);
            add pupil: faculty -> student (many-many);
            commit;
            insert teach(euclid, math);
            insert teach(laplace, math);
            insert class_list(math, john);
            insert class_list(math, bill);
            delete pupil(euclid, john);
            insert pupil(gauss, bill);
            delete teach(euclid, math);
            insert class_list(math, john);
            insert teach(gauss, math);
        """)
        assert interp.db is not None
        for name in pupil_db.base_names:
            assert (
                pupil_db.table(name).rows()
                == interp.db.table(name).rows()
            )
        assert derived_extension(pupil_db, "pupil") == (
            derived_extension(interp.db, "pupil")
        )


class TestPersistenceAcrossLayers:
    def test_mid_trace_snapshot_resumes(self, pupil_db, u_sequence,
                                        tmp_path):
        from repro.fdb.updates import apply_update

        for update in u_sequence[:2]:
            apply_update(pupil_db, update)
        persistence.save(pupil_db, tmp_path / "mid.json")
        resumed = persistence.load(tmp_path / "mid.json")
        for update in u_sequence[2:]:
            apply_update(resumed, update)
        # Compare with an uninterrupted run.
        from repro.workloads.university import pupil_database

        straight = pupil_database()
        for update in u_sequence:
            apply_update(straight, update)
        assert derived_extension(resumed, "pupil") == (
            derived_extension(straight, "pupil")
        )


class TestQueriesOverDesignedDatabase:
    def test_adhoc_equals_registered(self):
        session = CoreSession(AutoDesigner())
        session.add_all(parse_schema("""
            teach: faculty -> course; (many-many)
            class_list: course -> student; (many-many)
            pupil: faculty -> student; (many-many)
        """))
        db = FunctionalDatabase.from_design(session.finish())
        db.insert("teach", "euclid", "math")
        db.insert("class_list", "math", "john")
        db.delete("pupil", "euclid", "john")
        adhoc = (fn("teach") * fn("class_list")).pairs(db)
        registered = fn("pupil").pairs(db)
        assert adhoc == registered


class TestSchemaEvolution:
    def test_new_derived_function_over_existing_data(self, pupil_db):
        """Declaring an extra derived function later immediately sees
        existing facts and partial information."""
        from repro.core.derivation import Derivation, Op, Step

        pupil_db.delete("pupil", "euclid", "john")
        teach = pupil_db.schema["teach"]
        class_list = pupil_db.schema["class_list"]
        from repro.core.schema import FunctionDef
        from repro.core.types import ObjectType

        pupil_db.declare_derived(
            FunctionDef(
                "classmates_teacher",
                ObjectType("student"), ObjectType("faculty"),
            ),
            Derivation([
                Step(class_list, Op.INVERSE), Step(teach, Op.INVERSE),
            ]),
        )
        extension = derived_extension(pupil_db, "classmates_teacher")
        assert extension[("bill", "euclid")] is Truth.AMBIGUOUS
        assert extension[("bill", "laplace")] is Truth.TRUE
        assert ("john", "euclid") not in extension  # NC'd chain
