"""Tests for declarative integrity constraints."""

from __future__ import annotations

import pytest

from repro.errors import ConstraintViolation, SchemaError
from repro.fdb.integrity import (
    CardinalityConstraint,
    ConstraintSet,
    DomainConstraint,
    InclusionDependency,
)
from repro.fdb.logic import Truth
from repro.fdb.updates import Update


class TestInclusionDependency:
    def _constraint(self):
        # Every course with a class list must be taught by somebody.
        return InclusionDependency(
            "class_list", "domain", "teach", "range",
        )

    def test_holds_on_paper_instance(self, pupil_db):
        assert self._constraint().holds(pupil_db)

    def test_detects_orphan(self, pupil_db):
        pupil_db.insert("class_list", "alchemy", "john")
        violations = self._constraint().violations(pupil_db)
        assert len(violations) == 1
        assert "alchemy" in violations[0].message

    def test_nulls_exempt(self, pupil_db):
        pupil_db.insert("pupil", "gauss", "bill")  # NVC: null course
        assert self._constraint().holds(pupil_db)

    def test_name(self):
        assert self._constraint().name == (
            "class_list.domain <= teach.range"
        )


class TestDomainConstraint:
    def test_predicate_checked(self, pupil_db):
        from repro.core.schema import FunctionDef
        from repro.core.types import ObjectType, TypeFunctionality

        pupil_db.declare_base(FunctionDef(
            "score", ObjectType("student"), ObjectType("marks"),
            TypeFunctionality.MANY_ONE,
        ))
        constraint = DomainConstraint(
            "score", "range",
            lambda v: isinstance(v, int) and 0 <= v <= 100,
            description="0..100",
        )
        pupil_db.insert("score", "john", 91)
        assert constraint.holds(pupil_db)
        pupil_db.insert("score", "bill", 140)
        violations = constraint.violations(pupil_db)
        assert len(violations) == 1
        assert "140" in violations[0].message

    def test_bad_column(self, pupil_db):
        constraint = DomainConstraint(
            "teach", "sideways", lambda v: True
        )
        with pytest.raises(SchemaError):
            constraint.violations(pupil_db)


class TestCardinalityConstraint:
    def test_maximum(self, pupil_db):
        constraint = CardinalityConstraint(
            "class_list", per="domain", maximum=2
        )
        assert constraint.holds(pupil_db)  # math has 2 students
        pupil_db.insert("class_list", "math", "ada")
        violations = constraint.violations(pupil_db)
        assert len(violations) == 1
        assert "maximum 2" in violations[0].message

    def test_minimum_applies_to_present_groups_only(self, pupil_db):
        constraint = CardinalityConstraint(
            "class_list", per="domain", minimum=2
        )
        assert constraint.holds(pupil_db)
        pupil_db.insert("class_list", "physics", "ada")  # group of 1
        assert not constraint.holds(pupil_db)

    def test_per_range(self, pupil_db):
        constraint = CardinalityConstraint(
            "teach", per="range", maximum=1
        )
        # math is taught by two people.
        assert len(constraint.violations(pupil_db)) == 1

    def test_nulls_exempt(self, pupil_db):
        pupil_db.insert("pupil", "gauss", "bill")  # null-keyed rows
        constraint = CardinalityConstraint(
            "class_list", per="domain", maximum=2
        )
        assert constraint.holds(pupil_db)

    def test_bad_per(self, pupil_db):
        with pytest.raises(SchemaError):
            CardinalityConstraint("teach", per="diagonal").violations(
                pupil_db
            )


class TestConstraintSet:
    def _set(self) -> ConstraintSet:
        return ConstraintSet([
            InclusionDependency("class_list", "domain", "teach", "range"),
            CardinalityConstraint("class_list", per="domain", maximum=2),
        ])

    def test_check_aggregates(self, pupil_db):
        constraints = self._set()
        assert constraints.check(pupil_db) == []
        pupil_db.insert("class_list", "alchemy", "a")
        pupil_db.insert("class_list", "math", "ada")
        assert len(constraints.check(pupil_db)) == 2

    def test_guarded_accepts_clean_update(self, pupil_db):
        constraints = self._set()
        constraints.guarded(
            pupil_db, Update.ins("teach", "gauss", "optics")
        )
        assert pupil_db.truth_of("teach", "gauss", "optics") is Truth.TRUE

    def test_guarded_rolls_back_violation(self, pupil_db):
        constraints = self._set()
        with pytest.raises(ConstraintViolation):
            constraints.guarded(
                pupil_db, Update.ins("class_list", "alchemy", "john")
            )
        # Rolled back: the offending fact is gone.
        assert pupil_db.truth_of(
            "class_list", "alchemy", "john"
        ) is Truth.FALSE

    def test_guarded_rolls_back_partial_information_too(self, pupil_db):
        constraints = ConstraintSet([
            CardinalityConstraint("teach", per="domain", maximum=1),
        ])
        # The derived insert would add an NVC row <gauss, n1> to teach
        # twice? No -- it adds one row; make it violate by preloading.
        pupil_db.insert("teach", "gauss", "optics")
        with pytest.raises(ConstraintViolation):
            constraints.guarded(
                pupil_db, Update.ins("teach", "gauss", "algebra")
            )
        assert pupil_db.truth_of("teach", "gauss", "algebra") is Truth.FALSE

    def test_iteration_and_len(self):
        constraints = self._set()
        assert len(constraints) == 2
        assert len(list(constraints)) == 2
        constraints.add(CardinalityConstraint("teach", maximum=5))
        assert len(constraints) == 3
