"""Tests for the update journal (history, undo, redo)."""

from __future__ import annotations

import pytest

from repro.errors import UpdateError
from repro.fdb.evaluate import derived_extension
from repro.fdb.journal import Journal
from repro.fdb.logic import Truth
from repro.fdb.updates import Update
from repro.workloads.university import pupil_database, section_42_updates


@pytest.fixture
def journal(pupil_db):
    return Journal(pupil_db)


class TestExecute:
    def test_applies_and_records(self, journal):
        journal.execute(Update.ins("teach", "gauss", "cs"))
        assert journal.db.truth_of("teach", "gauss", "cs") is Truth.TRUE
        assert [str(u) for u in journal.history] == [
            "INS(teach, <gauss, cs>)",
        ]

    def test_execute_all(self, journal, u_sequence):
        journal.execute_all(list(u_sequence))
        assert len(journal.history) == 5

    def test_max_depth_drops_oldest(self, pupil_db):
        journal = Journal(pupil_db, max_depth=2)
        for i in range(4):
            journal.execute(Update.ins("teach", f"t{i}", "c"))
        assert len(journal.history) == 2
        assert str(journal.history[0]) == "INS(teach, <t2, c>)"

    def test_bad_depth(self, pupil_db):
        with pytest.raises(ValueError):
            Journal(pupil_db, max_depth=0)


class TestUndo:
    def test_undo_base_insert(self, journal):
        journal.execute(Update.ins("teach", "gauss", "cs"))
        undone = journal.undo()
        assert str(undone) == "INS(teach, <gauss, cs>)"
        assert journal.db.truth_of("teach", "gauss", "cs") is Truth.FALSE

    def test_undo_derived_delete_restores_partial_info(self, journal):
        journal.execute(Update.delete("pupil", "euclid", "john"))
        assert len(journal.db.ncs) == 1
        journal.undo()
        assert len(journal.db.ncs) == 0
        fact = journal.db.table("teach").get("euclid", "math")
        assert fact.truth is Truth.TRUE and fact.ncl == set()

    def test_undo_derived_insert_restores_null_counter(self, journal):
        journal.execute(Update.ins("pupil", "gauss", "bill"))
        assert journal.db.nulls.next_index == 2
        journal.undo()
        assert journal.db.nulls.next_index == 1
        assert len(journal.db.table("teach")) == 2

    def test_undo_empty_raises(self, journal):
        with pytest.raises(UpdateError):
            journal.undo()

    def test_undo_all_restores_initial(self, journal, u_sequence):
        before = derived_extension(journal.db, "pupil")
        journal.execute_all(list(u_sequence))
        undone = journal.undo_all()
        assert len(undone) == 5
        assert derived_extension(journal.db, "pupil") == before
        assert not journal.can_undo


class TestRedo:
    def test_redo_reproduces_exactly(self, journal, u_sequence):
        journal.execute_all(list(u_sequence))
        final_rows = journal.db.table("teach").rows()
        final_pupil = derived_extension(journal.db, "pupil")
        for _ in range(5):
            journal.undo()
        for _ in range(5):
            journal.redo()
        assert journal.db.table("teach").rows() == final_rows
        assert derived_extension(journal.db, "pupil") == final_pupil

    def test_redo_empty_raises(self, journal):
        with pytest.raises(UpdateError):
            journal.redo()

    def test_new_execute_clears_redo(self, journal):
        journal.execute(Update.ins("teach", "gauss", "cs"))
        journal.undo()
        assert journal.can_redo
        journal.execute(Update.ins("teach", "noether", "algebra"))
        assert not journal.can_redo
        assert journal.redo_stack == ()

    def test_interleaved_undo_redo(self, journal, u_sequence):
        journal.execute_all(list(u_sequence)[:3])
        journal.undo()
        journal.redo()
        journal.undo()
        journal.undo()
        assert len(journal.history) == 1
        assert len(journal.redo_stack) == 2


class TestInspection:
    def test_describe(self, journal, u_sequence):
        journal.execute(u_sequence[0])
        text = journal.describe()
        assert "1 applied, 0 undone" in text
        assert "DEL(pupil, <euclid, john>)" in text

    def test_clear(self, journal, u_sequence):
        journal.execute(u_sequence[0])
        journal.undo()
        journal.clear()
        assert not journal.can_undo and not journal.can_redo


class TestDeterministicReplay:
    def test_null_indices_identical_after_undo_redo(self, journal):
        """Redo must burn the same null index the original run did."""
        journal.execute(Update.ins("pupil", "gauss", "bill"))
        first_rows = journal.db.table("teach").rows()
        journal.undo()
        journal.redo()
        assert journal.db.table("teach").rows() == first_rows
