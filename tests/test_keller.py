"""Tests for the Keller-style dialogue-chosen translator."""

from __future__ import annotations

import pytest

from repro.relational.keller import (
    KellerTranslator,
    choose_fewest_deletions,
    choose_least_view_damage,
)
from repro.relational.relation import Relation, RelationalDatabase
from repro.relational.translate import Deletion, measure_side_effects
from repro.relational.view import ChainView


class TestCandidates:
    def test_one_candidate_per_relation(self, relational_31):
        db, view, target = relational_31
        candidates = KellerTranslator().candidates(db, view, target)
        assert [c.relation for c in candidates] == ["r1", "r2", "r3"]
        assert [c.deletions for c in candidates] == [2, 2, 1]
        # On this instance no candidate damages the view further.
        assert [c.view_losses for c in candidates] == [0, 0, 0]

    def test_absent_tuple_no_candidates(self, relational_31):
        db, view, target = relational_31
        assert KellerTranslator().candidates(db, view, ("zz", "d1")) == []
        translation = KellerTranslator().translate(db, view, ("zz", "d1"))
        assert translation.accepted and translation.deletions == ()


class TestChoosers:
    def test_fewest_deletions_picks_r3(self, relational_31):
        db, view, target = relational_31
        translator = KellerTranslator(choose_fewest_deletions)
        translation = translator.translate(db, view, target)
        assert translation.deletions == (Deletion("r3", ("c1", "d1")),)

    def test_least_view_damage_breaks_ties_by_deletions(self,
                                                        relational_31):
        db, view, target = relational_31
        translator = KellerTranslator(choose_least_view_damage)
        translation = translator.translate(db, view, target)
        # All candidates are damage-free here; fewest deletions wins.
        assert translation.deletions == (Deletion("r3", ("c1", "d1")),)

    def test_least_view_damage_avoids_shared_hub(self):
        """With a second source through the shared r3 tuple, deleting
        from r3 damages the view; the chooser prefers r1."""
        db = RelationalDatabase([
            Relation("r1", ("A", "B"),
                     [("a1", "b1"), ("a1", "b2"), ("a2", "b1")]),
            Relation("r2", ("B", "C"), [("b1", "c1"), ("b2", "c1")]),
            Relation("r3", ("C", "D"), [("c1", "d1")]),
        ])
        db.add_view(ChainView("v", ("r1", "r2", "r3")))
        translator = KellerTranslator(choose_least_view_damage)
        translation = translator.translate(db, "v", ("a1", "d1"))
        assert all(d.relation == "r1" for d in translation.deletions)
        effects = measure_side_effects(db, translator, "v", ("a1", "d1"))
        assert effects.view_losses == 0
        assert effects.base_deletions == 2

    def test_fewest_deletions_accepts_the_damage(self):
        db = RelationalDatabase([
            Relation("r1", ("A", "B"),
                     [("a1", "b1"), ("a1", "b2"), ("a2", "b1")]),
            Relation("r2", ("B", "C"), [("b1", "c1"), ("b2", "c1")]),
            Relation("r3", ("C", "D"), [("c1", "d1")]),
        ])
        db.add_view(ChainView("v", ("r1", "r2", "r3")))
        translator = KellerTranslator(choose_fewest_deletions)
        effects = measure_side_effects(db, translator, "v", ("a1", "d1"))
        assert effects.base_deletions == 1   # DEL(r3, <c1, d1>)
        assert effects.view_losses == 1      # <a2, d1> lost

    def test_custom_chooser(self, relational_31):
        db, view, target = relational_31
        translator = KellerTranslator(lambda db_, v_, cands: 0)
        translation = translator.translate(db, view, target)
        assert all(d.relation == "r1" for d in translation.deletions)

    def test_invalid_chooser_index_rejected(self, relational_31):
        db, view, target = relational_31
        translator = KellerTranslator(lambda db_, v_, cands: 99)
        translation = translator.translate(db, view, target)
        assert not translation.accepted


class TestStillDeletesBaseFacts:
    def test_the_papers_objection_holds(self, relational_31):
        """Even the best dialogue choice removes base tuples whose
        falsity the view delete never implied — the paper's point."""
        db, view, target = relational_31
        for chooser in (choose_fewest_deletions,
                        choose_least_view_damage):
            effects = measure_side_effects(
                db, KellerTranslator(chooser), view, target
            )
            assert effects.base_deletions >= 1
