"""Tests for the extended language surface: journal navigation,
possible worlds, integrity constraints, guard mode, DOT export."""

from __future__ import annotations

import pytest

from repro.core.design_aid import AutoDesigner
from repro.errors import ParseError
from repro.lang import ast
from repro.lang.interp import Interpreter
from repro.lang.parser import parse_statement

PUPIL_SETUP = """
add teach: faculty -> course (many-many);
add class_list: course -> student (many-many);
add pupil: faculty -> student (many-many);
commit;
insert teach(euclid, math);
insert class_list(math, john);
"""


def run(script: str) -> tuple[Interpreter, list[str]]:
    interp = Interpreter(AutoDesigner())
    return interp, interp.execute(script)


class TestParsingNewStatements:
    def test_nullaries(self):
        assert isinstance(parse_statement("undo"), ast.Undo)
        assert isinstance(parse_statement("redo"), ast.Redo)
        assert isinstance(parse_statement("history"), ast.History)
        assert isinstance(parse_statement("worlds"), ast.Worlds)
        assert isinstance(parse_statement("check"), ast.Check)

    def test_prob(self):
        statement = parse_statement("prob teach(euclid, math)")
        assert statement == ast.Probability("teach", "euclid", "math")

    def test_inclusion(self):
        statement = parse_statement(
            "constraint include class_list.domain in teach.range"
        )
        assert statement == ast.DeclareInclusion(
            "class_list", "domain", "teach", "range"
        )

    def test_inclusion_requires_valid_columns(self):
        with pytest.raises(ParseError):
            parse_statement("constraint include f.sideways in g.range")

    def test_range(self):
        statement = parse_statement("constraint range score.range 0 100")
        assert statement == ast.DeclareRange("score", "range", 0, 100)

    def test_cardinality(self):
        statement = parse_statement(
            "constraint card class_list per domain min 1 max 30"
        )
        assert statement == ast.DeclareCardinality(
            "class_list", "domain", 1, 30
        )

    def test_cardinality_max_only(self):
        statement = parse_statement("constraint card f per range max 2")
        assert statement == ast.DeclareCardinality("f", "range", 0, 2)

    def test_unknown_constraint_kind(self):
        with pytest.raises(ParseError):
            parse_statement("constraint foreign f.domain")

    def test_guard(self):
        assert parse_statement("guard on") == ast.Guard(True)
        assert parse_statement("guard off") == ast.Guard(False)
        with pytest.raises(ParseError):
            parse_statement("guard maybe")

    def test_dot(self):
        assert parse_statement('dot "out.dot"') == ast.DotExport("out.dot")


class TestJournalStatements:
    def test_undo_redo_roundtrip(self):
        interp, out = run(PUPIL_SETUP + """
            delete pupil(euclid, john);
            undo;
            truth pupil(euclid, john);
            redo;
            truth pupil(euclid, john);
        """)
        assert "undone: DEL(pupil, <euclid, john>)" in out
        assert "pupil(euclid) = john: true" in out
        assert out[-1] == "pupil(euclid) = john: false"

    def test_history_lists_updates(self):
        interp, out = run(PUPIL_SETUP + "history;")
        joined = "\n".join(out)
        assert "2 applied, 0 undone" in joined
        assert "1. INS(teach, <euclid, math>)" in joined

    def test_undo_with_empty_journal_reports_error(self):
        interp, out = run(PUPIL_SETUP + "undo; undo; undo;")
        assert out[-1] == "error: nothing to undo"


class TestWorldsStatements:
    def test_worlds_report(self):
        interp, out = run(PUPIL_SETUP + """
            delete pupil(euclid, john);
            worlds;
        """)
        joined = "\n".join(out)
        assert "3 possible worlds over 2 ambiguous facts" in joined

    def test_prob_values(self):
        interp, out = run(PUPIL_SETUP + """
            delete pupil(euclid, john);
            prob teach(euclid, math);
            prob pupil(euclid, john);
            prob class_list(math, nobody);
        """)
        assert "P(teach(euclid) = math) = 0.333" in out
        assert "P(pupil(euclid) = john) = 0.000" in out
        assert "P(class_list(math) = nobody) = 0.000" in out


class TestDefaultStatement:
    def test_default_promotes_shared_survivors(self):
        interp, out = run(PUPIL_SETUP + """
            insert class_list(math, bill);
            delete pupil(euclid, john);
            delete pupil(euclid, bill);
            truth class_list(math, john);
            default class_list(math, john);
            default teach(euclid, math);
        """)
        assert "class_list(math) = john: ambiguous" in out
        assert "class_list(math) = john by default: true" in out
        assert "teach(euclid) = math by default: false" in out


class TestConstraintStatements:
    def test_check_clean(self):
        interp, out = run(PUPIL_SETUP + """
            constraint include class_list.domain in teach.range;
            check;
        """)
        assert out[-1] == "ok: all 1 constraints hold"

    def test_check_reports_violation(self):
        interp, out = run(PUPIL_SETUP + """
            constraint include class_list.domain in teach.range;
            insert class_list(alchemy, ada);
            check;
        """)
        assert any(line.startswith("violation:") for line in out)

    def test_guard_undoes_violating_update(self):
        interp, out = run(PUPIL_SETUP + """
            constraint include class_list.domain in teach.range;
            guard on;
            insert class_list(alchemy, ada);
        """)
        assert out[-1].startswith("error: update INS(class_list, "
                                  "<alchemy, ada>) undone")
        # The fact is really gone.
        assert interp.db is not None
        assert interp.db.table("class_list").get("alchemy", "ada") is None
        # And the journal holds only the two clean updates.
        assert len(interp.journal.history) == 2

    def test_guard_off_allows(self):
        interp, out = run(PUPIL_SETUP + """
            constraint include class_list.domain in teach.range;
            guard on;
            guard off;
            insert class_list(alchemy, ada);
        """)
        assert out[-1] == "ok: INS(class_list, <alchemy, ada>)"

    def test_range_constraint(self):
        interp, out = run("""
            add score: student -> marks (many-one);
            commit;
            constraint range score.range 0 100;
            guard on;
            insert score(john, 91);
            insert score(bill, 140);
        """)
        assert "ok: INS(score, <john, 91>)" in out
        assert out[-1].startswith("error: update INS(score, <bill, 140>)")


class TestRedesignOrphans:
    def test_surviving_base_function_keeps_data_silently(self):
        """When the re-design keeps a function base, its facts carry
        forward with no orphan warning (AutoDesigner classifies the
        newly added taught_by as derived, not teach)."""
        interp, out = run("""
            add teach: faculty -> course (many-many);
            commit;
            insert teach(euclid, math);
            insert teach(gauss, optics);
            add taught_by: course -> faculty (many-many);
            commit;
        """)
        joined = "\n".join(out)
        assert "carried 2 stored facts forward" in joined
        assert "warning" not in joined

    def test_orphan_warning_fires(self):
        from repro.core.design_aid import ScriptedDesigner

        designer = ScriptedDesigner(removals={
            frozenset({"teach", "taught_by"}): "teach",
        })
        interp = Interpreter(designer)
        out = interp.execute("""
            add teach: faculty -> course (many-many);
            commit;
            insert teach(euclid, math);
            add taught_by: course -> faculty (many-many);
            commit;
        """)
        joined = "\n".join(out)
        # teach got re-classified as derived (= taught_by^-1) and its
        # stored fact has no counterpart in the empty taught_by table.
        assert "warning: 1 stored facts" in joined
        assert "<teach, euclid, math>" in joined


class TestDotStatement:
    def test_writes_file(self, tmp_path):
        path = str(tmp_path / "design.dot").replace("\\", "/")
        interp, out = run(PUPIL_SETUP + f'dot "{path}";')
        assert out[-1] == f"wrote DOT design to {path}"
        text = (tmp_path / "design.dot").read_text(encoding="utf-8")
        assert "pupil = teach o class_list" in text
        assert "style=dashed" in text


class TestDeadlineCommand:
    def test_parse_forms(self):
        assert parse_statement("deadline") == ast.DeadlineCmd("show")
        assert parse_statement("deadline off") == ast.DeadlineCmd("off")
        assert parse_statement("deadline 0.5") == ast.DeadlineCmd(
            "set", 0.5)

    def test_parse_rejects_nonpositive(self):
        with pytest.raises(ParseError):
            parse_statement("deadline 0")

    def test_set_show_off_roundtrip(self):
        _, out = run(PUPIL_SETUP + "deadline; deadline 0.5; deadline;"
                                   " deadline off; deadline;")
        assert out[-5] == "deadline off -- set one with 'deadline 0.5'"
        assert out[-4] == "deadline: statements limited to 0.5s"
        assert out[-3] == "deadline: 0.5s per statement"
        assert out[-2] == "deadline off"
        assert out[-1] == "deadline off -- set one with 'deadline 0.5'"

    def test_expired_deadline_aborts_statement_cleanly(self):
        interp, out = run(PUPIL_SETUP)
        interp.deadline_seconds = 1e-9
        result = interp.execute("insert teach(gauss, cs)")
        assert result and result[0].startswith("error: deadline")
        # The update was aborted before any mutation; turning the
        # deadline off restores normal service.
        interp.deadline_seconds = None
        from repro.fdb.logic import Truth

        assert interp.db.truth_of("teach", "gauss", "cs") is Truth.FALSE
        interp.execute("insert teach(gauss, cs)")
        assert interp.db.truth_of("teach", "gauss", "cs") is Truth.TRUE

    def test_deadline_command_itself_exempt(self):
        interp, _ = run(PUPIL_SETUP)
        interp.deadline_seconds = 1e-9
        # 'deadline off' must run even under an expired budget.
        assert interp.execute("deadline off") == ["deadline off"]
        assert interp.deadline_seconds is None
