"""Tests for script sourcing, schema-file loading, and the cycle cap."""

from __future__ import annotations

import pytest

from repro.core.design_aid import AutoDesigner, CallbackDesigner, DesignSession
from repro.lang.interp import Interpreter
from repro.workloads.generator import cyclic_design_schema
from repro.workloads.university import schema_s1
from repro.core.schema_text import format_schema


def interp() -> Interpreter:
    return Interpreter(AutoDesigner())


class TestSource:
    def test_runs_nested_script(self, tmp_path):
        script = tmp_path / "setup.fdb"
        script.write_text(
            "add teach: faculty -> course (many-many);\n"
            "commit;\n"
            "insert teach(euclid, math);\n",
            encoding="utf-8",
        )
        engine = interp()
        out = engine.execute(
            f'source "{script}"; truth teach(euclid, math);'
        )
        assert f"sourcing {script}" in out[0]
        assert out[-1] == "teach(euclid) = math: true"

    def test_missing_file_reports_error(self):
        engine = interp()
        out = engine.execute('source "/nonexistent/path.fdb";')
        assert out[0].startswith("error:") or "error" in out[-1]


class TestLoadSchema:
    def test_adds_paper_notation_file(self, tmp_path):
        schema_file = tmp_path / "s1.schema"
        schema_file.write_text(
            format_schema(schema_s1(), numbered=True), encoding="utf-8"
        )
        engine = interp()
        out = engine.execute(f'schema "{schema_file}"; design;')
        joined = "\n".join(out)
        assert "loading schema" in joined
        # AutoDesigner classifies grade and taught_by as derived.
        assert "Derived functions: grade, taught_by" in joined

    def test_cycles_still_go_through_designer(self, tmp_path):
        schema_file = tmp_path / "s1.schema"
        schema_file.write_text(
            format_schema(schema_s1()), encoding="utf-8"
        )
        engine = interp()
        out = engine.execute(f'schema "{schema_file}";')
        assert any("cycle:" in line for line in out)


class TestCycleCap:
    def test_uncapped_session_reports_long_cycles(self):
        schema = cyclic_design_schema(3, path_length=3)
        keeper = CallbackDesigner(lambda report: None)
        session = DesignSession(keeper)
        session.add_all(schema)
        lengths = {
            len(event.report.cycle)
            for event in session.log if event.kind == "cycle"
        }
        assert max(lengths) >= 6

    def test_capped_session_skips_long_cycles(self):
        schema = cyclic_design_schema(3, path_length=3)
        keeper = CallbackDesigner(lambda report: None)
        session = DesignSession(keeper, max_cycle_length=4)
        session.add_all(schema)
        lengths = [
            len(event.report.cycle)
            for event in session.log if event.kind == "cycle"
        ]
        assert all(length <= 4 for length in lengths)

    def test_cap_does_not_affect_paper_trace(self):
        from repro.workloads.university import (
            design_trace_designer,
            design_trace_functions,
        )

        session = DesignSession(
            design_trace_designer(), max_cycle_length=4
        )
        session.add_all(design_trace_functions())
        assert set(session.derived_schema.names) == {
            "taught_by", "lecturer_of", "grade",
        }
