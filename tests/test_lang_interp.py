"""Tests for the interpreter (design + update + query lifecycle)."""

from __future__ import annotations

import pytest

from repro.core.design_aid import AutoDesigner
from repro.lang.interp import Interpreter
from repro.workloads.university import design_trace_designer


def run(script: str, designer=None) -> tuple[Interpreter, list[str]]:
    interp = Interpreter(designer or AutoDesigner())
    return interp, interp.execute(script)


DESIGN = """
add teach: faculty -> course (many-many);
add class_list: course -> student (many-many);
add pupil: faculty -> student (many-many);
"""


class TestDesignPhase:
    def test_add_reports(self):
        interp, out = run(DESIGN)
        joined = "\n".join(out)
        assert "added teach" in joined
        assert "cycle:" in joined
        assert "pupil classified as derived" in joined

    def test_show_design(self):
        interp, out = run(DESIGN + "design;")
        joined = "\n".join(out)
        assert "Derived functions: pupil" in joined
        assert "pupil = teach o class_list" in joined

    def test_explicit_commit(self):
        interp, out = run(DESIGN + "commit;")
        assert any("committed: 2 base, 1 derived" in l for l in out)
        assert interp.db is not None

    def test_implicit_commit_on_data_statement(self):
        interp, out = run(DESIGN + "insert teach(euclid, math);")
        joined = "\n".join(out)
        assert "(implicit commit)" in joined
        assert "ok: INS(teach, <euclid, math>)" in joined

    def test_redesign_carries_facts(self):
        interp, out = run(DESIGN + """
            commit;
            insert teach(euclid, math);
            add score: [student; course] -> marks (many-one);
            commit;
            truth teach(euclid, math);
        """)
        joined = "\n".join(out)
        assert "carried 1 stored facts forward" in joined
        assert "teach(euclid) = math: true" in joined


class TestUpdatesAndQueries:
    FULL = DESIGN + """
        commit;
        insert teach(euclid, math);
        insert teach(laplace, math);
        insert class_list(math, john);
        insert class_list(math, bill);
    """

    def test_truth_query(self):
        interp, out = run(self.FULL + "truth pupil(euclid, john);")
        assert out[-1] == "pupil(euclid) = john: true"

    def test_derived_delete_and_ncs(self):
        interp, out = run(self.FULL + """
            delete pupil(euclid, john);
            ncs;
            truth pupil(euclid, bill);
        """)
        joined = "\n".join(out)
        assert "g1: NOT(<teach, euclid, math> AND "in joined
        assert out[-1] == "pupil(euclid) = bill: ambiguous"

    def test_replace(self):
        interp, out = run(self.FULL + """
            replace teach(euclid, math) with (euclid, physics);
            truth teach(euclid, physics);
        """)
        assert out[-1] == "teach(euclid) = physics: true"

    def test_image_query(self):
        interp, out = run(self.FULL + "query pupil(euclid);")
        assert set(out[-2:]) == {"  john", "  bill"}

    def test_image_query_with_expression(self):
        interp, out = run(
            self.FULL + "query (class_list^-1 o teach^-1)(john);"
        )
        assert set(out[-2:]) == {"  euclid", "  laplace"}

    def test_pairs_query(self):
        interp, out = run(self.FULL + "pairs teach^-1;")
        assert "  <math, euclid>" in out
        assert "  <math, laplace>" in out

    def test_empty_result(self):
        interp, out = run(self.FULL + "query teach(nobody);")
        assert out[-1] == "(empty)"

    def test_show_named(self):
        interp, out = run(self.FULL + "show teach;")
        assert any("euclid" in line and "math" in line for line in out)

    def test_show_derived_stars_ambiguity(self):
        interp, out = run(self.FULL + """
            delete pupil(euclid, john);
            show pupil;
        """)
        assert any(line.rstrip().endswith("*") for line in out)

    def test_metrics(self):
        interp, out = run(self.FULL + "metrics;")
        assert any("degree of ambiguity" in line for line in out)

    def test_resolve_reports(self):
        interp, out = run(DESIGN + """
            commit;
            insert pupil(gauss, bill);
            resolve;
        """)
        # pupil's functions are many-many: nothing is forced.
        assert out[-1] == "nothing to resolve"


class TestPersistenceStatements:
    def test_save_and_load(self, tmp_path):
        path = str(tmp_path / "uni.json").replace("\\", "/")
        interp, out = run(
            self_full() + f'save "{path}"; delete teach(euclid, math); '
            f'load "{path}"; truth teach(euclid, math);'
        )
        assert out[-1] == "teach(euclid) = math: true"

    def test_add_after_load_continues_design(self, tmp_path):
        path = str(tmp_path / "uni.json").replace("\\", "/")
        interp, out = run(
            self_full()
            + f'save "{path}"; load "{path}"; '
            + "add taught_by: course -> faculty (many-many); design;"
        )
        joined = "\n".join(out)
        assert "taught_by" in joined and "cycle:" in joined


def self_full() -> str:
    return TestUpdatesAndQueries.FULL


class TestErrors:
    def test_parse_error_reported_not_raised(self):
        interp, out = run("insert f(a b);")
        assert out and out[0].startswith("error:")

    def test_runtime_error_reported(self):
        interp, out = run(DESIGN + "commit; insert nope(a, b);")
        assert out[-1].startswith("error: unknown function")

    def test_error_aborts_rest_of_script(self):
        interp, out = run(
            DESIGN + "commit; insert nope(a, b); insert teach(x, y);"
        )
        assert not any("INS(teach, <x, y>)" in line for line in out)

    def test_help(self):
        interp, out = run("help")
        assert any("insert f(x, y)" in line for line in out)


class TestWithPaperDesigner:
    def test_full_paper_design_via_language(self, trace_functions):
        script = "\n".join(
            f"add {f};" for f in trace_functions
        ).replace("; (", " (")
        interp = Interpreter(design_trace_designer())
        out = interp.execute(script + "\ndesign;")
        joined = "\n".join(out)
        assert "grade = score o cutoff" in joined
        assert "lecturer_of = class_list^-1 o teach^-1" in joined


class TestCheckpointRecover:
    def test_checkpoint_then_recover_roundtrip(self, tmp_path):
        interp, _ = run(DESIGN + "commit; insert teach(euclid, math);")
        out = interp.execute(
            f'checkpoint "{tmp_path}"; insert teach(gauss, cs);'
        )
        assert any("checkpoint" in line for line in out)
        assert interp.wal is not None
        assert len(interp.wal) == 1  # only the post-checkpoint update

        # A second interpreter — the "restarted process" — recovers
        # both facts from the directory the first one left behind.
        fresh = Interpreter(AutoDesigner())
        out2 = fresh.execute(
            f'recover "{tmp_path}";'
            "truth teach(euclid, math); truth teach(gauss, cs);"
        )
        joined = "\n".join(out2)
        assert "recovered: 1 log entries" in joined
        assert "teach(euclid) = math: true" in joined
        assert "teach(gauss) = cs: true" in joined
        assert fresh.wal is not None  # updates keep logging

    def test_undo_refreshes_checkpoint(self, tmp_path):
        interp, _ = run(DESIGN + "commit;")
        out = interp.execute(
            f'checkpoint "{tmp_path}";'
            "insert teach(gauss, cs); undo;"
        )
        assert any("checkpoint refreshed" in line for line in out)
        fresh = Interpreter(AutoDesigner())
        out2 = fresh.execute(
            f'recover "{tmp_path}"; truth teach(gauss, cs);'
        )
        joined = "\n".join(out2)
        assert "recovered: 0 log entries" in joined
        assert "teach(gauss) = cs: false" in joined

    def test_load_detaches_wal(self, tmp_path):
        interp, _ = run(DESIGN + "commit;")
        out = interp.execute(
            f'checkpoint "{tmp_path}";'
            f'save "{tmp_path / "plain.json"}";'
            f'load "{tmp_path / "plain.json"}";'
        )
        assert any("detached" in line for line in out)
        assert interp.wal is None

    def test_guard_undo_compensates_wal(self, tmp_path):
        interp, _ = run(DESIGN + "commit;")
        out = interp.execute(
            f'checkpoint "{tmp_path}";'
            "constraint card teach per domain max 1;"
            "guard on;"
            "insert teach(euclid, math);"
            "insert teach(euclid, cs);"  # violates; undone + aborted
        )
        assert any(line.startswith("error:") for line in out)
        assert len(interp.wal) == 1  # the violating entry is aborted
        fresh = Interpreter(AutoDesigner())
        out2 = fresh.execute(
            f'recover "{tmp_path}"; truth teach(euclid, cs);'
        )
        assert any("teach(euclid) = cs: false" in line
                   for line in out2)
