"""Tests for the surface-language parser."""

from __future__ import annotations

import pytest

from repro.core.types import TypeFunctionality, product_type
from repro.errors import ParseError
from repro.lang import ast
from repro.lang.parser import parse_program, parse_statement


class TestFuncDefs:
    def test_add_basic(self):
        statement = parse_statement("add teach: faculty -> course")
        assert isinstance(statement, ast.AddFunction)
        assert statement.function.name == "teach"
        assert statement.function.functionality == (
            TypeFunctionality.MANY_MANY
        )

    def test_add_with_functionality(self):
        statement = parse_statement(
            "add cutoff: marks -> letter_grade (many-one);"
        )
        assert statement.function.functionality == (
            TypeFunctionality.MANY_ONE
        )

    def test_add_with_product_domain(self):
        statement = parse_statement(
            "add grade: [student; course] -> letter_grade (many-one)"
        )
        assert statement.function.domain == product_type(
            "student", "course"
        )

    def test_bad_functionality(self):
        with pytest.raises(ParseError):
            parse_statement("add f: a -> b (some-one)")

    def test_missing_arrow(self):
        with pytest.raises(ParseError):
            parse_statement("add f: a b")


class TestUpdates:
    def test_insert(self):
        statement = parse_statement("insert teach(euclid, math)")
        assert statement == ast.Insert("teach", "euclid", "math")

    def test_delete(self):
        statement = parse_statement("delete pupil(euclid, john);")
        assert statement == ast.Delete("pupil", "euclid", "john")

    def test_replace(self):
        statement = parse_statement(
            "replace cutoff(90, A) with (85, A)"
        )
        assert statement == ast.Replace("cutoff", (90, "A"), (85, "A"))

    def test_replace_requires_with(self):
        with pytest.raises(ParseError):
            parse_statement("replace f(a, b) (c, d)")

    def test_tuple_values(self):
        statement = parse_statement("insert grade((john, math), B)")
        assert statement == ast.Insert("grade", ("john", "math"), "B")

    def test_nested_tuple_values(self):
        statement = parse_statement("insert f(((a, b), c), d)")
        assert statement.x == (("a", "b"), "c")

    def test_parenthesized_single_value_unwraps(self):
        statement = parse_statement("insert f((a), b)")
        assert statement.x == "a"

    def test_string_values(self):
        statement = parse_statement('insert f("hello world", b)')
        assert statement.x == "hello world"

    def test_number_values(self):
        statement = parse_statement("insert f(1, 2.5)")
        assert statement.x == 1 and statement.y == 2.5


class TestQueries:
    def test_truth(self):
        statement = parse_statement("truth pupil(euclid, john)")
        assert statement == ast.TruthQuery("pupil", "euclid", "john")

    def test_image_query_simple(self):
        statement = parse_statement("query teach(euclid)")
        assert isinstance(statement, ast.ImageQuery)
        assert str(statement.query) == "teach"
        assert statement.x == "euclid"

    def test_image_query_composition(self):
        statement = parse_statement(
            "query (teach o class_list)(euclid)"
        )
        assert str(statement.query) == "teach o class_list"

    def test_image_query_inverse(self):
        statement = parse_statement("query teach^-1(math)")
        assert str(statement.query) == "(teach)^-1"

    def test_pairs_query(self):
        statement = parse_statement(
            "pairs class_list^-1 o teach^-1"
        )
        assert isinstance(statement, ast.PairsQuery)
        assert str(statement.query) == "(class_list)^-1 o (teach)^-1"

    def test_double_inverse(self):
        statement = parse_statement("pairs teach^-1^-1")
        assert str(statement.query) == "((teach)^-1)^-1"

    def test_grouping(self):
        statement = parse_statement("pairs (teach o class_list)^-1")
        assert str(statement.query) == "(teach o class_list)^-1"


class TestMisc:
    def test_show(self):
        assert parse_statement("show teach") == ast.Show("teach")
        assert parse_statement("show all") == ast.Show(None)

    def test_nullaries(self):
        assert isinstance(parse_statement("commit"), ast.Commit)
        assert isinstance(parse_statement("design"), ast.ShowDesign)
        assert isinstance(parse_statement("ncs"), ast.ShowNCs)
        assert isinstance(parse_statement("metrics"), ast.Metrics)
        assert isinstance(parse_statement("resolve"), ast.Resolve)
        assert isinstance(parse_statement("help"), ast.Help)

    def test_save_load(self):
        assert parse_statement('save "db.json"') == ast.Save("db.json")
        assert parse_statement("load 'db.json'") == ast.Load("db.json")

    def test_save_requires_string(self):
        with pytest.raises(ParseError):
            parse_statement("save db.json")

    def test_checkpoint_recover(self):
        assert parse_statement('checkpoint "dir"') == (
            ast.Checkpoint("dir")
        )
        assert parse_statement('recover "dir"') == (
            ast.Recover("dir", "strict")
        )
        assert parse_statement('recover "dir" salvage') == (
            ast.Recover("dir", "salvage")
        )
        with pytest.raises(ParseError):
            parse_statement("recover dir")

    def test_unknown_statement(self):
        with pytest.raises(ParseError):
            parse_statement("frobnicate x")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_statement("commit commit")


class TestProgram:
    def test_multiple_statements(self):
        program = parse_program("""
            add teach: faculty -> course;
            insert teach(euclid, math)
            show all
        """)
        assert [type(s).__name__ for s in program] == [
            "AddFunction", "Insert", "Show",
        ]

    def test_semicolons_optional_and_stackable(self):
        program = parse_program(";;commit;;;ncs;;")
        assert len(program) == 2

    def test_empty_program(self):
        assert parse_program("   \n # nothing\n") == []

    def test_error_position_reported(self):
        with pytest.raises(ParseError) as info:
            parse_program("commit\ninsert f(a b)")
        assert "line 2" in str(info.value)
