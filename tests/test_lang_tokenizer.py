"""Tests for the surface-language tokenizer."""

from __future__ import annotations

import pytest

from repro.errors import ParseError
from repro.lang.tokenizer import tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)]


def texts(text):
    return [t.text for t in tokenize(text)[:-1]]  # drop EOF


class TestBasics:
    def test_empty(self):
        tokens = tokenize("")
        assert len(tokens) == 1 and tokens[0].kind == "EOF"

    def test_names_and_punct(self):
        assert texts("teach: faculty -> course") == [
            "teach", ":", "faculty", "->", "course",
        ]

    def test_inverse_marker(self):
        assert texts("teach^-1") == ["teach", "^-1"]

    def test_arrow_vs_minus(self):
        assert texts("a -> b - c") == ["a", "->", "b", "-", "c"]

    def test_numbers(self):
        tokens = tokenize("42 3.5")
        assert tokens[0].kind == "NUMBER" and tokens[0].value == 42
        assert tokens[1].kind == "NUMBER" and tokens[1].value == 3.5

    def test_product_brackets(self):
        assert texts("[student; course]") == [
            "[", "student", ";", "course", "]",
        ]

    def test_whitespace_and_newlines_skipped(self):
        assert texts("a\n\t b") == ["a", "b"]

    def test_comments(self):
        assert texts("a # comment\nb") == ["a", "b"]

    def test_underscore_names(self):
        assert texts("class_list attn_percentage") == [
            "class_list", "attn_percentage",
        ]


class TestStrings:
    def test_double_quoted(self):
        token = tokenize('"hello world"')[0]
        assert token.kind == "STRING" and token.value == "hello world"

    def test_single_quoted(self):
        assert tokenize("'db.json'")[0].value == "db.json"

    def test_escapes(self):
        assert tokenize(r'"a\"b\n"')[0].value == 'a"b\n'

    def test_unterminated(self):
        with pytest.raises(ParseError):
            tokenize('"oops')

    def test_unterminated_at_newline(self):
        with pytest.raises(ParseError):
            tokenize('"oops\nmore"')


class TestPositions:
    def test_line_and_column(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_error_position(self):
        with pytest.raises(ParseError) as info:
            tokenize("abc\n  @")
        assert info.value.line == 2 and info.value.column == 3


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize("a & b")
