"""Tests for the three-valued logic."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fdb.logic import Truth

T, A, F = Truth.TRUE, Truth.AMBIGUOUS, Truth.FALSE
truth_strategy = st.sampled_from([T, A, F])


class TestOrdering:
    def test_strength_order(self):
        assert F < A < T
        assert T > A > F
        assert T >= T and F <= F

    def test_max_picks_strongest(self):
        assert max([F, A, T]) is T
        assert max([F, A]) is A


class TestKleeneTables:
    @pytest.mark.parametrize("a,b,expected", [
        (T, T, T), (T, A, A), (T, F, F),
        (A, T, A), (A, A, A), (A, F, F),
        (F, T, F), (F, A, F), (F, F, F),
    ])
    def test_and(self, a, b, expected):
        assert a.and_(b) is expected

    @pytest.mark.parametrize("a,b,expected", [
        (T, T, T), (T, A, T), (T, F, T),
        (A, T, T), (A, A, A), (A, F, A),
        (F, T, T), (F, A, A), (F, F, F),
    ])
    def test_or(self, a, b, expected):
        assert a.or_(b) is expected

    def test_not(self):
        assert T.not_() is F
        assert F.not_() is T
        assert A.not_() is A

    @given(truth_strategy, truth_strategy)
    def test_de_morgan(self, a, b):
        assert a.and_(b).not_() == a.not_().or_(b.not_())

    @given(truth_strategy)
    def test_double_negation(self, a):
        assert a.not_().not_() is a

    @given(truth_strategy, truth_strategy, truth_strategy)
    def test_and_associative(self, a, b, c):
        assert a.and_(b).and_(c) == a.and_(b.and_(c))


class TestAggregates:
    def test_all_of(self):
        assert Truth.all_of([T, T]) is T
        assert Truth.all_of([T, A]) is A
        assert Truth.all_of([A, F, T]) is F
        assert Truth.all_of([]) is T

    def test_any_of(self):
        assert Truth.any_of([F, A]) is A
        assert Truth.any_of([F, T]) is T
        assert Truth.any_of([]) is F

    def test_all_of_short_circuits(self):
        def generator():
            yield F
            raise AssertionError("should have short-circuited")

        assert Truth.all_of(generator()) is F

    def test_any_of_short_circuits(self):
        def generator():
            yield T
            raise AssertionError("should have short-circuited")

        assert Truth.any_of(generator()) is T


class TestFlags:
    def test_flags(self):
        assert T.flag == "T"
        assert A.flag == "A"

    def test_false_has_no_flag(self):
        with pytest.raises(ValueError):
            _ = F.flag

    def test_from_flag(self):
        assert Truth.from_flag("T") is T
        assert Truth.from_flag("a") is A

    def test_from_flag_rejects(self):
        with pytest.raises(ValueError):
            Truth.from_flag("X")

    def test_str(self):
        assert str(T) == "true"
        assert str(A) == "ambiguous"
