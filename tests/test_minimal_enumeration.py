"""Tests for all-minimal-schemas enumeration and design retraction."""

from __future__ import annotations

import pytest

from repro.core.design_aid import AutoDesigner, DesignSession
from repro.core.graph import FunctionGraph
from repro.core.minimal_schema import all_minimal_schemas, minimal_schema_ams
from repro.core.schema import FunctionDef, Schema
from repro.core.types import ObjectType, TypeFunctionality
from repro.errors import DesignError, UnknownFunctionError

A, B, C = (ObjectType(n) for n in "ABC")
MM = TypeFunctionality.MANY_MANY


class TestAllMinimalSchemas:
    def test_table1_has_exactly_two(self, s1):
        schemas = all_minimal_schemas(s1)
        kept = {frozenset(schema.names) for schema in schemas}
        assert kept == {
            frozenset({"score", "cutoff", "teach"}),
            frozenset({"score", "cutoff", "taught_by"}),
        }

    def test_ams_result_is_among_them(self, s1):
        schemas = all_minimal_schemas(s1)
        ams_kept = frozenset(minimal_schema_ams(s1).minimal.names)
        assert ams_kept in {frozenset(s.names) for s in schemas}

    def test_each_result_is_minimal(self, s1):
        for minimal in all_minimal_schemas(s1):
            graph = FunctionGraph.of_schema(minimal)
            for function in minimal:
                assert not graph.has_equivalent_walk(function)
            # And it carries the full schema.
            full_graph = FunctionGraph.of_schema(minimal)
            for function in s1:
                if function.name not in minimal:
                    assert full_graph.has_equivalent_walk(function)

    def test_irredundant_schema_is_its_own_unique_minimal(self):
        schema = Schema([
            FunctionDef("f", A, B, MM), FunctionDef("g", B, C,
                                                    TypeFunctionality.MANY_ONE),
        ])
        schemas = all_minimal_schemas(schema)
        assert len(schemas) == 1
        assert schemas[0] == schema

    def test_s2_has_three(self, s2):
        """Every pair of S2's three mutually-derivable functions is a
        minimal schema — the formal face of the UFA ambiguity."""
        schemas = all_minimal_schemas(s2)
        assert len(schemas) == 3
        assert all(len(schema) == 2 for schema in schemas)

    def test_limit_enforced(self):
        # n parallel identical functions: minimal schemas = each single
        # one -> n results; limit below that raises.
        schema = Schema([
            FunctionDef(f"p{i}", A, B, MM) for i in range(6)
        ])
        with pytest.raises(ValueError):
            all_minimal_schemas(schema, limit=3)
        assert len(all_minimal_schemas(schema, limit=10)) == 6

    def test_empty_schema(self):
        schemas = all_minimal_schemas(Schema())
        assert len(schemas) == 1
        assert len(schemas[0]) == 0


class TestRetract:
    def test_retract_base_function(self):
        session = DesignSession(AutoDesigner())
        session.add(FunctionDef("f", A, B, MM))
        retracted = session.retract("f")
        assert retracted.name == "f"
        assert "f" not in session.catalog
        assert "f" not in session.graph

    def test_retract_derived_function(self):
        session = DesignSession(AutoDesigner())
        session.add(FunctionDef("teach", A, B, MM))
        session.add(FunctionDef("taught_by", B, A, MM))  # -> derived
        session.retract("taught_by")
        assert "taught_by" not in session.catalog
        assert session.base_schema.names == ("teach",)

    def test_retract_unknown(self):
        session = DesignSession(AutoDesigner())
        with pytest.raises(UnknownFunctionError):
            session.retract("nope")

    def test_retract_clears_kept_cycles(self):
        from repro.core.design_aid import CallbackDesigner

        keeper = CallbackDesigner(lambda report: None)
        session = DesignSession(keeper)
        session.add(FunctionDef("f", A, B, MM))
        session.add(FunctionDef("g", A, B, MM))  # cycle kept
        session.retract("g")
        # Re-adding g re-raises the equivalent cycle.
        reports = session.add(FunctionDef("g", A, B, MM))
        assert len(reports) == 1

    def test_retract_logged(self):
        session = DesignSession(AutoDesigner())
        session.add(FunctionDef("f", A, B, MM))
        session.retract("f")
        assert "retracted f from the design" in session.trace()


class TestLanguageStatements:
    def _interp(self):
        from repro.lang.interp import Interpreter

        return Interpreter(AutoDesigner())

    def test_minimal_statement(self):
        interp = self._interp()
        out = interp.execute("""
            add grade: [student; course] -> letter_grade (many-one);
            add score: [student; course] -> marks (many-one);
            add cutoff: marks -> letter_grade (many-one);
            add teach: faculty -> course (many-many);
            add taught_by: course -> faculty (many-many);
            minimal;
        """)
        joined = "\n".join(out)
        assert "2 minimal schema(s)" in joined
        assert "advisory only" in joined

    def test_minimal_on_empty_catalog(self):
        interp = self._interp()
        assert interp.execute("minimal;") == ["(no functions added yet)"]

    def test_retract_statement(self):
        interp = self._interp()
        out = interp.execute("""
            add teach: faculty -> course (many-many);
            retract teach;
            design;
        """)
        joined = "\n".join(out)
        assert "retracted teach" in joined
        # The design is empty again.
        assert "Base functions:" in joined
        assert "teach" not in joined.split("retracted teach")[1]
