"""Tests for the Minimal Schema Problem and Algorithm AMS (Section 2.1)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.graph import FunctionGraph
from repro.core.minimal_schema import (
    minimal_schema,
    minimal_schema_ams,
    minimal_schema_without_ufa,
)
from repro.core.schema import FunctionDef, Schema
from repro.core.types import ObjectType, TypeFunctionality
from repro.workloads.generator import tree_schema_with_derived

A, B, C = (ObjectType(n) for n in "ABC")
MM = TypeFunctionality.MANY_MANY
MO = TypeFunctionality.MANY_ONE


class TestS1(object):
    """Table 1 under the UFA: grade and teach are derivable."""

    def test_separation(self, s1):
        result = minimal_schema_ams(s1)
        assert set(result.derived_names) == {"grade", "teach"}
        assert set(result.base_names) == {"score", "cutoff", "taught_by"}

    def test_grade_derivation(self, s1):
        result = minimal_schema_ams(s1)
        texts = [str(d) for d in result.derivations["grade"]]
        assert texts == ["score o cutoff"]

    def test_teach_derivation(self, s1):
        result = minimal_schema_ams(s1)
        texts = [str(d) for d in result.derivations["teach"]]
        assert texts == ["taught_by^-1"]

    def test_order_determines_tie_breaks(self, s1):
        # Reversing declaration order keeps teach instead of taught_by.
        reordered = Schema(reversed(list(s1)))
        result = minimal_schema_ams(reordered)
        assert "taught_by" in result.derived_names
        assert "teach" in result.base_names

    def test_summary_mentions_everything(self, s1):
        text = minimal_schema_ams(s1).summary()
        assert "Base functions:" in text
        assert "grade = score o cutoff" in text


class TestLemma1:
    def test_without_ufa_everything_is_base(self, s1):
        result = minimal_schema_without_ufa(s1)
        assert result.minimal == s1
        assert len(result.derived) == 0
        assert result.derivations == {}

    def test_dispatcher(self, s1):
        assert minimal_schema(s1, ufa=False).minimal == s1
        assert set(minimal_schema(s1, ufa=True).derived_names) == {
            "grade", "teach"
        }


class TestS2UFAFailure(object):
    """Section 2.1: S2 cannot be admitted under the UFA — AMS removes a
    function even though, under the intended semantics, two of the three
    removals would be wrong. This *documents* the misclassification that
    motivates the on-line methodology."""

    def test_ams_removes_exactly_one(self, s2):
        result = minimal_schema_ams(s2)
        assert len(result.derived) == 1
        assert len(result.minimal) == 2

    def test_ams_removes_first_eligible(self, s2):
        # Declaration order: teach, class_list, lecturer_of. Each is
        # equivalent to the composition of the other two, so AMS removes
        # the first it examines.
        result = minimal_schema_ams(s2)
        assert result.derived_names == ("teach",)


class TestIdempotenceAndMinimality:
    def test_ams_on_minimal_removes_nothing(self, s1):
        first = minimal_schema_ams(s1)
        second = minimal_schema_ams(first.minimal)
        assert second.minimal == first.minimal
        assert len(second.derived) == 0

    def test_every_derived_function_has_a_derivation(self, s1):
        result = minimal_schema_ams(s1)
        for name in result.derived_names:
            assert result.derivations[name], name

    def _assert_is_minimal_schema(self, schema: Schema) -> None:
        result = minimal_schema_ams(schema)
        minimal_graph = FunctionGraph.of_schema(result.minimal)
        # (1) Every removed function is derivable from the kept ones.
        for function in result.derived:
            assert minimal_graph.has_equivalent_walk(function), function
        # (2) No kept function is derivable from the other kept ones.
        for function in result.minimal:
            assert not minimal_graph.has_equivalent_walk(function), function

    def test_minimality_on_s1(self, s1):
        self._assert_is_minimal_schema(s1)

    def test_minimality_on_s2(self, s2):
        self._assert_is_minimal_schema(s2)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=2 ** 30))
    def test_minimality_on_random_schemas(self, seed):
        """AMS output is a minimal schema on random graphs (Lemma 2's
        two halves, checked operationally)."""
        import random

        rng = random.Random(seed)
        nodes = [ObjectType(f"N{i}") for i in range(rng.randint(2, 6))]
        functions = []
        for i in range(rng.randint(1, 8)):
            dom, rng_t = rng.choice(nodes), rng.choice(nodes)
            functions.append(FunctionDef(
                f"e{i}", dom, rng_t, rng.choice(TypeFunctionality.all())
            ))
        self._assert_is_minimal_schema(Schema(functions))


class TestGeneratedFamilies:
    @pytest.mark.parametrize("n_types,n_derived,seed", [
        (10, 3, 0), (20, 6, 1), (40, 10, 2),
    ])
    def test_tree_schema_recovery_derived_first(self, n_types, n_derived,
                                                seed):
        """With the chord (derived) functions declared *first*, AMS
        removes exactly them: each chord has its tree path as witness,
        and once the chords are gone every tree edge is a bridge."""
        schema = tree_schema_with_derived(n_types, n_derived, seed)
        chords = [f for f in schema if f.name.startswith("d")]
        tree = [f for f in schema if f.name.startswith("f")]
        result = minimal_schema_ams(Schema(chords + tree))
        assert set(result.derived_names) == {
            f"d{i}" for i in range(n_derived)
        }

    @pytest.mark.parametrize("n_types,n_derived,seed", [
        (10, 3, 0), (20, 6, 1),
    ])
    def test_tree_schema_any_order_is_minimal(self, n_types, n_derived,
                                              seed):
        """With tree edges declared first AMS may legally trade a tree
        edge for a chord (minimal schemas are not unique); the outcome
        must still be a minimal schema."""
        schema = tree_schema_with_derived(n_types, n_derived, seed)
        result = minimal_schema_ams(schema)
        minimal_graph = FunctionGraph.of_schema(result.minimal)
        for function in result.derived:
            assert minimal_graph.has_equivalent_walk(function)
        for function in result.minimal:
            assert not minimal_graph.has_equivalent_walk(function)

    def test_empty_schema(self):
        result = minimal_schema_ams(Schema())
        assert len(result.minimal) == 0
        assert len(result.derived) == 0

    def test_single_function(self):
        schema = Schema([FunctionDef("f", A, B, MM)])
        result = minimal_schema_ams(schema)
        assert result.base_names == ("f",)

    def test_parallel_identical_functions(self):
        schema = Schema([
            FunctionDef("f1", A, B, MM), FunctionDef("f2", A, B, MM),
        ])
        result = minimal_schema_ams(schema)
        assert result.derived_names == ("f1",)
        assert [str(d) for d in result.derivations["f1"]] == ["f2"]
