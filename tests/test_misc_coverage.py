"""Edge-case tests for corners the mainline suites pass by."""

from __future__ import annotations

import pytest

from repro.core.design_aid import CallbackDesigner, DesignSession
from repro.core.graph import FunctionGraph, Path
from repro.core.minimal_schema import minimal_schema_without_ufa
from repro.core.schema import FunctionDef, Schema
from repro.core.types import ObjectType, TypeFunctionality
from repro.fdb.ambiguity import measure
from repro.fdb.database import FunctionalDatabase
from repro.fdb.render import render_base_table

A, B = ObjectType("A"), ObjectType("B")
MM = TypeFunctionality.MANY_MANY


class TestPathEdgeCases:
    def test_empty_path_reversed(self):
        path = Path(A)
        back = path.reversed()
        assert back.start == back.end == A
        assert len(back) == 0

    def test_empty_path_str(self):
        assert "empty path" in str(Path(A))

    def test_path_repr(self):
        assert "Path(" in repr(Path(A))


class TestGraphEdgeCases:
    def test_degree_of_absent_node(self):
        graph = FunctionGraph()
        assert graph.degree(A) == 0

    def test_edges_at_absent_node(self):
        assert FunctionGraph().edges_at(A) == ()

    def test_str(self):
        graph = FunctionGraph([FunctionDef("f", A, B, MM)])
        text = str(graph)
        assert "1 nodes" in text or "2 nodes" in text
        assert "f(A -- B)" in text

    def test_max_length_zero_paths(self):
        graph = FunctionGraph([FunctionDef("f", A, B, MM)])
        assert list(graph.iter_paths(A, B, max_length=0)) == []


class TestDesignerDefaults:
    def test_callback_designer_confirms_by_default(self):
        designer = CallbackDesigner(lambda report: None)
        session = DesignSession(designer)
        session.add(FunctionDef("f", A, B, MM))
        session.add(FunctionDef("g", A, B, MM))  # kept cycle
        # Confirmation path: potential derivations of nothing -- use a
        # function directly.
        function = FunctionDef("h", A, B, MM)
        from repro.core.derivation import Derivation

        assert designer.confirm_derivation(
            function, Derivation.of(function)
        )


class TestMinimalSchemaEdges:
    def test_lemma1_result_repr(self, s1):
        result = minimal_schema_without_ufa(s1)
        text = result.summary()
        assert "Derived functions:" in text
        assert result.base_names == s1.names


class TestRenderEdges:
    def test_empty_base_table(self):
        db = FunctionalDatabase()
        db.declare_base(FunctionDef("f", A, B, MM))
        lines = render_base_table(db, "f")
        assert lines == ["F"]


class TestAmbiguityEdges:
    def test_measure_empty_database(self):
        report = measure(FunctionalDatabase())
        assert report.degree == 0.0
        assert report.total_facts == 0
        assert "0 NCs" in str(report)


class TestSchemaEdges:
    def test_str_of_empty_schema(self):
        assert str(Schema()) == ""

    def test_repr(self):
        schema = Schema([FunctionDef("f", A, B, MM)])
        assert "Schema(" in repr(schema)


class TestDatabaseEdges:
    def test_tables_iterator_snapshot(self):
        db = FunctionalDatabase()
        db.declare_base(FunctionDef("f", A, B, MM))
        tables = db.tables()
        db.declare_base(FunctionDef("g", B, A, MM))
        # Iterator was snapshotted at call time.
        assert [t.name for t in tables] == ["f"]

    def test_extension_of_base(self, pupil_db):
        from repro.fdb.logic import Truth

        extension = pupil_db.extension("teach")
        assert extension[("euclid", "math")] is Truth.TRUE
