"""Tests for negated conjunctions and the NC/NCL dual structure."""

from __future__ import annotations

import pytest

from repro.errors import UpdateError
from repro.fdb.facts import Fact, FactRef
from repro.fdb.logic import Truth
from repro.fdb.nc import NCRegistry, NegatedConjunction
from repro.fdb.table import FunctionTable
from repro.fdb.values import NullValue


@pytest.fixture
def store():
    """Two tables plus a registry resolving through them."""
    tables = {
        "teach": FunctionTable("teach"),
        "class_list": FunctionTable("class_list"),
    }
    registry = NCRegistry(lambda name: tables[name])
    teach_fact = tables["teach"].add_pair("euclid", "math")
    class_fact = tables["class_list"].add_pair("math", "john")
    return tables, registry, teach_fact, class_fact


class TestCreate:
    def test_create_sets_flags_and_ncl(self, store):
        tables, registry, teach_fact, class_fact = store
        nc = registry.create([("teach", teach_fact),
                              ("class_list", class_fact)])
        assert nc.index == 1
        assert teach_fact.truth is Truth.AMBIGUOUS
        assert class_fact.truth is Truth.AMBIGUOUS
        assert teach_fact.ncl == {1}
        assert class_fact.ncl == {1}
        assert nc.members == (
            FactRef("teach", "euclid", "math"),
            FactRef("class_list", "math", "john"),
        )

    def test_indices_unique(self, store):
        tables, registry, teach_fact, class_fact = store
        first = registry.create([("teach", teach_fact)])
        second = registry.create([("class_list", class_fact)])
        assert first.index != second.index
        assert teach_fact.ncl == {first.index}

    def test_empty_rejected(self, store):
        _, registry, _, _ = store
        with pytest.raises(UpdateError):
            registry.create([])

    def test_str(self, store):
        tables, registry, teach_fact, class_fact = store
        nc = registry.create([("teach", teach_fact)])
        assert str(nc) == "g1: NOT(<teach, euclid, math>)"

    def test_fact_in_multiple_ncs(self, store):
        tables, registry, teach_fact, class_fact = store
        a = registry.create([("teach", teach_fact),
                             ("class_list", class_fact)])
        b = registry.create([("teach", teach_fact)])
        assert teach_fact.ncl == {a.index, b.index}


class TestDismantle:
    def test_dismantle_clears_ncl_keeps_ambiguity(self, store):
        """dismantle-NC: members stay ambiguous — exactly the paper's
        'math john A {}' state after u3."""
        tables, registry, teach_fact, class_fact = store
        nc = registry.create([("teach", teach_fact),
                              ("class_list", class_fact)])
        registry.dismantle(nc.index)
        assert nc.index not in registry
        assert teach_fact.ncl == set()
        assert teach_fact.truth is Truth.AMBIGUOUS
        assert class_fact.truth is Truth.AMBIGUOUS

    def test_dismantle_unknown(self, store):
        _, registry, _, _ = store
        with pytest.raises(UpdateError):
            registry.dismantle(99)

    def test_dismantle_tolerates_removed_member(self, store):
        """base-delete removes the fact from its table before the NCs
        are fully dismantled; dismantle must not explode."""
        tables, registry, teach_fact, class_fact = store
        nc = registry.create([("teach", teach_fact),
                              ("class_list", class_fact)])
        tables["teach"].discard("euclid", "math")
        registry.dismantle(nc.index)
        assert class_fact.ncl == set()

    def test_only_named_index_removed_from_ncl(self, store):
        tables, registry, teach_fact, _ = store
        a = registry.create([("teach", teach_fact)])
        b = registry.create([("teach", teach_fact)])
        registry.dismantle(a.index)
        assert teach_fact.ncl == {b.index}


class TestQueries:
    def test_members_of(self, store):
        tables, registry, teach_fact, class_fact = store
        nc = registry.create([("teach", teach_fact),
                              ("class_list", class_fact)])
        assert registry.members_of(nc.index) == (teach_fact, class_fact)

    def test_members_of_dangling(self, store):
        tables, registry, teach_fact, _ = store
        nc = registry.create([("teach", teach_fact)])
        tables["teach"].discard("euclid", "math")
        with pytest.raises(UpdateError):
            registry.members_of(nc.index)

    def test_has_nc_with_members(self, store):
        tables, registry, teach_fact, class_fact = store
        registry.create([("teach", teach_fact),
                         ("class_list", class_fact)])
        refs = frozenset({
            FactRef("teach", "euclid", "math"),
            FactRef("class_list", "math", "john"),
        })
        assert registry.has_nc_with_members(refs)
        assert not registry.has_nc_with_members(
            frozenset({FactRef("teach", "euclid", "math")})
        )

    def test_subset_of_some_nc(self, store):
        tables, registry, teach_fact, class_fact = store
        nc = registry.create([("teach", teach_fact)])
        superset = frozenset({
            FactRef("teach", "euclid", "math"),
            FactRef("class_list", "math", "john"),
        })
        assert registry.subset_of_some_nc(superset, [nc.index])
        assert not registry.subset_of_some_nc(superset, [999])
        assert not registry.subset_of_some_nc(
            frozenset({FactRef("class_list", "math", "john")}), [nc.index]
        )

    def test_len_iter_contains(self, store):
        tables, registry, teach_fact, class_fact = store
        nc = registry.create([("teach", teach_fact)])
        assert len(registry) == 1
        assert nc.index in registry
        assert [n.index for n in registry] == [nc.index]
        assert registry.get(nc.index) is nc
        with pytest.raises(UpdateError):
            registry.get(42)

    def test_str(self, store):
        tables, registry, teach_fact, _ = store
        assert str(registry) == "(no negated conjunctions)"
        registry.create([("teach", teach_fact)])
        assert "g1" in str(registry)


class TestRewrite:
    def test_rewrite_value(self, store):
        tables, registry, teach_fact, class_fact = store
        n1 = NullValue(1)
        null_fact = tables["teach"].add_pair("gauss", n1)
        nc = registry.create([("teach", null_fact),
                              ("class_list", class_fact)])
        registry.rewrite_value(n1, "math")
        rewritten = registry.get(nc.index)
        assert rewritten.members == (
            FactRef("teach", "gauss", "math"),
            FactRef("class_list", "math", "john"),
        )

    def test_rewrite_deduplicates(self, store):
        tables, registry, teach_fact, _ = store
        n1 = NullValue(1)
        other = tables["teach"].add_pair("euclid", n1)
        nc = registry.create([("teach", teach_fact), ("teach", other)])
        registry.rewrite_value(n1, "math")
        assert registry.get(nc.index).members == (
            FactRef("teach", "euclid", "math"),
        )

    def test_rewrite_untouched_ncs_kept(self, store):
        tables, registry, teach_fact, class_fact = store
        nc = registry.create([("class_list", class_fact)])
        registry.rewrite_value(NullValue(9), "whatever")
        assert registry.get(nc.index).members == (
            FactRef("class_list", "math", "john"),
        )


class TestNegatedConjunctionValue:
    def test_member_set(self):
        nc = NegatedConjunction(1, (
            FactRef("f", "a", "b"), FactRef("g", "b", "c"),
        ))
        assert nc.member_set == frozenset({
            FactRef("f", "a", "b"), FactRef("g", "b", "c"),
        })
