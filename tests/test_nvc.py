"""Tests for null-valued chains (create/exists/clean-up)."""

from __future__ import annotations

import pytest

from repro.core.derivation import Derivation, Op, Step
from repro.core.schema import FunctionDef
from repro.core.types import ObjectType, TypeFunctionality
from repro.fdb.database import FunctionalDatabase
from repro.fdb.logic import Truth
from repro.fdb.nvc import clean_up_nvc, create_nvc, exists_nvc, interior_values
from repro.fdb.values import NullValue, is_null

A, B, C = (ObjectType(n) for n in "ABC")
MM = TypeFunctionality.MANY_MANY


@pytest.fixture
def chain_db() -> FunctionalDatabase:
    """f1: A->B, f2: B->C, derived v = f1 o f2."""
    db = FunctionalDatabase()
    f1 = FunctionDef("f1", A, B, MM)
    f2 = FunctionDef("f2", B, C, MM)
    db.declare_base(f1)
    db.declare_base(f2)
    db.declare_derived(FunctionDef("v", A, C, MM), Derivation.of(f1, f2))
    return db


class TestCreate:
    def test_creates_fresh_null_chain(self, chain_db):
        derivation = chain_db.derived("v").primary
        facts = create_nvc(chain_db, derivation, "a3", "c3")
        assert len(facts) == 2
        first, second = facts
        assert first.x == "a3" and is_null(first.y)
        assert is_null(second.x) and second.y == "c3"
        assert first.y == second.x  # same null links the chain
        assert first.truth is Truth.TRUE and second.truth is Truth.TRUE

    def test_nulls_unique_across_calls(self, chain_db):
        derivation = chain_db.derived("v").primary
        first = create_nvc(chain_db, derivation, "a1", "c1")
        second = create_nvc(chain_db, derivation, "a2", "c2")
        assert first[0].y != second[0].y

    def test_single_step_derivation_no_nulls(self):
        """taught_by = teach^-1: the 'NVC' is the single reoriented
        base fact."""
        db = FunctionalDatabase()
        teach = FunctionDef("teach", A, B, MM)
        db.declare_base(teach)
        db.declare_derived(
            FunctionDef("taught_by", B, A, MM),
            Derivation.of(Step(teach, Op.INVERSE)),
        )
        derivation = db.derived("taught_by").primary
        facts = create_nvc(db, derivation, "math", "euclid")
        assert len(facts) == 1
        # The inverted step stores the pair reoriented into teach.
        assert facts[0].pair == ("euclid", "math")
        assert db.table("teach").get("euclid", "math") is facts[0]

    def test_inverse_interior_orientation(self):
        """v = f^-1 o g: the first stored fact is reversed."""
        db = FunctionalDatabase()
        f = FunctionDef("f", B, A, MM)   # f: B->A, used inverted: A->B
        g = FunctionDef("g", B, C, MM)
        db.declare_base(f)
        db.declare_base(g)
        db.declare_derived(
            FunctionDef("v", A, C, MM),
            Derivation([Step(f, Op.INVERSE), Step(g)]),
        )
        facts = create_nvc(db, db.derived("v").primary, "a", "c")
        # f's table stores <null, a> because the step is inverted.
        assert is_null(facts[0].x) and facts[0].y == "a"
        assert facts[0] is db.table("f").get(facts[0].x, "a")
        assert facts[1].pair == (facts[0].x, "c")


class TestExists:
    def test_absent(self, chain_db):
        derivation = chain_db.derived("v").primary
        assert exists_nvc(chain_db, derivation, "a", "c") is None

    def test_found_after_create(self, chain_db):
        derivation = chain_db.derived("v").primary
        create_nvc(chain_db, derivation, "a3", "c3")
        chain = exists_nvc(chain_db, derivation, "a3", "c3")
        assert chain is not None
        assert chain.pair == ("a3", "c3")
        assert all(is_null(v) for v in interior_values(chain))

    def test_requires_null_interior(self, chain_db):
        """A real (non-null) chain is not an NVC."""
        chain_db.load("f1", [("a", "b")])
        chain_db.load("f2", [("b", "c")])
        derivation = chain_db.derived("v").primary
        assert exists_nvc(chain_db, derivation, "a", "c") is None

    def test_requires_same_null_chain(self, chain_db):
        """<a, n1> and <n2, c> with n1 != n2 do not form an NVC."""
        n1, n2 = chain_db.nulls.fresh(), chain_db.nulls.fresh()
        chain_db.table("f1").add_pair("a", n1)
        chain_db.table("f2").add_pair(n2, "c")
        derivation = chain_db.derived("v").primary
        assert exists_nvc(chain_db, derivation, "a", "c") is None

    def test_single_step(self):
        db = FunctionalDatabase()
        f = FunctionDef("f", A, B, MM)
        db.declare_base(f)
        db.declare_derived(FunctionDef("v", A, B, MM), Derivation.of(f))
        db.load("f", [("a", "b")])
        chain = exists_nvc(db, db.derived("v").primary, "a", "b")
        assert chain is not None
        assert chain.pair == ("a", "b")


class TestCleanUp:
    def test_truthifies_ambiguous_nvc(self, chain_db):
        derivation = chain_db.derived("v").primary
        facts = create_nvc(chain_db, derivation, "a3", "c3")
        # Make the NVC ambiguous through an NC.
        chain_db.ncs.create([("f1", facts[0]), ("f2", facts[1])])
        assert facts[0].truth is Truth.AMBIGUOUS
        chain = exists_nvc(chain_db, derivation, "a3", "c3")
        clean_up_nvc(chain_db, chain)
        assert facts[0].truth is Truth.TRUE
        assert facts[1].truth is Truth.TRUE
        assert len(chain_db.ncs) == 0  # base-insert dismantled the NC


class TestInteriorValues:
    def test_interior_of_three_step_chain(self):
        db = FunctionalDatabase()
        f1 = FunctionDef("f1", A, B, MM)
        f2 = FunctionDef("f2", B, C, MM)
        f3 = FunctionDef("f3", C, ObjectType("D"), MM)
        for f in (f1, f2, f3):
            db.declare_base(f)
        db.declare_derived(
            FunctionDef("v", A, ObjectType("D"), MM),
            Derivation.of(f1, f2, f3),
        )
        facts = create_nvc(db, db.derived("v").primary, "a", "d")
        chain = exists_nvc(db, db.derived("v").primary, "a", "d")
        values = interior_values(chain)
        assert len(values) == 2
        assert all(isinstance(v, NullValue) for v in values)
