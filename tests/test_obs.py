"""The observability subsystem: metrics, tracing, profiling, hooks.

Covers the instrument math, span-tree construction, the zero-overhead
disabled path (state equivalence with instrumentation on vs off), and
the ``stats()`` / export surfaces.
"""

from __future__ import annotations

import json

import pytest

from repro.fdb.persistence import dumps
from repro.fdb.updates import Update, apply_update
from repro.fdb.values import NullValue, format_value
from repro.fdb.wal import LoggedDatabase
from repro.obs import (
    OBS,
    Counter,
    Gauge,
    Histogram,
    Instrumentation,
    MetricError,
    MetricsRegistry,
    Profiler,
    Tracer,
    render_metrics,
    render_profile,
    render_stats,
    to_json,
)
from repro.workloads.university import pupil_database, section_42_updates


def _scrub():
    OBS.disable()
    OBS.reset()
    OBS.metrics.clear()  # reset() keeps registrations; drop them too


@pytest.fixture(autouse=True)
def clean_obs():
    """Every test leaves the process-wide context disabled and empty."""
    _scrub()
    yield
    _scrub()


# -- metric primitives --------------------------------------------------------


class TestCounter:
    def test_counts(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert counter.snapshot() == 5

    def test_rejects_negative(self):
        with pytest.raises(MetricError):
            Counter("c").inc(-1)

    def test_reset(self):
        counter = Counter("c")
        counter.inc(3)
        counter.reset()
        assert counter.value == 0


class TestGauge:
    def test_moves_both_ways(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7


class TestHistogram:
    def test_exact_aggregates(self):
        h = Histogram("h")
        for value in (3.0, 1.0, 2.0):
            h.observe(value)
        assert h.count == 3
        assert h.total == 6.0
        assert h.mean == 2.0
        assert h.min == 1.0
        assert h.max == 3.0

    def test_nearest_rank_percentiles(self):
        h = Histogram("h")
        for value in range(1, 101):
            h.observe(float(value))
        assert h.percentile(0) == 1.0
        assert h.percentile(50) == 51.0  # nearest rank on 0..99
        assert h.percentile(100) == 100.0

    def test_empty_percentile_is_zero(self):
        assert Histogram("h").percentile(95) == 0.0

    def test_percentile_range_checked(self):
        with pytest.raises(MetricError):
            Histogram("h").percentile(101)

    def test_sample_buffer_bounded_but_aggregates_exact(self):
        h = Histogram("h", sample_limit=10)
        for value in range(100):
            h.observe(float(value))
        assert h.count == 100
        assert h.max == 99.0
        assert len(h._samples) == 10

    def test_snapshot_shape(self):
        h = Histogram("h")
        h.observe(2.0)
        snap = h.snapshot()
        assert snap == {
            "count": 1, "total": 2.0, "mean": 2.0, "min": 2.0,
            "max": 2.0, "p50": 2.0, "p95": 2.0,
        }


class TestMetricsRegistry:
    def test_lazy_creation_and_identity(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert len(registry) == 1
        assert "a" in registry

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(MetricError):
            registry.gauge("x")
        with pytest.raises(MetricError):
            registry.histogram("x")

    def test_reset_keeps_registrations(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(5)
        registry.reset()
        assert "a" in registry
        assert registry.counter("a").value == 0

    def test_snapshot_grouped_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(0.25)
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["a", "b"]
        assert snap["counters"]["a"] == 2
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1


# -- tracing --------------------------------------------------------------------


class TestTracer:
    def test_nesting_and_events(self):
        tracer = Tracer()
        root = tracer.start("update.delete", function="pupil")
        tracer.event("chains.matched", count=1)
        child = tracer.start("evaluate")
        tracer.event("chain.evaluated", verdict="true")
        tracer.finish(child)
        tracer.finish(root)
        assert tracer.last_trace is root
        assert root.children == [child]
        assert root.event_names() == ["chains.matched", "chain.evaluated"]
        assert [span.name for span in root.walk()] == [
            "update.delete", "evaluate",
        ]
        assert root.find("evaluate") == [child]

    def test_finish_requires_innermost(self):
        tracer = Tracer()
        outer = tracer.start("outer")
        tracer.start("inner")
        with pytest.raises(RuntimeError):
            tracer.finish(outer)

    def test_event_without_active_span_dropped(self):
        tracer = Tracer()
        tracer.event("orphan")  # must not raise
        assert tracer.traces == ()

    def test_bounded_retention(self):
        tracer = Tracer(max_traces=2)
        for index in range(4):
            tracer.finish(tracer.start(f"s{index}"))
        assert [span.name for span in tracer.traces] == ["s2", "s3"]

    def test_render_tree(self):
        tracer = Tracer()
        root = tracer.start("update.insert", function="pupil")
        tracer.event("nvc.created", facts=2)
        tracer.finish(root)
        text = root.render()
        lines = text.splitlines()
        assert lines[0].startswith("update.insert function=pupil [")
        assert lines[1].strip() == "+ nvc.created facts=2"

    def test_attrs_use_format_value(self):
        tracer = Tracer()
        root = tracer.start("update.insert", y=NullValue(3))
        tracer.finish(root)
        assert "y=n3" in root.render()
        assert root.to_dict()["attrs"]["y"] == "n3"


# -- hooks / the instrumentation context -------------------------------------------


class TestInstrumentation:
    def test_disabled_recording_is_noop(self):
        obs = Instrumentation()
        obs.inc("c")
        obs.observe("h", 1.0)
        obs.gauge("g", 2.0)
        obs.event("e")
        assert len(obs.metrics) == 0

    def test_disabled_span_is_shared_null_scope(self):
        obs = Instrumentation()
        scope = obs.span("update.insert")
        assert scope is obs.span("update.delete")
        with scope as entered:
            assert entered.span is None
        assert obs.profiler.entries() == []

    def test_enabled_span_feeds_profiler(self):
        obs = Instrumentation()
        obs.enable()
        with obs.span("update.insert", key="pupil"):
            pass
        entry = obs.profiler.entry("update.insert", "pupil")
        assert entry is not None and entry.calls == 1
        assert obs.tracer.traces == ()  # no tracing without the flag

    def test_tracing_builds_span_tree_with_events(self):
        obs = Instrumentation()
        obs.enable(tracing=True)
        with obs.span("update.delete", key="pupil", function="pupil"):
            obs.event("nc.created", index="g1")
        trace = obs.tracer.last_trace
        assert trace is not None
        assert trace.event_names() == ["nc.created"]

    def test_collecting_restores_flags_and_resets(self):
        obs = Instrumentation()
        obs.enable()
        obs.inc("before")
        with obs.collecting(tracing=True):
            assert obs.enabled and obs.tracing
            # fresh=True zeroed the pre-existing counter on entry.
            assert obs.metrics.counter("before").value == 0
            obs.inc("inside")
        assert obs.enabled and not obs.tracing
        assert obs.metrics.counter("inside").value == 1

    def test_snapshot_shape(self):
        obs = Instrumentation()
        obs.enable()
        obs.inc("c")
        snap = obs.snapshot()
        assert snap["observability"] == {"enabled": True,
                                         "tracing": False}
        assert snap["metrics"]["counters"] == {"c": 1}
        assert snap["profile"] == []


# -- the instrumented runtime ---------------------------------------------------------


def run_section_42(db):
    for update in section_42_updates():
        apply_update(db, update)
    return db


class TestRuntimeEquivalence:
    def test_disabled_and_enabled_runs_reach_identical_state(self):
        plain = run_section_42(pupil_database())
        OBS.enable(tracing=True)
        instrumented = run_section_42(pupil_database())
        OBS.disable()
        assert dumps(plain) == dumps(instrumented)

    def test_disabled_run_records_nothing(self):
        run_section_42(pupil_database())
        assert len(OBS.metrics) == 0
        assert OBS.tracer.traces == ()
        assert OBS.profiler.entries() == []


class TestRuntimeCounters:
    def test_derived_delete_trace_shows_ncs_and_chains(self):
        db = pupil_database()
        OBS.enable(tracing=True)
        db.delete("pupil", "euclid", "john")
        trace = OBS.tracer.last_trace
        assert trace is not None
        assert trace.name == "update.delete"
        names = trace.event_names()
        assert "chain.evaluated" in names
        assert "nc.created" in names
        counters = OBS.metrics.snapshot()["counters"]
        assert counters["fdb.nc.created"] == 1
        assert counters["fdb.chains.enumerated"] >= 1

    def test_stats_counts_updates_chains_and_wal(self, tmp_path):
        db = pupil_database()
        logged = LoggedDatabase(db, tmp_path / "updates.log")
        OBS.enable()
        for update in section_42_updates():
            logged.execute(update)
        stats = db.stats()
        counters = stats["metrics"]["counters"]
        assert counters["fdb.updates.insert"] > 0
        assert counters["fdb.updates.delete"] > 0
        assert counters["fdb.chains.enumerated"] > 0
        assert counters["fdb.wal.appends"] == 5
        assert stats["instance"]["stored_facts"] > 0
        assert stats["observability"]["enabled"] is True

    def test_query_spans_profile_by_expression(self):
        from repro.fdb.query import fn

        db = pupil_database()
        OBS.enable()
        expression = fn("teach") * fn("class_list")
        expression.pairs(db)
        counters = OBS.metrics.snapshot()["counters"]
        assert counters["fdb.query.pairs"] == 1
        entry = OBS.profiler.entry("query.pairs", str(expression))
        assert entry is not None and entry.calls == 1


# -- rendering / export -----------------------------------------------------------


class TestRendering:
    def test_format_value_nulls_and_tuples(self):
        assert format_value(NullValue(1)) == "n1"
        assert format_value(("john", NullValue(2))) == "(john, n2)"
        assert format_value("plain") == "plain"

    def test_update_str_renders_nulls_in_tuples(self):
        update = Update.ins("score", ("john", NullValue(1)), 91)
        assert str(update) == "INS(score, <(john, n1), 91>)"
        assert "NullValue" not in str(update)

    def test_render_metrics_empty(self):
        assert render_metrics({}) == "(no metrics recorded)"

    def test_render_profile_rows(self):
        profiler = Profiler()
        profiler.record("update.delete", "pupil", 0.001)
        text = render_profile(profiler.snapshot())
        assert "update.delete" in text and "pupil" in text

    def test_render_stats_full_payload(self):
        db = pupil_database()
        OBS.enable()
        db.insert("teach", "gauss", "algebra")
        text = render_stats(db.stats())
        assert "observability: enabled" in text
        assert "fdb.updates.insert" in text

    def test_to_json_round_trips(self):
        OBS.enable()
        OBS.inc("c")
        data = json.loads(to_json(OBS.snapshot()))
        assert data["metrics"]["counters"]["c"] == 1


class TestReplicationRendering:
    """The WAL + replication sections of stats and the monitor
    dashboard."""

    def test_render_stats_wal_and_replication_sections(self):
        from repro.obs import render_stats as _render_stats

        stats = {
            "instance": {"stored_facts": 4, "ambiguous_facts": 0,
                         "ncs": 1, "next_null_index": 3},
            "observability": {"enabled": True},
            "metrics": {},
            "wal": {"last_seq": 7, "term": 2, "entries": 6,
                    "aborted": 1, "tail_torn": True,
                    "checksum_failures": 0},
            "acked": 5,
            "replication": {
                "role": "primary", "node": "n1", "term": 2,
                "mode": "quorum", "servable": False,
                "replicas": {"r0": {"acked_seq": 6, "lag_seq": 1,
                                    "lag_seconds": 0.5, "errors": 2,
                                    "last_error": "partitioned"}},
            },
        }
        text = _render_stats(stats)
        assert "wal: applied seq 7 (term 2)" in text
        assert "TAIL TORN" in text
        assert "replication: primary n1, term 2, mode quorum" in text
        assert "5 acked commits" in text
        assert "STALENESS UNSERVABLE" in text
        assert "r0: acked seq 6, lag 1 seqs" in text
        assert "(last: partitioned)" in text

    def test_render_replication_without_replicas(self):
        from repro.obs import render_replication

        text = render_replication({
            "role": "primary", "node": "primary", "term": 1,
            "mode": "async", "servable": True, "replicas": {},
        })
        assert "(no replicas linked)" in text

    def test_render_monitor_replication_block(self):
        from repro.obs import render_monitor as _render_monitor

        OBS.enable()
        OBS.gauge("fdb.wal.last_seq", 9)
        OBS.gauge("fdb.wal.tail_torn", 0)
        OBS.gauge("replication.term", 3)
        OBS.gauge("replication.lag.seq.r0", 2)
        OBS.gauge("replication.lag.seconds.r0", 0.25)
        OBS.inc("replication.records_shipped", 9)
        OBS.inc("replication.records_applied", 7)
        OBS.inc("replication.ack_timeouts", 1)
        text = _render_monitor(OBS.metrics.snapshot())
        assert "wal: applied seq 9, tail clean" in text
        assert "replication: term 3, 9 shipped / 7 applied" in text
        assert "1 ack timeouts" in text
        assert "lag r0: 2 seqs / 0.25s" in text
