"""Concurrency smoke tests for the instrumentation context.

The registries promise exact aggregates under concurrent writers and
per-thread span nesting (contextvar stacks). These tests hammer the
primitives from many threads and assert the totals are exact — lost
updates, not crashes, are the realistic failure mode of unlocked
``+=`` sections.
"""

from __future__ import annotations

import threading

import pytest

from repro.obs import OBS, MetricsRegistry, RingBufferSink, Tracer

THREADS = 8
ITERS = 300


def _scrub():
    OBS.disable()
    OBS.reset()
    OBS.metrics.clear()
    OBS.events.clear_sinks()


@pytest.fixture(autouse=True)
def clean_obs():
    _scrub()
    yield
    _scrub()


def _run_threads(work) -> None:
    threads = [
        threading.Thread(target=work, args=(index,))
        for index in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestMetricsUnderThreads:
    def test_counter_total_is_exact(self):
        registry = MetricsRegistry()

        def work(_index):
            for _ in range(ITERS):
                registry.counter("hits").inc()

        _run_threads(work)
        assert registry.counter("hits").value == THREADS * ITERS

    def test_histogram_count_is_exact(self):
        registry = MetricsRegistry()

        def work(index):
            for i in range(ITERS):
                registry.histogram("h").observe(float(index * i))

        _run_threads(work)
        assert registry.histogram("h").count == THREADS * ITERS

    def test_gauge_inc_dec_balances(self):
        registry = MetricsRegistry()

        def work(_index):
            for _ in range(ITERS):
                registry.gauge("g").inc()
                registry.gauge("g").dec()

        _run_threads(work)
        assert registry.gauge("g").value == 0

    def test_registry_creation_race_yields_one_instrument(self):
        registry = MetricsRegistry()
        instruments = []

        def work(_index):
            instruments.append(registry.counter("shared"))

        _run_threads(work)
        assert all(c is instruments[0] for c in instruments)


class TestTracerUnderThreads:
    def test_span_stacks_are_per_thread(self):
        """A span opened on one thread never becomes the parent of
        another thread's span."""
        tracer = Tracer()
        errors: list[str] = []

        def work(index):
            for i in range(ITERS // 10):
                outer = tracer.start(f"outer-{index}")
                inner = tracer.start(f"inner-{index}")
                if inner.parent_id != outer.span_id:
                    errors.append(
                        f"cross-thread parent: {inner.parent_id}"
                    )
                tracer.finish(inner)
                tracer.finish(outer)

        _run_threads(work)
        assert not errors
        assert len(tracer.traces) <= tracer.max_traces

    def test_span_ids_are_unique(self):
        tracer = Tracer()
        seen: list[int] = []
        lock = threading.Lock()

        def work(_index):
            local = []
            for _ in range(ITERS // 10):
                span = tracer.start("s")
                tracer.finish(span)
                local.append(span.span_id)
            with lock:
                seen.extend(local)

        _run_threads(work)
        assert len(seen) == len(set(seen))


class TestPipelineUnderThreads:
    def test_instrumented_spans_with_events(self):
        """The full span pipeline (ids, context stack, event emission)
        survives concurrent use: every span.start has a span.end and
        ids never collide."""
        sink = OBS.events.add_sink(RingBufferSink(capacity=100_000))
        OBS.enable()

        def work(index):
            for i in range(ITERS // 10):
                with OBS.span(f"update.t{index}", key=str(i),
                              cause=f"u{index}"):
                    OBS.inc("work.done")

        _run_threads(work)
        total = THREADS * (ITERS // 10)
        assert OBS.metrics.counter("work.done").value == total
        starts = [r for r in sink.records if r.kind == "span.start"]
        ends = [r for r in sink.records if r.kind == "span.end"]
        assert len(starts) == len(ends) == total
        ids = [r.span_id for r in ends]
        assert len(ids) == len(set(ids))
        # Causes stay with their thread's spans.
        for record in ends:
            assert record.cause == record.name.replace("update.t", "u")
