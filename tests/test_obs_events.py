"""The structured event log: records, sinks, causal DAG round trips.

Covers the typed-record surface (serialization, ordering, causal
fields), the three sink implementations, the emission gates (enabled ×
sinks-attached × tracing), and the acceptance loop: a Section 4.2
update traced to JSONL, read back, folded into a propagation DAG and
rendered as DOT.
"""

from __future__ import annotations

import json

import pytest

from repro.fdb.updates import apply_update
from repro.obs import (
    OBS,
    CallbackSink,
    EventLog,
    EventRecord,
    FileSink,
    RingBufferSink,
    propagation_dag,
    read_jsonl,
    span_records,
)
from repro.workloads.university import pupil_database, section_42_updates


def _scrub():
    OBS.disable()
    OBS.reset()
    OBS.metrics.clear()
    OBS.events.clear_sinks()


@pytest.fixture(autouse=True)
def clean_obs():
    _scrub()
    yield
    _scrub()


# -- records ------------------------------------------------------------------


class TestEventRecord:
    def test_to_dict_omits_unset_fields(self):
        record = EventRecord(seq=1, ts=2.0, kind="event", name="x")
        assert record.to_dict() == {
            "seq": 1, "ts": 2.0, "kind": "event", "name": "x",
        }

    def test_round_trips_through_json(self):
        record = EventRecord(
            seq=7, ts=1.5, kind="span.end", name="update.delete",
            span_id=3, parent_span=1, cause="u2", duration=0.25,
            attrs={"function": "pupil"},
        )
        back = EventRecord.from_dict(json.loads(record.to_json()))
        assert back == record

    def test_attrs_are_stringified(self):
        record = EventRecord(seq=1, ts=0.0, kind="event", name="x",
                             attrs={"n": 3})
        assert record.to_dict()["attrs"] == {"n": "3"}


# -- sinks --------------------------------------------------------------------


class TestSinks:
    def test_ring_buffer_keeps_newest(self):
        sink = RingBufferSink(capacity=2)
        for seq in range(1, 5):
            sink.emit(EventRecord(seq=seq, ts=0.0, kind="event",
                                  name=f"e{seq}"))
        assert [r.seq for r in sink.records] == [3, 4]
        assert len(sink) == 2
        sink.clear()
        assert len(sink) == 0

    def test_file_sink_appends_jsonl(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = FileSink(path)
        sink.emit(EventRecord(seq=1, ts=0.0, kind="event", name="a"))
        sink.emit(EventRecord(seq=2, ts=0.0, kind="event", name="b"))
        sink.close()
        records = read_jsonl(path)
        assert [r.name for r in records] == ["a", "b"]

    def test_callback_sink(self):
        seen: list[EventRecord] = []
        sink = CallbackSink(seen.append)
        sink.emit(EventRecord(seq=1, ts=0.0, kind="action", name="x"))
        assert seen[0].kind == "action"


class TestEventLog:
    def test_inactive_without_sinks(self):
        log = EventLog()
        assert not log.active
        assert log.emit("event", "x") is None

    def test_add_remove_sink_toggles_active(self):
        log = EventLog()
        sink = log.add_sink(RingBufferSink())
        assert log.active
        log.remove_sink(sink)
        assert not log.active

    def test_fans_out_to_all_sinks(self):
        log = EventLog()
        a, b = RingBufferSink(), RingBufferSink()
        log.add_sink(a)
        log.add_sink(b)
        log.emit("event", "x")
        assert len(a) == len(b) == 1

    def test_seq_is_monotone(self):
        log = EventLog()
        sink = log.add_sink(RingBufferSink())
        log.emit("event", "a")
        log.emit("event", "b")
        seqs = [r.seq for r in sink.records]
        assert seqs == sorted(seqs) and len(set(seqs)) == 2


# -- emission gates -----------------------------------------------------------


class TestEmissionGates:
    def test_no_records_while_disabled(self):
        sink = OBS.events.add_sink(RingBufferSink())
        db = pupil_database()
        apply_update(db, section_42_updates()[0])
        assert len(sink) == 0

    def test_records_flow_without_tracing(self):
        """Events are decoupled from span-tree construction."""
        sink = OBS.events.add_sink(RingBufferSink())
        with OBS.collecting():  # tracing stays off
            db = pupil_database()
            apply_update(db, section_42_updates()[0])
        assert OBS.tracer.last_trace is None
        kinds = {r.kind for r in sink.records}
        assert "span.start" in kinds and "span.end" in kinds

    def test_span_ids_nest_and_share_a_cause(self):
        sink = OBS.events.add_sink(RingBufferSink())
        with OBS.collecting():
            db = pupil_database()
            apply_update(db, section_42_updates()[0])
        ends = [r for r in sink.records if r.kind == "span.end"]
        roots = [r for r in ends if r.parent_span is None]
        children = [r for r in ends if r.parent_span is not None]
        assert roots and all(r.cause == "u1" for r in ends)
        span_ids = {r.span_id for r in ends}
        for child in children:
            assert child.parent_span in span_ids

    def test_action_records_stand_alone(self):
        sink = OBS.events.add_sink(RingBufferSink())
        OBS.enable()
        OBS.action("recovery.start", policy="strict")
        (record,) = sink.records
        assert record.kind == "action"
        assert record.span_id is None
        assert record.attrs == {"policy": "strict"}


# -- DAG reconstruction -------------------------------------------------------


def _trace_u1(tmp_path):
    path = tmp_path / "trace.jsonl"
    sink = FileSink(path)
    db = pupil_database()
    with OBS.collecting(tracing=True):
        OBS.events.add_sink(sink)
        try:
            apply_update(db, section_42_updates()[0])
        finally:
            OBS.events.remove_sink(sink)
    return read_jsonl(path)


class TestPropagationDag:
    def test_section_42_round_trip(self, tmp_path):
        """The acceptance loop: events -> JSONL -> DAG -> DOT."""
        records = _trace_u1(tmp_path)
        dag = propagation_dag(records)
        assert dag.nodes and dag.edges
        # The cause node is a root and reaches the root span.
        cause_nodes = [n for n in dag.nodes if n.kind == "cause"]
        assert [n.label for n in cause_nodes] == ["u1"]
        root_ids = {n.node_id for n in dag.roots()}
        assert cause_nodes[0].node_id in root_ids
        dot = dag.to_dot(name="u1")
        assert dot.startswith('digraph "u1"')
        for node in dag.nodes:
            assert f'"{node.node_id}"' in dot

    def test_same_trace_same_dag(self, tmp_path):
        records = _trace_u1(tmp_path)
        once = propagation_dag(records)
        twice = propagation_dag(records)
        assert [n.node_id for n in once.nodes] == \
            [n.node_id for n in twice.nodes]
        assert once.edges == twice.edges

    def test_truncated_stream_prunes_dangling_edges(self, tmp_path):
        records = _trace_u1(tmp_path)
        # Drop the tail (the root span.end among it) as a torn file
        # would; the DAG must still be well-formed.
        truncated = records[:max(1, len(records) // 2)]
        dag = propagation_dag(truncated)
        known = dag.node_ids
        for src, dst, _ in dag.edges:
            assert src in known and dst in known

    def test_span_records_matches_live_trace(self):
        with OBS.collecting(tracing=True):
            db = pupil_database()
            apply_update(db, section_42_updates()[0])
            last = OBS.tracer.last_trace
        records = span_records(last)
        dag = propagation_dag(records)
        span_nodes = [n for n in dag.nodes if n.kind == "span"]
        assert len(span_nodes) == sum(1 for _ in last.walk())


# -- the replication audit timeline -------------------------------------------


def _action(order, name, **attrs):
    return EventRecord(seq=order, ts=float(order), kind="action",
                       name=name, attrs=attrs)


class TestReplicationTimeline:
    def test_folds_only_the_lifecycle_vocabulary(self):
        from repro.obs import replication_timeline

        records = [
            _action(1, "replication.primary_attached", term=1,
                    node="primary"),
            _action(2, "recovery.start"),  # not replication: dropped
            _action(3, "replication.commit_acked", seq=1, term=1,
                    acks=2),
            EventRecord(seq=4, ts=4.0, kind="span.end",
                        name="replication.ship", span_id=9),
        ]
        timeline = replication_timeline(records)
        assert [e.kind for e in timeline] == ["attach", "commit"]
        commit = timeline.of_kind("commit")[0]
        assert commit.term == 1 and commit.commit_seq == 1

    def test_attrs_survive_jsonl_stringification(self, tmp_path):
        # A FileSink round trip stringifies attr values; the fold must
        # still type seq/term as integers.
        from repro.obs import replication_timeline

        sink = FileSink(tmp_path / "events.jsonl")
        OBS.events.add_sink(sink)
        OBS.enable()
        OBS.action("replication.commit_acked", seq=7, term=2, acks=1)
        OBS.disable()
        OBS.events.remove_sink(sink)
        sink.close()
        timeline = replication_timeline(
            read_jsonl(tmp_path / "events.jsonl"))
        entry = timeline.of_kind("commit")[0]
        assert entry.commit_seq == 7 and entry.term == 2

    def test_fence_violations_detects_reordering(self):
        from repro.obs import replication_timeline

        clean = replication_timeline([
            _action(1, "replication.commit_acked", seq=1, term=1),
            _action(2, "replication.fence", old_term=1, new_term=2,
                    fence_seq=1, chosen="r0"),
            _action(3, "replication.commit_acked", seq=2, term=2),
        ])
        assert clean.fence_violations() == []
        # An acked old-term commit at/below the fence appearing after
        # the fence record is a reordering the audit must flag.
        dirty = replication_timeline([
            _action(1, "replication.fence", old_term=1, new_term=2,
                    fence_seq=5, chosen="r0"),
            _action(2, "replication.commit_acked", seq=3, term=1),
        ])
        assert dirty.fence_violations()

    def test_new_term_commit_before_fence_is_flagged(self):
        from repro.obs import replication_timeline

        dirty = replication_timeline([
            _action(1, "replication.commit_acked", seq=9, term=2),
            _action(2, "replication.fence", old_term=1, new_term=2,
                    fence_seq=5, chosen="r0"),
        ])
        assert dirty.fence_violations()

    def test_to_jsonl_round_trips(self):
        from repro.obs import replication_timeline

        timeline = replication_timeline([
            _action(1, "replication.promote", chosen="r0",
                    applied_seq=4, old_term=1, new_term=2),
            _action(2, "replication.rejoin", replica="old",
                    old_term=1, fence_seq=4, records_dropped=1,
                    rebootstrapped=False),
        ])
        lines = timeline.to_jsonl().splitlines()
        decoded = [json.loads(line) for line in lines]
        assert [d["kind"] for d in decoded] == ["promote", "rejoin"]
        assert decoded[1]["fence_seq"] == 4

    def test_render_timeline_collapses_commit_runs(self):
        from repro.obs import replication_timeline
        from repro.obs.export import render_timeline

        entries = [
            _action(i, "replication.commit_acked", seq=i, term=1)
            for i in range(1, 8)
        ]
        timeline = replication_timeline(entries)
        text = render_timeline(timeline)
        assert "7 commits (seq 1..7, term 1)" in text
        assert "ORDER VIOLATED" not in text
