"""Tests for off-line design verification (reference [13])."""

from __future__ import annotations

import pytest

from repro.core.derivation import Derivation, Op, Step
from repro.core.offline import verify_offline_design
from repro.errors import SchemaError


class TestAcceptedDesigns:
    def test_paper_partition_of_s1(self, s1):
        report = verify_offline_design(
            s1, ["score", "cutoff", "taught_by"]
        )
        assert report.ok
        assert set(report.derived.names) == {"grade", "teach"}
        grade = [str(d) for d in report.candidate_derivations["grade"]]
        assert grade == ["score o cutoff"]
        teach = [str(d) for d in report.candidate_derivations["teach"]]
        assert teach == ["taught_by^-1"]

    def test_claimed_derivations_verified(self, s1):
        claimed = {
            "grade": Derivation.of(s1["score"], s1["cutoff"]),
            "teach": Derivation([Step(s1["taught_by"], Op.INVERSE)]),
        }
        report = verify_offline_design(
            s1, ["score", "cutoff", "taught_by"], claimed
        )
        assert report.ok

    def test_everything_base_is_fine_but_warns(self, s1):
        report = verify_offline_design(s1, list(s1.names))
        assert report.ok
        # grade, teach (and their counterparts) are derivable from the
        # other base functions: redundancy warnings.
        assert report.warnings
        assert any("grade" in w for w in report.warnings)


class TestRejectedDesigns:
    def test_underivable_derived_function(self, s1):
        # Declare cutoff derived: nothing derives marks -> letter_grade
        # from the remaining base functions once grade is also derived.
        report = verify_offline_design(s1, ["score", "taught_by"])
        assert not report.ok
        assert any("cutoff" in p for p in report.problems)

    def test_claimed_derivation_with_nonbase_step(self, s1):
        claimed = {
            "grade": Derivation.of(s1["score"], s1["cutoff"]),
        }
        # cutoff is NOT base in this partition.
        report = verify_offline_design(
            s1, ["score", "taught_by"], claimed
        )
        assert not report.ok
        assert any("non-base" in p for p in report.problems)

    def test_claimed_derivation_wrong_functionality(self, s1):
        # taught_by^-1 has teach's syntax but claim it for grade.
        bad = Derivation([Step(s1["taught_by"], Op.INVERSE)])
        report = verify_offline_design(
            s1, ["score", "cutoff", "taught_by"], {"grade": bad}
        )
        assert not report.ok

    def test_claim_for_base_function(self, s1):
        claimed = {"score": Derivation.of(s1["score"])}
        report = verify_offline_design(
            s1, ["score", "cutoff", "taught_by"], claimed
        )
        assert not report.ok
        assert any("declared base" in p for p in report.problems)

    def test_claim_for_unknown_function(self, s1):
        claimed = {"nothing": Derivation.of(s1["score"])}
        report = verify_offline_design(
            s1, ["score", "cutoff", "taught_by"], claimed
        )
        assert not report.ok

    def test_unknown_base_name(self, s1):
        with pytest.raises(SchemaError):
            verify_offline_design(s1, ["score", "zzz"])


class TestReportText:
    def test_summary_ok(self, s1):
        text = verify_offline_design(
            s1, ["score", "cutoff", "taught_by"]
        ).summary()
        assert text.startswith("off-line design check: OK")
        assert "grade = score o cutoff" in text

    def test_summary_rejected(self, s1):
        text = verify_offline_design(s1, ["score", "taught_by"]).summary()
        assert "REJECTED" in text
        assert "problem:" in text


class TestInflexibility:
    def test_s2_offline_needs_exact_knowledge(self, s2):
        """The paper's point about off-line approaches: on S2 the right
        partition verifies, but so does the wrong one — the off-line
        check cannot tell them apart without the designer."""
        right = verify_offline_design(s2, ["teach", "class_list"])
        wrong = verify_offline_design(s2, ["teach", "lecturer_of"])
        assert right.ok
        assert wrong.ok  # formally consistent, semantically wrong
