"""Tests for JSON snapshots."""

from __future__ import annotations

import json

import pytest

from repro.errors import PersistenceError
from repro.fdb import persistence
from repro.fdb.evaluate import derived_extension
from repro.fdb.logic import Truth
from repro.fdb.values import NullValue


def assert_same_state(a, b) -> None:
    assert a.base_names == b.base_names
    assert a.derived_names == b.derived_names
    for name in a.base_names:
        assert a.table(name).rows() == b.table(name).rows()
    assert a.nulls.next_index == b.nulls.next_index
    assert len(a.ncs) == len(b.ncs)
    for nc in a.ncs:
        assert b.ncs.get(nc.index).members == nc.members


class TestRoundTrip:
    def test_clean_instance(self, pupil_db):
        clone = persistence.loads(persistence.dumps(pupil_db))
        assert_same_state(pupil_db, clone)
        assert derived_extension(clone, "pupil") == (
            derived_extension(pupil_db, "pupil")
        )

    def test_with_partial_information(self, pupil_db, u_sequence):
        from repro.fdb.updates import apply_update

        for update in u_sequence[:2]:  # NC + NVC present
            apply_update(pupil_db, update)
        clone = persistence.loads(persistence.dumps(pupil_db))
        assert_same_state(pupil_db, clone)
        # Partial information survives: same truth valuations.
        assert clone.truth_of("pupil", "euclid", "bill") is Truth.AMBIGUOUS
        assert clone.truth_of("pupil", "gauss", "bill") is Truth.TRUE
        # And fresh nulls continue after the stored counter.
        assert clone.nulls.fresh() == NullValue(pupil_db.nulls.next_index)

    def test_updates_still_work_after_reload(self, pupil_db):
        pupil_db.delete("pupil", "euclid", "john")
        clone = persistence.loads(persistence.dumps(pupil_db))
        clone.insert("teach", "euclid", "math")  # dismantles the NC
        assert len(clone.ncs) == 0

    def test_tuple_values(self):
        """Objects of product types (tuples) survive the round trip as
        tuples, not lists."""
        from repro.core.schema import FunctionDef
        from repro.core.types import ObjectType, TypeFunctionality
        from repro.core.types import product_type
        from repro.fdb.database import FunctionalDatabase

        db = FunctionalDatabase()
        db.declare_base(FunctionDef(
            "score", product_type("student", "course"),
            ObjectType("marks"), TypeFunctionality.MANY_ONE,
        ))
        db.load("score", [(("john", "math"), 91)])
        clone = persistence.loads(persistence.dumps(db))
        assert clone.table("score").get(("john", "math"), 91) is not None

    def test_insert_mode_preserved(self):
        from repro.workloads.university import pupil_database

        db = pupil_database(insert_mode="primary")
        clone = persistence.loads(persistence.dumps(db))
        assert clone.insert_mode == "primary"

    def test_file_roundtrip(self, pupil_db, tmp_path):
        path = tmp_path / "db.json"
        persistence.save(pupil_db, path)
        clone = persistence.load(path)
        assert_same_state(pupil_db, clone)


class TestValidation:
    def test_not_a_snapshot(self):
        with pytest.raises(PersistenceError):
            persistence.from_dict({"format": "something-else"})

    def test_bad_version(self, pupil_db):
        data = persistence.to_dict(pupil_db)
        data["version"] = 999
        with pytest.raises(PersistenceError):
            persistence.from_dict(data)

    def test_invalid_json(self):
        with pytest.raises(PersistenceError):
            persistence.loads("{not json")

    def test_missing_file(self, tmp_path):
        with pytest.raises(PersistenceError):
            persistence.load(tmp_path / "absent.json")

    def test_unpersistable_value(self, pupil_db):
        pupil_db.table("teach").add_pair("x", frozenset({1}))
        with pytest.raises(PersistenceError):
            persistence.dumps(pupil_db)

    def test_consistency_check_dangling_nc(self, pupil_db):
        pupil_db.delete("pupil", "euclid", "john")
        data = persistence.to_dict(pupil_db)
        data["base"][0]["facts"] = data["base"][0]["facts"][1:]  # drop row
        with pytest.raises(PersistenceError):
            persistence.from_dict(data)

    def test_consistency_check_flag_mismatch(self, pupil_db):
        pupil_db.delete("pupil", "euclid", "john")
        data = persistence.to_dict(pupil_db)
        data["base"][0]["facts"][0]["flag"] = "T"  # NC member must be A
        with pytest.raises(PersistenceError):
            persistence.from_dict(data)

    def test_consistency_check_dead_ncl_pointer(self, pupil_db):
        data = persistence.to_dict(pupil_db)
        data["base"][0]["facts"][0]["ncl"] = [42]
        with pytest.raises(PersistenceError):
            persistence.from_dict(data)

    def test_snapshot_is_plain_json(self, pupil_db):
        text = persistence.dumps(pupil_db)
        parsed = json.loads(text)
        assert parsed["format"] == "repro-fdb-snapshot"
        assert parsed["version"] == 1
