"""Tests for the query facility (composition/inverse expressions)."""

from __future__ import annotations

import pytest

from repro.core.derivation import Derivation
from repro.core.schema import FunctionDef
from repro.core.types import ObjectType, TypeFunctionality
from repro.errors import SchemaError
from repro.fdb.database import FunctionalDatabase
from repro.fdb.logic import Truth
from repro.fdb.query import fn

A, B, C = (ObjectType(n) for n in "ABC")
MM = TypeFunctionality.MANY_MANY
T, AMB, F = Truth.TRUE, Truth.AMBIGUOUS, Truth.FALSE


class TestCombinators:
    def test_str_forms(self):
        assert str(fn("teach")) == "teach"
        assert str(~fn("teach")) == "(teach)^-1"
        assert str(fn("teach") * fn("class_list")) == "teach o class_list"
        assert str(fn("a").o(fn("b"))) == "a o b"
        assert str((~fn("a")).inverse()) == "((a)^-1)^-1"

    def test_composition_requires_query(self):
        with pytest.raises(TypeError):
            _ = fn("teach") * 42


class TestNormalization:
    def test_base_function(self, pupil_db):
        derivations = fn("teach").derivations(pupil_db)
        assert [str(d) for d in derivations] == ["teach"]

    def test_derived_expands_to_its_derivations(self, pupil_db):
        derivations = fn("pupil").derivations(pupil_db)
        assert [str(d) for d in derivations] == ["teach o class_list"]

    def test_inverse_distributes(self, pupil_db):
        derivations = (~fn("pupil")).derivations(pupil_db)
        assert [str(d) for d in derivations] == ["class_list^-1 o teach^-1"]

    def test_composition_type_checks(self, pupil_db):
        with pytest.raises(SchemaError):
            (fn("teach") * fn("teach")).derivations(pupil_db)

    def test_unknown_function(self, pupil_db):
        with pytest.raises(Exception):
            fn("nope").derivations(pupil_db)

    def test_multiple_derivations_multiply(self):
        db = FunctionalDatabase()
        f = FunctionDef("f", A, B, MM)
        g = FunctionDef("g", A, B, MM)
        h = FunctionDef("h", B, C, MM)
        for x in (f, g, h):
            db.declare_base(x)
        db.declare_derived(
            FunctionDef("v", A, B, MM), [Derivation.of(f), Derivation.of(g)]
        )
        derivations = (fn("v") * fn("h")).derivations(db)
        assert {str(d) for d in derivations} == {"f o h", "g o h"}

    def test_expansion_limit(self):
        db = FunctionalDatabase()
        functions = []
        for i in range(4):
            function = FunctionDef(f"f{i}", A, A, MM)
            db.declare_base(function)
            functions.append(function)
        db.declare_derived(
            FunctionDef("v", A, A, MM),
            [Derivation.of(f) for f in functions],
        )
        query = fn("v")
        for _ in range(3):
            query = query * fn("v")   # 4^4 = 256 expansions
        with pytest.raises(SchemaError):
            query.derivations(db)


class TestEvaluation:
    def test_pairs_of_base(self, pupil_db):
        pairs = fn("teach").pairs(pupil_db)
        assert pairs == {
            ("euclid", "math"): T, ("laplace", "math"): T,
        }

    def test_pairs_of_derived_equals_extension(self, pupil_db):
        from repro.fdb.evaluate import derived_extension

        assert fn("pupil").pairs(pupil_db) == (
            derived_extension(pupil_db, "pupil")
        )

    def test_adhoc_composition(self, pupil_db):
        pairs = (fn("teach") * fn("class_list")).pairs(pupil_db)
        assert set(pairs) == {
            ("euclid", "john"), ("euclid", "bill"),
            ("laplace", "john"), ("laplace", "bill"),
        }

    def test_image_and_preimage(self, pupil_db):
        assert fn("teach").image(pupil_db, "euclid") == {"math": T}
        assert fn("teach").preimage(pupil_db, "math") == {
            "euclid": T, "laplace": T,
        }
        assert (~fn("teach")).image(pupil_db, "math") == {
            "euclid": T, "laplace": T,
        }

    def test_truth(self, pupil_db):
        query = fn("teach") * fn("class_list")
        assert query.truth(pupil_db, "euclid", "john") is T
        assert query.truth(pupil_db, "gauss", "john") is F

    def test_query_respects_ncs(self, pupil_db):
        """An ad-hoc composition sees the same partial information as
        the registered derived function."""
        pupil_db.delete("pupil", "euclid", "john")
        query = fn("teach") * fn("class_list")
        assert query.truth(pupil_db, "euclid", "john") is F
        assert query.truth(pupil_db, "euclid", "bill") is AMB
        assert query.truth(pupil_db, "laplace", "bill") is T

    def test_query_sees_nvcs(self, pupil_db):
        pupil_db.insert("pupil", "gauss", "bill")
        query = fn("teach") * fn("class_list")
        assert query.truth(pupil_db, "gauss", "bill") is T
        assert query.truth(pupil_db, "gauss", "john") is AMB

    def test_double_inverse_is_original(self, pupil_db):
        assert (~~fn("teach")).pairs(pupil_db) == fn("teach").pairs(pupil_db)

    def test_inverse_of_composition(self, pupil_db):
        forward = (fn("teach") * fn("class_list")).pairs(pupil_db)
        backward = (~(fn("teach") * fn("class_list"))).pairs(pupil_db)
        assert {(y, x) for (x, y) in forward} == set(backward)
