"""Tests for the relational substrate (relations, algebra, chain views)."""

from __future__ import annotations

import pytest

from repro.errors import SchemaError, UpdateError
from repro.relational.algebra import join_all, natural_join, project, select
from repro.relational.relation import Relation, RelationalDatabase
from repro.relational.view import ChainView


class TestRelation:
    def test_add_and_contains(self):
        r = Relation("r", ("A", "B"))
        r.add(("a", "b"))
        assert ("a", "b") in r
        assert len(r) == 1

    def test_arity_checked(self):
        r = Relation("r", ("A", "B"))
        with pytest.raises(UpdateError):
            r.add(("a",))

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            Relation("r", ("A", "A"))

    def test_needs_attributes(self):
        with pytest.raises(SchemaError):
            Relation("r", ())

    def test_discard(self):
        r = Relation("r", ("A",), [("a",)])
        assert r.discard(("a",))
        assert not r.discard(("a",))

    def test_set_semantics(self):
        r = Relation("r", ("A",), [("a",), ("a",)])
        assert len(r) == 1

    def test_column_and_position(self):
        r = Relation("r", ("A", "B"), [("a1", "b1"), ("a2", "b2")])
        assert r.column("B") == ("b1", "b2")
        assert r.position("A") == 0
        with pytest.raises(SchemaError):
            r.position("Z")

    def test_copy_independent(self):
        r = Relation("r", ("A",), [("a",)])
        clone = r.copy()
        clone.add(("b",))
        assert len(r) == 1

    def test_equality(self):
        a = Relation("r", ("A",), [("x",), ("y",)])
        b = Relation("r", ("A",), [("y",), ("x",)])
        assert a == b

    def test_str(self):
        r = Relation("r1", ("A", "B"), [("a1", "b1")])
        assert str(r) == "r1(A, B) = {<a1, b1>}"


class TestAlgebra:
    def test_select(self):
        r = Relation("r", ("A", "B"), [("a1", "b1"), ("a2", "b2")])
        out = select(r, lambda row: row["A"] == "a1")
        assert out.tuples == (("a1", "b1"),)

    def test_project(self):
        r = Relation("r", ("A", "B"), [("a1", "b1"), ("a2", "b1")])
        out = project(r, ["B"])
        assert set(out.tuples) == {("b1",)}

    def test_project_reorders(self):
        r = Relation("r", ("A", "B"), [("a", "b")])
        out = project(r, ["B", "A"])
        assert out.tuples == (("b", "a"),)

    def test_natural_join(self):
        r1 = Relation("r1", ("A", "B"), [("a1", "b1"), ("a2", "b2")])
        r2 = Relation("r2", ("B", "C"), [("b1", "c1"), ("b1", "c2")])
        joined = natural_join(r1, r2)
        assert joined.attributes == ("A", "B", "C")
        assert set(joined.tuples) == {
            ("a1", "b1", "c1"), ("a1", "b1", "c2"),
        }

    def test_join_no_shared_is_product(self):
        r1 = Relation("r1", ("A",), [("a",)])
        r2 = Relation("r2", ("B",), [("b1",), ("b2",)])
        assert len(natural_join(r1, r2)) == 2

    def test_join_all(self):
        r1 = Relation("r1", ("A", "B"), [("a", "b")])
        r2 = Relation("r2", ("B", "C"), [("b", "c")])
        r3 = Relation("r3", ("C", "D"), [("c", "d")])
        joined = join_all([r1, r2, r3])
        assert joined.tuples == (("a", "b", "c", "d"),)

    def test_join_all_empty_rejected(self):
        with pytest.raises(SchemaError):
            join_all([])


class TestRelationalDatabase:
    def test_lookup(self, relational_31):
        db, _, _ = relational_31
        assert db.relation("r1").attributes == ("A", "B")
        with pytest.raises(SchemaError):
            db.relation("zzz")

    def test_duplicate_names_rejected(self, relational_31):
        db, _, _ = relational_31
        with pytest.raises(SchemaError):
            db.add_relation(Relation("r1", ("X",)))
        with pytest.raises(SchemaError):
            db.add_view(ChainView("v1", ("r1",)))

    def test_view_requires_relations(self):
        db = RelationalDatabase()
        with pytest.raises(SchemaError):
            db.add_view(ChainView("v", ("missing",)))

    def test_copy_independent(self, relational_31):
        db, _, _ = relational_31
        clone = db.copy()
        clone.relation("r1").discard(("a1", "b1"))
        assert ("a1", "b1") in db.relation("r1")
        assert clone.view_names == ("v1",)


class TestChainView:
    def test_evaluate_section_31(self, relational_31):
        db, view_name, _ = relational_31
        extension = db.view(view_name).evaluate(db)
        assert extension.tuples == (("a1", "d1"),)
        assert extension.attributes == ("A", "D")

    def test_chains_for(self, relational_31):
        db, view_name, target = relational_31
        chains = list(db.view(view_name).chains_for(db, target))
        texts = {str(c) for c in chains}
        assert texts == {
            "r1<a1, b1> . r2<b1, c1> . r3<c1, d1>",
            "r1<a1, b2> . r2<b2, c1> . r3<c1, d1>",
        }

    def test_chains_for_absent_tuple(self, relational_31):
        db, view_name, _ = relational_31
        assert list(db.view(view_name).chains_for(db, ("zz", "d1"))) == []

    def test_single_relation_view(self):
        db = RelationalDatabase([
            Relation("r", ("A", "B"), [("a", "b")]),
        ])
        view = db.add_view(ChainView("v", ("r",)))
        assert view.evaluate(db).tuples == (("a", "b"),)
        assert len(list(view.chains_for(db, ("a", "b")))) == 1

    def test_adjacent_must_share_one_attribute(self):
        db = RelationalDatabase([
            Relation("r1", ("A", "B")),
            Relation("r2", ("C", "D")),
        ])
        view = db.add_view(ChainView("v", ("r1", "r2")))
        with pytest.raises(SchemaError):
            view.evaluate(db)

    def test_nonadjacent_shared_attribute_rejected(self):
        db = RelationalDatabase([
            Relation("r1", ("A", "B")),
            Relation("r2", ("B", "C")),
            Relation("r3", ("C", "A")),   # shares A with r1
        ])
        view = db.add_view(ChainView("v", ("r1", "r2", "r3")))
        with pytest.raises(SchemaError):
            view.evaluate(db)

    def test_needs_relations(self):
        with pytest.raises(SchemaError):
            ChainView("v", ())

    def test_str(self, relational_31):
        db, view_name, _ = relational_31
        assert str(db.view(view_name)) == "v1 = pi(r1 join r2 join r3)"
