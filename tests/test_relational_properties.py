"""Property tests for the relational algebra and chain views."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.algebra import join_all, natural_join, project
from repro.relational.relation import Relation, RelationalDatabase
from repro.relational.view import ChainView


def random_chain(seed: int, k: int, rows: int) -> list[Relation]:
    rng = random.Random(seed)
    relations = []
    for i in range(k):
        pairs = {
            (f"v{i}_{rng.randrange(4)}", f"v{i + 1}_{rng.randrange(4)}")
            for _ in range(rows)
        }
        relations.append(
            Relation(f"r{i}", (f"A{i}", f"A{i + 1}"), sorted(pairs))
        )
    return relations


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), rows=st.integers(0, 8))
def test_join_is_associative_on_chains(seed, rows):
    r1, r2, r3 = random_chain(seed, 3, rows)
    left = natural_join(natural_join(r1, r2), r3)
    right = natural_join(r1, natural_join(r2, r3))
    assert set(left.tuples) == set(right.tuples)
    assert left.attributes == right.attributes


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), rows=st.integers(0, 8))
def test_join_size_bounded_by_product(seed, rows):
    r1, r2 = random_chain(seed, 2, rows)
    joined = natural_join(r1, r2)
    assert len(joined) <= len(r1) * len(r2)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), rows=st.integers(0, 8))
def test_projection_idempotent(seed, rows):
    r1, _ = random_chain(seed, 2, rows)
    once = project(r1, ["A0"])
    twice = project(once, ["A0"])
    assert set(once.tuples) == set(twice.tuples)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), rows=st.integers(1, 8),
       k=st.integers(2, 4))
def test_view_tuples_have_chains_and_vice_versa(seed, rows, k):
    """A tuple is in the view iff chains_for finds a derivation chain
    for it — evaluation and chain enumeration agree."""
    relations = random_chain(seed, k, rows)
    db = RelationalDatabase(relations)
    view = db.add_view(
        ChainView("v", tuple(r.name for r in relations))
    )
    extension = set(view.evaluate(db).tuples)
    for row in extension:
        assert any(True for _ in view.chains_for(db, row))
    # And a non-member has no chains.
    probe = ("nope", "nothing")
    if probe not in extension:
        assert list(view.chains_for(db, probe)) == []


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), rows=st.integers(1, 8))
def test_view_equals_manual_join_project(seed, rows):
    relations = random_chain(seed, 3, rows)
    db = RelationalDatabase(relations)
    view = db.add_view(
        ChainView("v", tuple(r.name for r in relations))
    )
    manual = project(join_all(relations), ["A0", "A3"])
    assert set(view.evaluate(db).tuples) == set(manual.tuples)
