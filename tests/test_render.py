"""Tests for the paper-style state renderer."""

from __future__ import annotations

from repro.fdb.render import (
    render_base_table,
    render_derived_table,
    render_state,
)
from repro.fdb.updates import apply_update


class TestBaseTable:
    def test_title_and_rows(self, pupil_db):
        lines = render_base_table(pupil_db, "teach")
        assert lines[0] == "Teach"
        assert lines[1].split() == ["euclid", "math", "T", "{}"]

    def test_custom_title(self, pupil_db):
        lines = render_base_table(pupil_db, "teach", title="TEACHERS")
        assert lines[0] == "TEACHERS"

    def test_columns_aligned(self, pupil_db):
        lines = render_base_table(pupil_db, "teach")
        # 'euclid' and 'laplace' differ in width; the second column
        # must start at the same offset on both rows.
        assert lines[1].index("math") == lines[2].index("math")


class TestDerivedTable:
    def test_ambiguous_starred(self, pupil_db, u_sequence):
        apply_update(pupil_db, u_sequence[0])
        lines = render_derived_table(pupil_db, "pupil")
        starred = [l for l in lines[1:] if l.rstrip().endswith("*")]
        plain = [l for l in lines[1:] if not l.rstrip().endswith("*")]
        assert len(starred) == 2   # euclid bill, laplace john
        assert len(plain) == 1     # laplace bill

    def test_false_facts_absent(self, pupil_db, u_sequence):
        apply_update(pupil_db, u_sequence[0])
        lines = render_derived_table(pupil_db, "pupil")
        assert not any("euclid" in l and "john" in l for l in lines)


class TestState:
    def test_side_by_side_layout(self, pupil_db):
        text = render_state(pupil_db)
        lines = text.splitlines()
        assert "Teach" in lines[0]
        assert "Class_list" in lines[0]
        assert "Pupil" in lines[0]
        assert set(lines[1]) <= {"-", "|", " "}

    def test_selected_columns(self, pupil_db):
        text = render_state(pupil_db, ("teach",), ())
        assert "Class_list" not in text
        assert "Pupil" not in text

    def test_empty_database(self):
        from repro.fdb.database import FunctionalDatabase

        assert render_state(FunctionalDatabase()) == "(empty database)"

    def test_matches_paper_u1_table(self, pupil_db, u_sequence):
        """Spot-check the rendered u1 state against Section 4.2."""
        apply_update(pupil_db, u_sequence[0])
        text = render_state(pupil_db)
        assert "euclid  math A {g1}" in text
        assert "math john A {g1}" in text
        assert "laplace math T {}" in text
