"""Tests for the console REPL and its interactive designer."""

from __future__ import annotations

import io

import pytest

from repro.lang.repl import ConsoleDesigner, Repl, main


class ScriptedInput:
    """input() replacement fed from a list; records prompts."""

    def __init__(self, lines):
        self._lines = list(lines)
        self.prompts: list[str] = []

    def __call__(self, prompt: str = "") -> str:
        self.prompts.append(prompt)
        if not self._lines:
            raise EOFError
        return self._lines.pop(0)


class TestConsoleDesigner:
    def _designer(self, answers):
        source = ScriptedInput(answers)
        output = io.StringIO()
        return ConsoleDesigner(source, output), source, output

    def _cycle_report(self):
        from repro.core.design_aid import AutoDesigner, DesignSession
        from repro.core.schema import FunctionDef
        from repro.core.types import ObjectType

        session = DesignSession(AutoDesigner())
        A, B = ObjectType("A"), ObjectType("B")
        session.add(FunctionDef("teach", A, B))
        reports = session.add(FunctionDef("taught_by", B, A))
        return reports[0]

    def test_break_cycle_accepts_candidate(self):
        designer, source, output = self._designer(["taught_by"])
        report = self._cycle_report()
        assert designer.break_cycle(report) == "taught_by"
        assert "cycle:" in output.getvalue()

    def test_break_cycle_keep(self):
        designer, _, _ = self._designer(["keep"])
        assert designer.break_cycle(self._cycle_report()) is None

    def test_break_cycle_empty_answer_keeps(self):
        designer, _, _ = self._designer([""])
        assert designer.break_cycle(self._cycle_report()) is None

    def test_break_cycle_reprompts_on_garbage(self):
        designer, source, _ = self._designer(["nonsense", "teach"])
        assert designer.break_cycle(self._cycle_report()) == "teach"
        assert len(source.prompts) == 2

    def test_no_candidates_auto_keep(self):
        from repro.core.design_aid import CycleReport
        report = self._cycle_report()
        no_candidates = CycleReport(report.trigger, report.cycle, ())
        designer, source, output = self._designer([])
        assert designer.break_cycle(no_candidates) is None
        assert "no candidate" in output.getvalue()
        assert source.prompts == []  # never asked

    def test_confirm_derivation(self):
        from repro.core.derivation import Derivation, Op, Step
        report = self._cycle_report()
        derivation = Derivation(
            [Step(report.trigger, Op.INVERSE)]
        )
        designer, _, _ = self._designer(["y"])
        assert designer.confirm_derivation(report.trigger, derivation)
        designer, _, _ = self._designer(["n"])
        assert not designer.confirm_derivation(report.trigger, derivation)
        designer, _, _ = self._designer(["what", "no"])
        assert not designer.confirm_derivation(report.trigger, derivation)


class TestRepl:
    def _run(self, lines):
        source = ScriptedInput(lines)
        output = io.StringIO()
        repl = Repl(source, output)
        repl.loop()
        return output.getvalue()

    def test_banner_and_exit(self):
        text = self._run(["exit"])
        assert "design aid" in text

    def test_eof_exits(self):
        text = self._run([])
        assert "design aid" in text

    def test_statement_roundtrip(self):
        text = self._run([
            "add teach: faculty -> course (many-many)",
            "insert teach(euclid, math)",
            "truth teach(euclid, math)",
            "quit",
        ])
        assert "teach(euclid) = math: true" in text

    def test_interactive_cycle_dialogue(self):
        text = self._run([
            "add teach: faculty -> course (many-many)",
            "add taught_by: course -> faculty (many-many)",
            "taught_by",          # answer to the cycle prompt
            "design",
            "y",                  # confirm taught_by = teach^-1
            "exit",
        ])
        assert "Derived functions: taught_by" in text

    def test_blank_lines_ignored(self):
        text = self._run(["", "   ", "help", "exit"])
        assert "insert f(x, y)" in text

    def test_error_keeps_looping(self):
        text = self._run(["insert f(a b)", "help", "exit"])
        assert "error:" in text
        assert "insert f(x, y)" in text


class TestMain:
    def test_batch_script(self, tmp_path, capsys):
        script = tmp_path / "script.fdb"
        script.write_text(
            "add teach: faculty -> course (many-many);\n"
            "insert teach(euclid, math);\n"
            "truth teach(euclid, math);\n",
            encoding="utf-8",
        )
        code = main([str(script), "--batch"])
        captured = capsys.readouterr()
        assert code == 0
        assert "teach(euclid) = math: true" in captured.out
