"""The REPL's observability commands: ``slowlog`` and ``trace --dot``.

Statement-level tests through the :class:`Interpreter`, covering the
parse shapes (including the ``--dot`` flag and the ``slowlog query``
vs query-statement ambiguity) and the executed behaviour.
"""

from __future__ import annotations

import pytest

from repro.errors import ParseError
from repro.lang import ast
from repro.lang.interp import HELP_TEXT, Interpreter
from repro.lang.parser import parse_program, parse_statement
from repro.obs import OBS


def _scrub():
    OBS.disable()
    OBS.reset()
    OBS.metrics.clear()
    OBS.events.clear_sinks()
    OBS.slowlog.disable()


@pytest.fixture(autouse=True)
def clean_obs():
    _scrub()
    yield
    _scrub()


SETUP = """
add teach: faculty -> course
add class_list: course -> student
add pupil: faculty -> student
commit
insert teach(euclid, math)
insert class_list(math, john)
"""


def _ready() -> Interpreter:
    interpreter = Interpreter()
    interpreter.execute(SETUP)
    return interpreter


# -- parsing ------------------------------------------------------------------


class TestParsing:
    def test_trace_show_dot(self):
        statement = parse_statement('trace show --dot "out.dot"')
        assert statement == ast.Trace("show", "out.dot")

    def test_trace_plain_modes_unchanged(self):
        assert parse_statement("trace on") == ast.Trace("on")
        assert parse_statement("trace show") == ast.Trace("show")

    def test_dot_flag_requires_show(self):
        with pytest.raises(ParseError):
            parse_statement('trace on --dot "x.dot"')

    def test_dot_flag_requires_path(self):
        with pytest.raises(ParseError):
            parse_statement("trace show --dot")

    def test_slowlog_shapes(self):
        assert parse_statement("slowlog") == ast.SlowLogCmd("show")
        assert parse_statement("slowlog off") == ast.SlowLogCmd("off")
        assert parse_statement("slowlog clear") == ast.SlowLogCmd("clear")
        assert parse_statement("slowlog query 0.5") == \
            ast.SlowLogCmd("query", 0.5)
        assert parse_statement("slowlog update 2") == \
            ast.SlowLogCmd("update", 2)

    def test_bare_slowlog_does_not_eat_a_query_statement(self):
        statements = parse_program("slowlog\nquery pupil(euclid)")
        assert isinstance(statements[0], ast.SlowLogCmd)
        assert statements[0].mode == "show"
        assert isinstance(statements[1], ast.ImageQuery)


# -- execution ----------------------------------------------------------------


class TestSlowLogCommand:
    def test_set_show_off_clear_cycle(self):
        interpreter = _ready()
        (line,) = interpreter.execute("slowlog update 0.0")
        assert "0.0" in line
        interpreter.execute("delete class_list(math, john)")
        shown = interpreter.execute("slowlog")
        assert any("update.delete" in line for line in shown)
        assert any("cause=" in line for line in shown)
        (off,) = interpreter.execute("slowlog off")
        assert "records kept" in off
        interpreter.execute("slowlog clear")
        (empty,) = interpreter.execute("slowlog")
        assert "inactive" in empty

    def test_slow_records_appear_in_stats(self):
        interpreter = _ready()
        interpreter.execute("slowlog update 0.0")
        interpreter.execute("insert teach(gauss, math)")
        stats = interpreter.execute("stats")
        assert any("slow operations" in line.lower()
                   or "slowlog" in line.lower() for line in stats)

    def test_query_threshold_catches_queries(self):
        interpreter = _ready()
        interpreter.execute("slowlog query 0.0")
        interpreter.execute("pairs pupil")
        shown = interpreter.execute("slowlog")
        assert any("query." in line for line in shown)


class TestTraceDot:
    def test_writes_propagation_dag(self, tmp_path):
        interpreter = _ready()
        interpreter.execute("trace on")
        interpreter.execute("delete class_list(math, john)")
        out = tmp_path / "trace.dot"
        (line,) = interpreter.execute(f'trace show --dot "{out}"')
        assert "propagation DAG" in line
        dot = out.read_text(encoding="utf-8")
        assert dot.startswith('digraph "trace"')
        assert "update.delete" in dot

    def test_without_a_trace_reports_nothing(self, tmp_path):
        interpreter = _ready()
        out = tmp_path / "none.dot"
        (line,) = interpreter.execute(f'trace show --dot "{out}"')
        assert "no trace recorded" in line
        assert not out.exists()


class TestMonitorCommand:
    def test_parse_shapes(self):
        assert parse_statement("monitor") == ast.Monitor("show")
        assert parse_statement("monitor serve") == ast.Monitor("serve")
        assert parse_statement("monitor serve 8123") == \
            ast.Monitor("serve", 8123)
        assert parse_statement("monitor stop") == ast.Monitor("stop")

    def test_parse_rejects_bad_port(self):
        with pytest.raises(ParseError):
            parse_statement("monitor serve 70000")
        with pytest.raises(ParseError):
            parse_statement("monitor serve 80.5")

    def test_show_renders_dashboard(self):
        interpreter = _ready()
        output = interpreter.execute("monitor")
        text = "\n".join(output)
        assert "requests (RED)" in text
        assert "locks:" in text
        assert "breaker:" in text
        # OBS is disabled in this session, and the dashboard says so.
        assert "observability disabled" in text

    def test_serve_scrape_stop_cycle(self):
        import urllib.request

        from repro.obs.endpoint import parse_prometheus

        interpreter = _ready()
        (line,) = interpreter.execute("monitor serve")
        assert "http://127.0.0.1:" in line
        assert OBS.enabled  # serving turned collection on
        endpoint = interpreter.monitor_endpoint
        assert endpoint is not None and endpoint.running
        interpreter.execute("insert teach(noether, algebra)")
        body = urllib.request.urlopen(
            endpoint.url + "/metrics", timeout=5
        ).read().decode("utf-8")
        parse_prometheus(body)
        assert "fdb_" in body
        (again,) = interpreter.execute("monitor serve")
        assert "already serving" in again
        (stopped,) = interpreter.execute("monitor stop")
        assert "stopped" in stopped
        assert interpreter.monitor_endpoint is None
        (nothing,) = interpreter.execute("monitor stop")
        assert "no endpoint" in nothing


class TestHelp:
    def test_help_documents_the_commands(self):
        assert "slowlog" in HELP_TEXT
        assert "--dot" in HELP_TEXT
        assert "monitor" in HELP_TEXT


# -- timeline -----------------------------------------------------------------


class TestTimelineCommand:
    def test_parse_shapes(self):
        assert parse_statement("timeline") == ast.Timeline(None)
        assert parse_statement('timeline "events.jsonl"') == \
            ast.Timeline("events.jsonl")

    def test_help_mentions_timeline(self):
        assert "timeline" in HELP_TEXT

    def test_first_bare_call_attaches_the_ring(self):
        from repro.obs import RingBufferSink

        interpreter = Interpreter()
        lines = interpreter.execute("timeline")
        assert any("recording started" in line for line in lines)
        assert any(isinstance(sink, RingBufferSink)
                   for sink in OBS.events.sinks)
        # No replication activity yet: the second call says so.
        lines = interpreter.execute("timeline")
        assert any("no replication events" in line for line in lines)

    def test_folds_a_jsonl_artifact(self, tmp_path):
        from repro.obs import FileSink

        sink = FileSink(tmp_path / "events.jsonl")
        OBS.events.add_sink(sink)
        OBS.enable()
        OBS.action("replication.primary_attached", term=1,
                   node="primary")
        OBS.action("replication.commit_acked", seq=1, term=1, acks=2)
        OBS.disable()
        OBS.events.remove_sink(sink)
        sink.close()
        interpreter = Interpreter()
        lines = interpreter.execute(
            f'timeline "{tmp_path / "events.jsonl"}"')
        text = "\n".join(lines)
        assert "replication timeline: 2 entries" in text
        assert "attach" in text

    def test_missing_artifact_reports_cleanly(self):
        interpreter = Interpreter()
        lines = interpreter.execute('timeline "/no/such/events.jsonl"')
        assert any("cannot read" in line for line in lines)
