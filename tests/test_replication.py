"""Tests for WAL-shipping replication: roles, commit modes, fencing,
failover, rejoin repair, transports and bounded-staleness reads."""

from __future__ import annotations

import json

import pytest

from repro.errors import (
    ReplicationError,
    ReplicationTimeout,
    StalenessUnserved,
    StalePrimary,
)
from repro.fdb import persistence
from repro.fdb.logic import Truth
from repro.fdb.updates import Update
from repro.fdb.wal import (
    LoggedDatabase,
    RecoveryReport,
    UpdateLog,
    checkpoint,
)
from repro.replication import (
    CatchUpReport,
    CommitMode,
    InProcessTransport,
    PromotionReport,
    RejoinReport,
    Replica,
    ReplicaServer,
    ReplicationGroup,
    SnapshotNeeded,
    SocketTransport,
    WalShipper,
)
from repro.service import DatabaseService
from repro.workloads.university import pupil_database, section_42_updates


@pytest.fixture
def primary(tmp_path):
    """A pupil-database primary with the replica file layout."""
    workdir = tmp_path / "primary"
    workdir.mkdir()
    db = pupil_database()
    persistence.save(db, workdir / "snapshot.json", wal_applied=0)
    return LoggedDatabase(db, workdir / "wal.log"), workdir


def _group(mode="sync(1)", **kwargs):
    kwargs.setdefault("ack_timeout", 1.0)
    kwargs.setdefault("retry_interval", 0.005)
    return ReplicationGroup(mode, **kwargs)


class TestCommitMode:
    def test_parse(self):
        assert CommitMode.parse("async").kind == "async"
        assert CommitMode.parse("quorum").kind == "quorum"
        mode = CommitMode.parse("sync(2)")
        assert (mode.kind, mode.k) == ("sync", 2)
        assert str(mode) == "sync(2)"

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            CommitMode.parse("sync(0)")
        with pytest.raises(ValueError):
            CommitMode.parse("majority")

    def test_required_acks(self):
        assert CommitMode.parse("async").required_acks(3) == 0
        assert CommitMode.parse("sync(2)").required_acks(3) == 2
        # quorum: majority of the whole group (primary + replicas),
        # with the primary's own durable copy counting as one vote
        assert CommitMode.parse("quorum").required_acks(1) == 1
        assert CommitMode.parse("quorum").required_acks(2) == 1
        assert CommitMode.parse("quorum").required_acks(4) == 2


class TestReplicaApply:
    def test_bootstrap_and_delta_apply(self, primary, tmp_path):
        logged, _ = primary
        group = _group()
        term = group.attach_primary(logged)
        assert term == 1
        replica = Replica("r0", tmp_path / "r0")
        report = group.add_replica("r0", replica)
        assert report.mode == "snapshot"
        seq = logged.execute(Update.ins("teach", "gauss", "cs"))
        group.on_commit(seq)
        assert replica.applied_seq == seq
        assert replica.db.truth_of("teach", "gauss", "cs") is Truth.TRUE
        # the replica's log is a prefix copy of the primary's stream
        assert replica.wal_path.exists()

    def test_reshipment_is_idempotent(self, primary, tmp_path):
        logged, _ = primary
        group = _group()
        group.attach_primary(logged)
        replica = Replica("r0", tmp_path / "r0")
        group.add_replica("r0", replica)
        seq = logged.execute(Update.ins("teach", "gauss", "cs"))
        group.on_commit(seq)
        # Simulate a lost ack: rewind the link and ship again.
        link = group.shipper.link("r0")
        link.acked_seq = 0
        group.shipper.ship(link, seq)
        assert replica.applied_seq == seq
        pairs = list(replica.db.table("teach").pairs())
        assert pairs.count(("gauss", "cs")) == 1

    def test_true_gap_errors(self, primary, tmp_path):
        logged, _ = primary
        group = _group()
        group.attach_primary(logged)
        replica = Replica("r0", tmp_path / "r0")
        group.add_replica("r0", replica)
        seqs = []
        for update in section_42_updates()[:3]:
            seqs.append(logged.execute(update))
            group.on_commit(seqs[-1])
        tail = logged.log.records_between(2, 3)
        replica.applied_seq = 0  # pretend records 1..2 never arrived
        reply = replica.handle({
            "type": "append", "term": group.term,
            "records": [line for _, line in tail],
            "through_seq": 3,
        })
        assert reply == {"ok": False, "error": "gap", "applied_seq": 0}

    def test_checksum_tampering_is_refused(self, primary, tmp_path):
        logged, _ = primary
        group = _group()
        group.attach_primary(logged)
        replica = Replica("r0", tmp_path / "r0")
        group.add_replica("r0", replica)
        seq = logged.execute(Update.ins("teach", "gauss", "cs"))
        (record_seq, line), = logged.log.records_between(0, seq)
        raw = json.loads(line)
        raw["seq"] = record_seq + 7  # bits flipped in flight
        reply = replica.handle({
            "type": "append", "term": group.term,
            "records": [json.dumps(raw)], "through_seq": record_seq + 7,
        })
        assert not reply["ok"]
        assert "bad-record" in reply["error"]

    def test_stale_term_refused_by_replica(self, primary, tmp_path):
        logged, _ = primary
        group = _group()
        group.attach_primary(logged)
        replica = Replica("r0", tmp_path / "r0")
        group.add_replica("r0", replica)
        replica.term = 5
        reply = replica.handle({
            "type": "append", "term": 4, "records": [],
            "through_seq": 0,
        })
        assert reply["error"] == "stale-term"
        assert reply["term"] == 5

    def test_crash_restart_resumes_from_disk(self, primary, tmp_path):
        logged, _ = primary
        group = _group()
        group.attach_primary(logged)
        replica = Replica("r0", tmp_path / "r0")
        group.add_replica("r0", replica)
        seqs = [logged.execute(u) for u in section_42_updates()[:4]]
        for seq in seqs:
            group.on_commit(seq)
        replica.crash()
        with pytest.raises(ConnectionError):
            replica.handle({"type": "status"})
        replica.restart()
        assert replica.applied_seq == seqs[-1]
        seq = logged.execute(Update.ins("teach", "noether", "algebra"))
        group.on_commit(seq)
        assert replica.applied_seq == seq
        assert replica.db.truth_of(
            "teach", "noether", "algebra") is Truth.TRUE


class TestShipper:
    def test_batching_respects_limit(self, primary, tmp_path):
        logged, _ = primary
        shipper = WalShipper(logged.log, term=1, batch_limit=2)
        replica = Replica("r0", tmp_path / "r0")
        link = shipper.add("r0", InProcessTransport(replica.handle))
        snapshot = persistence.dumps(logged.db, wal_applied=0)
        shipper.ship_snapshot(link, snapshot, 0)
        seqs = [logged.execute(u) for u in section_42_updates()[:5]]
        shipper.ship(link, seqs[-1])
        assert replica.applied_seq == seqs[-1]

    def test_snapshot_needed_after_checkpoint(self, primary, tmp_path):
        logged, workdir = primary
        group = _group()
        group.attach_primary(logged)
        for update in section_42_updates()[:3]:
            seq = logged.execute(update)
        checkpoint(logged, workdir / "snapshot.json")
        # A replica added *after* the fold can't be delta-shipped.
        replica = Replica("late", tmp_path / "late")
        report = group.add_replica("late", replica)
        assert report.mode == "snapshot"
        assert replica.applied_seq == seq
        assert replica.db.table("teach").rows() == \
            logged.db.table("teach").rows()

    def test_mid_flight_fold_never_sends_empty_append(
            self, primary, tmp_path, monkeypatch):
        """A checkpoint folding the range between the floor check and
        the record read must surface as SnapshotNeeded — an empty
        append would advance the replica's high-water mark past
        records it never received (silent acked-data loss)."""
        logged, _ = primary
        group = _group()
        group.attach_primary(logged)
        replica = Replica("r0", tmp_path / "r0")
        group.add_replica("r0", replica)
        seq = logged.execute(Update.ins("teach", "gauss", "cs"))
        group.on_commit(seq)
        seq2 = logged.execute(Update.ins("teach", "noether", "algebra"))
        link = group.shipper.link("r0")
        monkeypatch.setattr(logged.log, "records_between",
                            lambda lo, hi: [])
        with pytest.raises(SnapshotNeeded):
            group.shipper.ship(link, seq2)
        assert replica.applied_seq == seq  # never past what it holds
        assert link.acked_seq == seq

    def test_batch_boundary_keeps_abort_with_its_entry(
            self, primary, tmp_path):
        """The batch limit must never strand an entry in one batch and
        its compensating abort in the next: the replica would apply
        the entry (its own apply can succeed even when the primary's
        failed) and silently diverge."""
        from repro.faults import ErrorFault, FAULTS

        logged, _ = primary
        # batch_limit=2 would cut exactly between the entry and its
        # abort; the shipper must extend the batch instead.
        shipper = WalShipper(logged.log, term=1, batch_limit=2)
        replica = Replica("r0", tmp_path / "r0")
        link = shipper.add("r0", InProcessTransport(replica.handle))
        snapshot = persistence.dumps(logged.db, wal_applied=0)
        shipper.ship_snapshot(link, snapshot, 0)
        seq1 = logged.execute(Update.ins("teach", "gauss", "cs"))
        FAULTS.arm("wal.apply.before", ErrorFault(times=1))
        try:
            with pytest.raises(RuntimeError):
                logged.execute(Update.ins("teach", "noether", "algebra"))
        finally:
            FAULTS.disarm_all()
        # seq1=entry, seq2=failed entry, seq3=abort_of(seq2), seq4=entry
        seq4 = logged.execute(Update.ins("teach", "hilbert", "logic"))
        assert seq4 == seq1 + 3
        shipper.ship(link, seq4)
        assert replica.applied_seq == seq4
        assert not replica.diverged
        # the aborted update was never applied on the replica
        assert replica.db.truth_of(
            "teach", "noether", "algebra") is not Truth.TRUE
        assert replica.db.table("teach").rows() == \
            logged.db.table("teach").rows()

    def test_journal_covers_the_stream(self, primary, tmp_path):
        logged, _ = primary
        group = _group(journal=True)
        group.attach_primary(logged)
        seqs = [logged.execute(u) for u in section_42_updates()[:3]]
        for seq in seqs:
            group.note_commit(seq)
        journal = group.shipper.journal()
        assert [seq for seq, _ in journal] == seqs


class TestGroupCommitModes:
    def test_sync_waits_for_k_acks(self, primary, tmp_path):
        logged, _ = primary
        group = _group("sync(2)")
        group.attach_primary(logged)
        for name in ("r0", "r1"):
            group.add_replica(name, Replica(name, tmp_path / name))
        seq = logged.execute(Update.ins("teach", "gauss", "cs"))
        verdict = group.on_commit(seq)
        assert verdict["acks"] == 2

    def test_sync_times_out_when_partitioned(self, primary, tmp_path):
        logged, _ = primary
        group = _group("sync(1)", ack_timeout=0.15)
        group.attach_primary(logged)
        group.add_replica("r0", Replica("r0", tmp_path / "r0"))
        group.shipper.link("r0").transport.partitioned = True
        seq = logged.execute(Update.ins("teach", "gauss", "cs"))
        with pytest.raises(ReplicationTimeout):
            group.on_commit(seq)
        # Healing the partition lets the next commit drag it forward.
        group.shipper.link("r0").transport.partitioned = False
        seq2 = logged.execute(Update.ins("teach", "noether", "algebra"))
        group.on_commit(seq2)
        assert group.replica("r0").applied_seq == seq2

    def test_async_never_blocks(self, primary, tmp_path):
        logged, _ = primary
        group = _group("async", ack_timeout=0.15)
        group.attach_primary(logged)
        group.add_replica("r0", Replica("r0", tmp_path / "r0"))
        group.shipper.link("r0").transport.partitioned = True
        seq = logged.execute(Update.ins("teach", "gauss", "cs"))
        verdict = group.on_commit(seq)  # no quota, no timeout
        assert verdict["acks"] == 0


class TestFailover:
    def _replicated(self, primary, tmp_path, mode="sync(1)"):
        logged, workdir = primary
        group = _group(mode, journal=True)
        group.attach_primary(logged)
        for name in ("r0", "r1"):
            group.add_replica(name, Replica(name, tmp_path / name))
        return logged, workdir, group

    def test_promotion_picks_longest_prefix(self, primary, tmp_path):
        logged, _, group = self._replicated(primary, tmp_path)
        seq1 = logged.execute(Update.ins("teach", "a", "b"))
        group.on_commit(seq1)
        # r1 misses the second commit; r0 gets everything.
        group.shipper.link("r1").transport.partitioned = True
        seq2 = logged.execute(Update.ins("teach", "c", "d"))
        group.on_commit(seq2)  # sync(1): r0's ack satisfies the quota
        group.shipper.link("r1").transport.partitioned = False
        report = group.promote()
        assert report.chosen == "r0"
        assert report.applied_seq == seq2
        assert dict(report.candidates) == {"r0": seq2, "r1": seq1}

    def test_promote_fence_and_stale_primary(self, primary, tmp_path):
        logged, _, group = self._replicated(primary, tmp_path)
        token = group.term
        seqs = [logged.execute(u) for u in section_42_updates()[:3]]
        for seq in seqs:
            group.on_commit(seq)
        # The primary commits one op nobody acks (full partition).
        for link in group.shipper.links():
            link.transport.partitioned = True
        group.ack_timeout = 0.1
        tail_seq = logged.execute(Update.ins("teach", "tail", "op"))
        with pytest.raises(ReplicationTimeout):
            group.on_commit(tail_seq)
        for link in group.shipper.links():
            link.transport.partitioned = False

        report = group.promote()
        assert report.applied_seq == seqs[-1]  # the acked prefix
        assert report.new_term == token + 1
        assert group.fence_seq(token) == seqs[-1]
        with pytest.raises(StalePrimary):
            group.check_primary(token)

    def test_full_failover_and_rejoin(self, primary, tmp_path):
        logged, workdir, group = self._replicated(primary, tmp_path)
        old_term = group.term
        seqs = [logged.execute(u) for u in section_42_updates()[:3]]
        for seq in seqs:
            group.on_commit(seq)
        for link in group.shipper.links():
            link.transport.partitioned = True
        group.ack_timeout = 0.1
        tail_seq = logged.execute(Update.ins("teach", "tail", "op"))
        with pytest.raises(ReplicationTimeout):
            group.on_commit(tail_seq)
        for link in group.shipper.links():
            link.transport.partitioned = False

        report = group.promote()
        chosen = group.replica(report.chosen)
        group.remove_replica(report.chosen)
        new_logged = LoggedDatabase(chosen.db,
                                    UpdateLog(chosen.wal_path))
        new_token = group.attach_primary(new_logged, node=chosen.name)
        assert new_token == report.new_term
        seq = new_logged.execute(Update.ins("teach", "new", "era"))
        group.on_commit(seq)

        old = Replica("old-primary", workdir)
        rejoin = group.rejoin(old, old_term)
        assert rejoin.records_dropped >= 1  # the unacked tail
        assert old.db.truth_of("teach", "tail", "op") is not Truth.TRUE
        assert old.db.truth_of("teach", "new", "era") is Truth.TRUE
        assert old.db.table("teach").rows() == \
            new_logged.db.table("teach").rows()

    def test_promote_resets_links_past_the_fence(
            self, primary, tmp_path):
        """A replica partitioned away during failover with an applied
        prefix *beyond* the fence must not carry its acks into the new
        term: the new history reuses those sequence numbers with
        different records, so its stale ack would count never-shipped
        new-term commits as replicated and its divergent tail would
        never be repaired."""
        logged, _, group = self._replicated(primary, tmp_path)
        seq1 = logged.execute(Update.ins("teach", "a", "b"))
        group.on_commit(seq1)
        # r1 races ahead: r0 misses the second commit entirely.
        group.shipper.link("r0").transport.partitioned = True
        seq2 = logged.execute(Update.ins("teach", "old", "world"))
        group.on_commit(seq2)  # sync(1): r1's ack satisfies the quota
        group.shipper.link("r0").transport.partitioned = False
        # Now r1 drops off the network and the primary dies: only r0
        # (at seq1) is reachable — the fence lands below r1's prefix.
        group.shipper.link("r1").transport.partitioned = True
        report = group.promote()
        assert report.chosen == "r0"
        assert report.applied_seq == seq1
        survivor = group.shipper.link("r1")
        assert survivor.acked_seq <= seq1
        assert survivor.needs_snapshot
        # Build the new primary on r0 and commit into the new term,
        # reusing sequence number seq2 with different content.
        chosen = group.replica(report.chosen)
        group.remove_replica(report.chosen)
        new_logged = LoggedDatabase(chosen.db, UpdateLog(chosen.wal_path))
        group.attach_primary(new_logged, node=chosen.name)
        group.shipper.link("r1").transport.partitioned = False
        seq_new = new_logged.execute(Update.ins("teach", "new", "era"))
        assert seq_new == seq2  # the reused sequence number
        verdict = group.on_commit(seq_new)
        assert verdict["acks"] >= 1
        # r1 was genuinely repaired, not ack-counted from stale state.
        r1 = group.replica("r1")
        assert r1.applied_seq == seq_new
        assert r1.db.truth_of("teach", "old", "world") is not Truth.TRUE
        assert r1.db.truth_of("teach", "new", "era") is Truth.TRUE
        assert r1.db.table("teach").rows() == \
            new_logged.db.table("teach").rows()

    def test_rejoin_rebootstraps_after_tainted_checkpoint(
            self, primary, tmp_path):
        """A deposed primary that checkpointed its unacked tail cannot
        be repaired by truncation — it must re-bootstrap."""
        logged, workdir, group = self._replicated(primary, tmp_path)
        old_term = group.term
        seq = logged.execute(Update.ins("teach", "gauss", "cs"))
        group.on_commit(seq)
        for link in group.shipper.links():
            link.transport.partitioned = True
        group.ack_timeout = 0.1
        tail = logged.execute(Update.ins("teach", "tail", "op"))
        with pytest.raises(ReplicationTimeout):
            group.on_commit(tail)
        # The dying primary folds the tail into its snapshot.
        checkpoint(logged, workdir / "snapshot.json")
        for link in group.shipper.links():
            link.transport.partitioned = False
        report = group.promote()
        chosen = group.replica(report.chosen)
        group.remove_replica(report.chosen)
        new_logged = LoggedDatabase(chosen.db,
                                    UpdateLog(chosen.wal_path))
        group.attach_primary(new_logged, node=chosen.name)

        old = Replica("old-primary", workdir)
        rejoin = group.rejoin(old, old_term)
        assert rejoin.rebootstrapped
        assert old.db.truth_of("teach", "tail", "op") is not Truth.TRUE
        assert old.applied_seq == group.shipper.link(
            "old-primary").acked_seq


class TestBoundedStaleness:
    def test_read_prefers_fresh_replica(self, primary, tmp_path):
        logged, _ = primary
        group = _group()
        group.attach_primary(logged)
        for name in ("r0", "r1"):
            group.add_replica(name, Replica(name, tmp_path / name))
        seq = logged.execute(Update.ins("teach", "gauss", "cs"))
        group.on_commit(seq)
        value = group.read(
            lambda db: db.truth_of("teach", "gauss", "cs"),
            max_lag_seq=0,
        )
        assert value is Truth.TRUE

    def test_unserved_when_all_lag(self, primary, tmp_path):
        logged, _ = primary
        group = _group("async")
        group.attach_primary(logged)
        group.add_replica("r0", Replica("r0", tmp_path / "r0"))
        group.shipper.link("r0").transport.partitioned = True
        logged.execute(Update.ins("teach", "gauss", "cs"))
        with pytest.raises(StalenessUnserved):
            group.read(lambda db: None, max_lag_seq=0)

    def test_remote_only_group_raises_misconfiguration(
            self, primary, tmp_path):
        """A group whose replicas are all behind remote transports
        cannot serve reads from this node — that is a routing
        misconfiguration (ReplicationError), not staleness."""
        logged, _ = primary
        group = _group()
        group.attach_primary(logged)
        replica = Replica("r0", tmp_path / "r0")
        # Hand the transport in directly: the group never learns about
        # the in-process Replica object, as with a SocketTransport.
        group.add_replica("r0", InProcessTransport(replica.handle))
        seq = logged.execute(Update.ins("teach", "gauss", "cs"))
        group.on_commit(seq)
        assert group.lag()["r0"]["lag_seq"] == 0  # within any bound
        with pytest.raises(ReplicationError) as caught:
            group.read(lambda db: None, max_lag_seq=0)
        assert not isinstance(caught.value, StalenessUnserved)
        assert "no local replicas" in str(caught.value)

    def test_lag_and_health(self, primary, tmp_path):
        logged, _ = primary
        group = _group()
        group.attach_primary(logged)
        group.add_replica("r0", Replica("r0", tmp_path / "r0"))
        seq = logged.execute(Update.ins("teach", "gauss", "cs"))
        group.on_commit(seq)
        lags = group.lag()
        assert lags["r0"]["lag_seq"] == 0
        health = group.health(max_lag_seq=0)
        assert health["servable"]
        assert health["term"] == 1
        assert health["mode"] == "sync(1)"


class TestServiceIntegration:
    def _service(self, tmp_path, mode="sync(1)", **kwargs):
        workdir = tmp_path / "primary"
        workdir.mkdir()
        db = pupil_database()
        persistence.save(db, workdir / "snapshot.json", wal_applied=0)
        group = _group(mode, journal=True)
        service = DatabaseService(
            db, log=workdir / "wal.log", replication=group, **kwargs
        )
        return service, group, workdir

    def test_replication_requires_a_log(self, tmp_path):
        with pytest.raises(ReplicationError):
            DatabaseService(pupil_database(), replication=_group())

    def test_commit_blocks_on_acks_and_records_them(self, tmp_path):
        service, group, _ = self._service(tmp_path)
        group.add_replica("r0", Replica("r0", tmp_path / "r0"))
        service.insert("teach", "gauss", "cs")
        acked = service.acked_ops()
        assert len(acked) == 1
        seq, update = acked[0]
        assert seq == 1
        assert str(update) == "INS(teach, <gauss, cs>)"
        assert group.replica("r0").applied_seq == 1

    def test_read_replica_and_staleness(self, tmp_path):
        service, group, _ = self._service(
            tmp_path, staleness_max_lag_seq=0)
        group.add_replica("r0", Replica("r0", tmp_path / "r0"))
        service.insert("teach", "gauss", "cs")
        value = service.read_replica(
            lambda db: db.truth_of("teach", "gauss", "cs"))
        assert value is Truth.TRUE
        group.shipper.link("r0").transport.partitioned = True
        group.ack_timeout = 0.1
        with pytest.raises(ReplicationTimeout):
            service.insert("teach", "noether", "algebra")
        with pytest.raises(StalenessUnserved):
            service.read_replica(lambda db: None)
        verdict = service._health()
        assert verdict["healthy"] is False  # the 503 path
        assert verdict["replication"]["servable"] is False

    def test_stats_carry_wal_and_replication(self, tmp_path):
        service, group, _ = self._service(tmp_path)
        group.add_replica("r0", Replica("r0", tmp_path / "r0"))
        service.insert("teach", "gauss", "cs")
        stats = service.stats()
        assert stats["wal"]["last_seq"] == 1
        assert stats["wal"]["term"] == 1
        assert stats["wal"]["tail_torn"] is False
        assert stats["acked"] == 1
        assert stats["replication"]["replicas"]["r0"]["lag_seq"] == 0

    def test_fenced_service_write_raises(self, tmp_path):
        service, group, _ = self._service(tmp_path)
        group.add_replica("r0", Replica("r0", tmp_path / "r0"))
        service.insert("teach", "gauss", "cs")
        group.promote()
        with pytest.raises(StalePrimary):
            service.insert("teach", "noether", "algebra")
        assert len(service.acked_ops()) == 1


class TestSocketTransport:
    def test_append_over_a_real_socket(self, primary, tmp_path):
        logged, _ = primary
        replica = Replica("r0", tmp_path / "r0")
        server = ReplicaServer(replica.handle)
        server.start()
        try:
            group = _group()
            group.attach_primary(logged)
            group.add_replica("r0", server.transport())
            seq = logged.execute(Update.ins("teach", "gauss", "cs"))
            group.on_commit(seq)
            assert replica.applied_seq == seq
            assert replica.db.truth_of(
                "teach", "gauss", "cs") is Truth.TRUE
        finally:
            server.stop()

    def test_connection_error_when_server_gone(self, tmp_path):
        replica = Replica("r0", tmp_path / "r0")
        server = ReplicaServer(replica.handle)
        server.start()
        transport = SocketTransport(server.host, server.port)
        server.stop()
        with pytest.raises((ConnectionError, OSError)):
            transport.request({"type": "status"})


class TestReports:
    def test_promotion_report_roundtrip(self):
        report = PromotionReport(
            chosen="r1", applied_seq=17, old_term=2, new_term=3,
            candidates=(("r0", 12), ("r1", 17)),
        )
        clone = PromotionReport.from_dict(
            json.loads(json.dumps(report.as_dict())))
        assert clone == report

    def test_catch_up_report_roundtrip(self):
        report = CatchUpReport(
            replica="r0", mode="snapshot", from_seq=0, to_seq=9,
            term=2, snapshot_wal_applied=7,
        )
        clone = CatchUpReport.from_dict(
            json.loads(json.dumps(report.as_dict())))
        assert clone == report

    def test_rejoin_report_roundtrip(self):
        report = RejoinReport(
            replica="old", old_term=1, fence_seq=5, records_dropped=2,
            torn_tail_discarded=True, rebootstrapped=False,
            catch_up=CatchUpReport(
                replica="old", mode="delta", from_seq=5, to_seq=8,
                term=2,
            ),
        )
        clone = RejoinReport.from_dict(
            json.loads(json.dumps(report.as_dict())))
        assert clone == report

    def test_recovery_report_roundtrip(self):
        report = RecoveryReport(
            db=None, entries_applied=4, torn_tail=True,
            policy="salvage", records_skipped=1, checksum_failures=1,
            aborted=2, already_checkpointed=3, legacy_records=0,
            term=2, notes=("note a", "note b"),
        )
        data = json.loads(json.dumps(report.as_dict()))
        assert data["report"] == "recovery"
        clone = RecoveryReport.from_dict(data)
        assert clone.as_dict() == report.as_dict()
