"""Lease-based leadership: the timing contract, the quorum-renewed
lease, failure detection, the coordinator's election rules, the
self-demotion/fence interplay, clock-skew and heartbeat-drop fault
injection, transport timeouts, and the REPL/observability surfaces.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import (
    LeaseExpired,
    ServiceReadOnly,
    StalePrimary,
)
from repro.faults.registry import (
    FAULTS,
    ClockSkewFault,
    HeartbeatDropFault,
)
from repro.fdb import persistence
from repro.fdb.updates import Update
from repro.fdb.wal import LoggedDatabase
from repro.lang.interp import Interpreter
from repro.obs import OBS, RingBufferSink, replication_timeline
from repro.obs.export import (
    render_monitor,
    render_replication,
    render_timeline,
)
from repro.replication import (
    FailoverCoordinator,
    FailureDetector,
    LeaseClock,
    LeaseConfig,
    Replica,
    ReplicaServer,
    ReplicationGroup,
)
from repro.service import DatabaseService
from repro.workloads.university import pupil_database


def _scrub():
    OBS.disable()
    OBS.reset()
    OBS.metrics.clear()
    OBS.events.clear_sinks()


@pytest.fixture(autouse=True)
def clean_faults():
    FAULTS.disarm_all()
    _scrub()
    yield
    FAULTS.disarm_all()
    _scrub()


class _Ticker:
    """A hand-cranked clock."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


def _stack(tmp_path, cfg: LeaseConfig, replicas: int = 2, *,
           mode: str = "sync(1)", clock=None):
    workdir = tmp_path / "primary"
    workdir.mkdir(exist_ok=True)
    db = pupil_database()
    persistence.save(db, workdir / "snapshot.json", wal_applied=0)
    logged = LoggedDatabase(db, workdir / "wal.log")
    group = ReplicationGroup(mode, ack_timeout=1.0,
                             retry_interval=0.005)
    lease = group.enable_lease(cfg, clock=clock)
    term = group.attach_primary(logged, node="primary")
    for i in range(replicas):
        replica = Replica(f"r{i}", tmp_path / f"r{i}")
        group.add_replica(replica.name, replica)
    return db, logged, group, lease, term


class TestLeaseConfig:
    def test_windows(self):
        cfg = LeaseConfig(duration=1.0, margin=0.2,
                          renew_interval=0.2)
        assert cfg.primary_validity == pytest.approx(0.8)
        assert cfg.detector_horizon == pytest.approx(1.4)

    def test_rejects_degenerate_margins(self):
        with pytest.raises(ValueError):
            LeaseConfig(duration=0.0)
        with pytest.raises(ValueError):
            LeaseConfig(duration=1.0, margin=0.5)
        with pytest.raises(ValueError):
            LeaseConfig(duration=1.0, margin=0.1,
                        renew_interval=0.95)
        with pytest.raises(ValueError):
            LeaseConfig(margin=-0.1)


class TestLeaseExpiredType:
    def test_is_both_stale_primary_and_read_only(self):
        exc = LeaseExpired(3, 1.5, 1.0)
        assert isinstance(exc, StalePrimary)
        assert isinstance(exc, ServiceReadOnly)
        assert exc.writer_term == 3
        assert "lease expired" in str(exc)


class TestLeaseManager:
    def test_grant_then_quorum_renewal(self, tmp_path):
        clock = _Ticker()
        cfg = LeaseConfig(duration=1.0, margin=0.1,
                          renew_interval=0.2)
        _, _, group, lease, term = _stack(tmp_path, cfg, clock=clock)
        assert lease.held()
        # k = (2 + 1) // 2 = 1 renewal vote needed beyond the grant.
        assert lease.needed_acks() == 1
        clock.now = 0.8
        assert lease.held()  # still inside validity from the grant
        clock.now = 1.0
        assert not lease.held()
        with pytest.raises(LeaseExpired):
            lease.check()
        # A dedicated heartbeat round recovers it under the same term.
        assert lease.renew_once() == 2
        assert lease.held()
        lease.check()
        assert group.term == term

    def test_remaining_and_status(self, tmp_path):
        clock = _Ticker()
        cfg = LeaseConfig(duration=1.0, margin=0.1,
                          renew_interval=0.2)
        _, _, group, lease, _ = _stack(tmp_path, cfg, clock=clock)
        assert lease.remaining() == pytest.approx(0.9)
        status = lease.status()
        assert status["held"] is True
        assert status["needed_acks"] == 1
        assert status["duration"] == 1.0
        health = group.health()
        assert health["lease"]["held"] is True

    def test_votes_are_request_start_stamped(self, tmp_path):
        """A slow round-trip must shorten the lease, not stretch it:
        the vote is timestamped before the request went out."""
        clock = _Ticker()
        cfg = LeaseConfig(duration=1.0, margin=0.1,
                          renew_interval=0.2)
        _, _, group, lease, _ = _stack(tmp_path, cfg, clock=clock)
        clock.now = 0.5
        lease.note_ack("r0", started=0.2)
        # Watermark floors at the grant until the quorum vote, then
        # follows the vote's *start* stamp, never the reply instant.
        assert lease.remaining() == pytest.approx(0.6)

    def test_solo_primary_never_demotes(self, tmp_path):
        clock = _Ticker()
        cfg = LeaseConfig(duration=1.0, margin=0.1,
                          renew_interval=0.2)
        _, _, group, lease, _ = _stack(tmp_path, cfg, replicas=0,
                                       clock=clock)
        assert lease.needed_acks() == 0
        clock.now = 1e6
        assert lease.held()
        lease.check()

    def test_revoked_by_promotion(self, tmp_path):
        cfg = LeaseConfig(duration=1.0, margin=0.1,
                          renew_interval=0.2)
        _, logged, group, lease, term = _stack(tmp_path, cfg)
        seq = logged.execute(Update.ins("teach", "gauss", "cs"))
        group.on_commit(seq)
        group.promote()
        assert not lease.held()
        assert group.leaderless()
        with pytest.raises(StalePrimary):
            group.check_primary(term)


class TestFailureDetector:
    def test_expiry_and_reset(self):
        clock = _Ticker()
        cfg = LeaseConfig(duration=1.0, margin=0.1,
                          renew_interval=0.2)
        det = FailureDetector("r0", cfg, clock=clock)
        assert not det.expired()
        clock.now = cfg.detector_horizon + 0.01
        assert det.expired()
        det.reset()
        assert not det.expired()

    def test_stale_term_beats_do_not_postpone(self):
        clock = _Ticker()
        cfg = LeaseConfig(duration=1.0, margin=0.1,
                          renew_interval=0.2)
        det = FailureDetector("r0", cfg, clock=clock)
        det.observe({"node": "primary", "term": 3})
        clock.now = cfg.detector_horizon + 0.01
        det.observe({"node": "deposed", "term": 2})  # stale: ignored
        assert det.expired()
        det.observe({"node": "new-primary", "term": 4})
        assert not det.expired()
        assert det.leader == "new-primary"

    def test_replica_feeds_attached_detector(self, tmp_path):
        cfg = LeaseConfig(duration=1.0, margin=0.1,
                          renew_interval=0.2)
        _, logged, group, lease, _ = _stack(tmp_path, cfg)
        replica = group.replica("r0")
        clock = _Ticker()
        det = FailureDetector("r0", cfg, clock=clock)
        replica.failure_detector = det
        clock.now = cfg.detector_horizon + 1
        assert det.expired()
        seq = logged.execute(Update.ins("teach", "gauss", "cs"))
        group.on_commit(seq)  # the shipped frame carries the beat
        assert not det.expired()


class TestElectionRules:
    def test_quotas(self, tmp_path):
        cfg = LeaseConfig(duration=1.0, margin=0.1,
                          renew_interval=0.2)
        _, _, group, _, _ = _stack(tmp_path, cfg, replicas=3)
        coord = FailoverCoordinator(group, cfg)
        for name in ("r0", "r1", "r2"):
            coord.watch(group.replica(name))
        # Majority of the 4-member group (3 replicas + primary).
        assert coord.votes_needed() == 3
        # sync(1): any single replica may hold the only ack.
        assert coord.candidates_needed() == 3

    def test_async_mode_needs_single_candidate(self, tmp_path):
        cfg = LeaseConfig(duration=1.0, margin=0.1,
                          renew_interval=0.2)
        _, _, group, _, _ = _stack(tmp_path, cfg, replicas=3,
                                   mode="async")
        coord = FailoverCoordinator(group, cfg)
        for name in ("r0", "r1", "r2"):
            coord.watch(group.replica(name))
        assert coord.candidates_needed() == 1

    def test_two_node_groups_never_self_elect(self, tmp_path):
        cfg = LeaseConfig(duration=1.0, margin=0.1,
                          renew_interval=0.2)
        clock = _Ticker()
        _, _, group, _, _ = _stack(tmp_path, cfg, replicas=1)
        coord = FailoverCoordinator(group, cfg, clock=clock)
        det_clock = _Ticker()
        coord.watch(group.replica("r0"), clock=det_clock)
        # One replica + one primary: a majority of 2 is 2, and the
        # dead primary cannot vote — Raft-style, no auto failover.
        assert coord.votes_needed() == 2
        det_clock.now = cfg.detector_horizon + 10
        assert coord.tick() is None

    def test_operator_vote_override(self, tmp_path):
        cfg = LeaseConfig(duration=1.0, margin=0.1,
                          renew_interval=0.2, election_votes=1)
        _, _, group, _, _ = _stack(tmp_path, cfg, replicas=1)
        coord = FailoverCoordinator(group, cfg)
        det_clock = _Ticker()
        coord.watch(group.replica("r0"), clock=det_clock)
        det_clock.now = cfg.detector_horizon + 10
        report = coord.tick()
        assert report is not None and report.chosen == "r0"

    def test_deterministic_winner(self, tmp_path):
        """Max applied_seq wins; lexicographically smallest name
        breaks ties."""
        cfg = LeaseConfig(duration=1.0, margin=0.1,
                          renew_interval=0.2)
        _, logged, group, _, _ = _stack(tmp_path, cfg, replicas=3)
        seq = logged.execute(Update.ins("teach", "gauss", "cs"))
        group.on_commit(seq)  # all three replicas apply it
        coord = FailoverCoordinator(group, cfg)
        clocks = {}
        for name in ("r0", "r1", "r2"):
            clocks[name] = _Ticker()
            coord.watch(group.replica(name), clock=clocks[name])
        for clock in clocks.values():
            clock.now = cfg.detector_horizon + 1
        report = coord.tick()
        assert report is not None
        assert report.chosen == "r0"  # tie on applied_seq: min name
        assert report.applied_seq == seq
        # Never stack a second election on the unconsumed term.
        for clock in clocks.values():
            clock.now += 100
        assert coord.tick() is None

    def test_election_blocked_below_candidate_quota(self, tmp_path):
        cfg = LeaseConfig(duration=1.0, margin=0.1,
                          renew_interval=0.2)
        _, _, group, _, _ = _stack(tmp_path, cfg, replicas=3)
        coord = FailoverCoordinator(group, cfg)
        clocks = {}
        for name in ("r0", "r1", "r2"):
            clocks[name] = _Ticker()
            coord.watch(group.replica(name), clock=clocks[name])
        group.replica("r0").crash()
        for clock in clocks.values():
            clock.now = cfg.detector_horizon + 1
        # sync(1) needs all 3 candidates; a crashed one blocks the
        # election rather than risking the acked prefix.
        assert coord.tick() is None
        group.replica("r0").restart()
        assert coord.tick() is not None


class TestFaults:
    def test_clock_skew_fault_offsets_one_node(self):
        FAULTS.arm("repl.lease.clock",
                   ClockSkewFault(offsets={"r0": 5.0}))
        base = _Ticker(100.0)
        skewed = LeaseClock("r0", base=base)
        straight = LeaseClock("r1", base=base)
        assert skewed() == pytest.approx(105.0)
        assert straight() == pytest.approx(100.0)

    def test_heartbeat_drop_fault(self, tmp_path):
        cfg = LeaseConfig(duration=1.0, margin=0.1,
                          renew_interval=0.2)
        _, _, group, lease, _ = _stack(tmp_path, cfg)
        FAULTS.arm("repl.lease.heartbeat", HeartbeatDropFault(rate=1.0))
        assert lease.renew_once() == 0
        FAULTS.disarm("repl.lease.heartbeat")
        # Bounded drops: the first round loses both links' beats, the
        # next succeeds.
        fault = HeartbeatDropFault(rate=1.0, times=2)
        FAULTS.arm("repl.lease.heartbeat", fault)
        assert lease.renew_once() == 0
        assert lease.renew_once() == 2
        assert fault.dropped == 2

    def test_heartbeat_drop_validates_rate(self):
        with pytest.raises(ValueError):
            HeartbeatDropFault(rate=1.5)


class TestTransportTimeouts:
    def test_recv_timeout_surfaces_and_recovers(self):
        release = threading.Event()

        def handler(message):
            if message.get("slow"):
                release.wait(2.0)
            return {"ok": True, "echo": message.get("n")}

        server = ReplicaServer(handler).start()
        try:
            transport = server.transport(timeout=5.0,
                                         recv_timeout=0.15)
            assert transport.request({"n": 1})["echo"] == 1
            with pytest.raises(TimeoutError):
                transport.request({"slow": True})
            release.set()
            # The timed-out connection was dropped; the next request
            # reconnects cleanly instead of reading the stale reply.
            assert transport.request({"n": 2})["echo"] == 2
        finally:
            release.set()
            server.stop()
            transport.close()

    def test_idle_timeout_reaps_connection(self):
        server = ReplicaServer(lambda m: {"ok": True},
                               idle_timeout=0.1).start()
        try:
            transport = server.transport(timeout=5.0)
            assert transport.request({})["ok"]
            time.sleep(0.3)  # server reaps the idle connection
            # First use of the dead socket is a retryable
            # ConnectionError; the reconnect then succeeds.
            try:
                reply = transport.request({})
            except ConnectionError:
                reply = transport.request({})
            assert reply["ok"]
        finally:
            server.stop()
            transport.close()

    def test_timeout_counts_toward_failure_detection(self, tmp_path):
        """A recv timeout on a shipping exchange is a missed renewal:
        the lease must lapse if every exchange times out."""
        clock = _Ticker()
        cfg = LeaseConfig(duration=1.0, margin=0.1,
                          renew_interval=0.2)
        _, _, group, lease, _ = _stack(tmp_path, cfg, replicas=0,
                                       clock=clock)

        class _BlackHole:
            name = "hole"
            partitioned = False

            def request(self, message):
                raise TimeoutError("exchange with hole timed out")

            def close(self):
                pass

        group.shipper.add("hole", _BlackHole())
        assert lease.needed_acks() == 1
        assert lease.renew_once() == 0
        clock.now = cfg.primary_validity + 0.01
        assert not lease.held()
        with pytest.raises(LeaseExpired):
            lease.check()


class TestServiceIntegration:
    def _service(self, tmp_path, cfg):
        workdir = tmp_path / "primary"
        workdir.mkdir()
        db = pupil_database()
        persistence.save(db, workdir / "snapshot.json", wal_applied=0)
        group = ReplicationGroup("sync(1)", ack_timeout=0.2,
                                 retry_interval=0.005)
        lease = group.enable_lease(cfg)
        service = DatabaseService(db, log=workdir / "wal.log",
                                  replication=group, node="primary")
        for i in range(2):
            replica = Replica(f"r{i}", tmp_path / f"r{i}")
            group.add_replica(replica.name, replica)
        return service, group, lease

    def test_writes_fail_fast_and_health_degrades(self, tmp_path):
        cfg = LeaseConfig(duration=0.3, margin=0.05,
                          renew_interval=0.05)
        service, group, lease = self._service(tmp_path, cfg)
        try:
            service.insert("teach", "gauss", "cs", deadline=5.0)
            assert service._health()["leaderless"] is False
            for link in group.shipper.links():
                link.transport.partitioned = True
            deadline = time.monotonic() + 3.0
            while lease.held() and time.monotonic() < deadline:
                time.sleep(0.01)
            assert not lease.held()
            with pytest.raises(ServiceReadOnly):
                service.insert("teach", "noether", "algebra",
                               deadline=5.0)
            verdict = service._health()
            assert verdict["leaderless"] is True
            assert verdict["healthy"] is False
        finally:
            service.close(timeout=5.0)

    def test_health_recovers_with_quorum(self, tmp_path):
        cfg = LeaseConfig(duration=0.3, margin=0.05,
                          renew_interval=0.05)
        service, group, lease = self._service(tmp_path, cfg)
        try:
            for link in group.shipper.links():
                link.transport.partitioned = True
            deadline = time.monotonic() + 3.0
            while lease.held() and time.monotonic() < deadline:
                time.sleep(0.01)
            for link in group.shipper.links():
                link.transport.partitioned = False
            lease.renew_once()
            assert lease.held()
            service.insert("teach", "gauss", "cs", deadline=5.0)
            assert service._health()["healthy"] is True
        finally:
            service.close(timeout=5.0)


class TestReplPromote:
    def test_promote_without_group(self):
        interp = Interpreter()
        out = interp.execute("promote")
        assert any("no replication group" in line for line in out)

    def test_promote_with_group(self, tmp_path):
        cfg = LeaseConfig(duration=1.0, margin=0.1,
                          renew_interval=0.2)
        _, logged, group, lease, _ = _stack(tmp_path, cfg)
        seq = logged.execute(Update.ins("teach", "gauss", "cs"))
        group.on_commit(seq)
        interp = Interpreter()
        interp.replication = group
        out = interp.execute("promote r1")
        assert any("promoted r1" in line for line in out)
        assert any("automatic elections stay armed" in line
                   for line in out)
        assert group.leaderless()  # until the new primary attaches

    def test_promote_parses_name_forms(self):
        from repro.lang.parser import parse_program

        bare, named, quoted = parse_program(
            'promote ; promote r1 ; promote "old-primary"'
        )
        assert bare.name is None
        assert named.name == "r1"
        assert quoted.name == "old-primary"

    def test_help_mentions_promote(self):
        out = Interpreter().execute("help")
        assert any("promote" in line for line in out)


class TestObservabilitySurfaces:
    def test_render_replication_lease_row(self, tmp_path):
        cfg = LeaseConfig(duration=1.0, margin=0.1,
                          renew_interval=0.2)
        _, _, group, _, _ = _stack(tmp_path, cfg)
        text = render_replication(group.health())
        assert "lease: HELD" in text
        assert "quorum 1" in text

    def test_monitor_and_timeline_show_lease_lifecycle(self, tmp_path):
        sink = OBS.events.add_sink(RingBufferSink(capacity=4096))
        OBS.enable()
        clock = _Ticker()
        cfg = LeaseConfig(duration=1.0, margin=0.1,
                          renew_interval=0.2)
        _, logged, group, lease, term = _stack(tmp_path, cfg,
                                               clock=clock)
        lease.renew_once()
        clock.now = 2.0
        with pytest.raises(LeaseExpired):
            group.check_primary(term)
        coord = FailoverCoordinator(group, cfg)
        det_clock = _Ticker()
        for name in ("r0", "r1"):
            coord.watch(group.replica(name), clock=det_clock)
        det_clock.now = cfg.detector_horizon + 1
        report = coord.tick()
        assert report is not None

        monitor = render_monitor(OBS.metrics.snapshot())
        assert "lease: LAPSED" in monitor
        assert "elections" in monitor

        timeline = replication_timeline(list(sink.records))
        kinds = {entry.kind for entry in timeline}
        assert {"lease_grant", "lease_renew",
                "lease_expire", "elect"} <= kinds
        assert not timeline.fence_violations()
        text = render_timeline(timeline)
        assert "lease" in text
        assert "elect" in text
