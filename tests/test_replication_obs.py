"""Distributed replication observability: cross-node trace
propagation through the shipping frames, the commit-pipeline
instruments, snapshot-frame compression, wire compatibility of
trace-carrying frames, the failover audit timeline, and the lag SLO.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.fdb import persistence
from repro.fdb.logic import Truth
from repro.fdb.updates import Update
from repro.fdb.wal import UpdateLog
from repro.obs import (
    OBS,
    RingBufferSink,
    propagation_dag,
    render_timeline,
    replication_timeline,
)
from repro.obs.slo import replication_lag_objective
from repro.replication import Replica, ReplicaServer, ReplicationGroup
from repro.replication.transport import (
    SNAPSHOT_ENCODING,
    decode_snapshot,
    encode_snapshot,
)
from repro.service import DatabaseService
from repro.workloads.university import pupil_database


def _scrub():
    OBS.disable()
    OBS.reset()
    OBS.metrics.clear()
    OBS.events.clear_sinks()


@pytest.fixture(autouse=True)
def clean_obs():
    _scrub()
    yield
    _scrub()


@pytest.fixture
def ring():
    sink = RingBufferSink(capacity=8192)
    OBS.events.add_sink(sink)
    OBS.enable()
    return sink


def _service(tmp_path, mode="sync(2)", replicas=2, name="primary",
             **kwargs):
    workdir = tmp_path / name
    workdir.mkdir()
    db = pupil_database()
    persistence.save(db, workdir / "snapshot.json", wal_applied=0)
    group = ReplicationGroup(mode, ack_timeout=2.0,
                             retry_interval=0.005)
    service = DatabaseService(db, log=workdir / "wal.log",
                              replication=group, node=name, **kwargs)
    for i in range(replicas):
        group.add_replica(f"r{i}", Replica(f"r{i}", tmp_path / f"r{i}"))
    return service, group, workdir


def _spans(records, name):
    return [r for r in records if r.kind == "span.end" and r.name == name]


class TestCrossNodeTrace:
    def test_one_commit_is_one_trace_across_nodes(self, tmp_path, ring):
        service, group, _ = _service(tmp_path)
        service.insert("teach", "gauss", "cs")
        records = list(ring.records)

        requests = _spans(records, "service.request")
        ships = _spans(records, "replication.ship")
        receives = _spans(records, "replication.receive")
        appends = _spans(records, "replica.wal_append")
        applies = _spans(records, "replica.apply")
        acks = _spans(records, "replication.ack")
        assert len(requests) == 1
        assert len(ships) == 2 and len(receives) == 2
        assert len(appends) == 2 and len(applies) == 2
        assert len(acks) == 2

        request_ids = {r.span_id for r in requests}
        ship_ids = {r.span_id for r in ships}
        receive_ids = {r.span_id for r in receives}
        assert all(s.parent_span in request_ids for s in ships)
        assert all(r.parent_span in ship_ids for r in receives)
        assert all(s.parent_span in receive_ids
                   for s in appends + applies + acks)
        # Both replicas appear, each with its own pipeline.
        assert {str(r.attrs["replica"]) for r in receives} == {"r0", "r1"}

    def test_propagation_dag_folds_the_pipeline(self, tmp_path, ring):
        service, group, _ = _service(tmp_path)
        service.insert("teach", "gauss", "cs")
        dag = propagation_dag(list(ring.records))
        labels = {}
        for node in dag.nodes:
            labels.setdefault(node.label.split("\n")[0], []).append(
                node.node_id)
        assert len(labels["replication.receive"]) == 2
        assert len(labels["replica.apply"]) == 2
        # Each receive hangs off a ship node: the edges cross nodes.
        edge_pairs = {(src, dst) for src, dst, _ in dag.edges}
        for receive in labels["replication.receive"]:
            assert any(src in labels["replication.ship"]
                       and dst == receive
                       for src, dst in edge_pairs)

    def test_frame_without_trace_context_still_applies(self, tmp_path,
                                                       ring):
        # A primary with tracing off ships frames without the trace
        # key; the replica must apply them and open unparented spans.
        service, group, _ = _service(tmp_path)
        OBS.disable()
        service.insert("teach", "gauss", "cs")
        OBS.enable()
        service.insert("teach", "noether", "algebra")
        assert group.replica("r0").applied_seq == 2

    def test_pipeline_stats_cover_all_stages(self, tmp_path, ring):
        service, group, _ = _service(tmp_path)
        service.insert("teach", "gauss", "cs")
        stats = group.pipeline_stats()
        for replica in ("r0", "r1"):
            stages = stats.get(replica, {})
            for stage in ("ship_rtt", "wal_append", "apply",
                          "commit_ack"):
                assert stages.get(stage, {}).get("count", 0) >= 1, \
                    f"{replica}/{stage} unobserved"

    def test_disabled_telemetry_ships_bare_frames(self, tmp_path):
        captured = []
        service, group, _ = _service(tmp_path, mode="sync(1)",
                                     replicas=1)
        link = group.shipper.link("r0")
        original = link.transport.request

        def spy(message):
            captured.append(message)
            return original(message)

        link.transport.request = spy
        service.insert("teach", "gauss", "cs")
        appends = [m for m in captured if m["type"] == "append"]
        assert appends and all("trace" not in m for m in appends)


class TestFailoverTraceContinuity:
    def _failover(self, tmp_path, ring):
        service, group, workdir = _service(tmp_path, mode="sync(1)")
        service.insert("teach", "gauss", "cs")  # old-term commit
        for link in group.shipper.links():
            link.transport.partitioned = True
        group.ack_timeout = 0.1
        with pytest.raises(Exception):
            service.insert("teach", "lost", "tail")
        for link in group.shipper.links():
            link.transport.partitioned = False
        promotion = group.promote()
        service.close(timeout=5.0)
        chosen = group.replica(promotion.chosen)
        group.remove_replica(promotion.chosen)
        new_service = DatabaseService(
            chosen.db, log=UpdateLog(chosen.wal_path),
            replication=group, node=promotion.chosen,
        )
        new_service.insert("teach", "hilbert", "logic")  # new term
        new_service.close(timeout=5.0)
        return promotion

    def test_two_disjoint_term_pipelines(self, tmp_path, ring):
        promotion = self._failover(tmp_path, ring)
        records = list(ring.records)
        ships = _spans(records, "replication.ship")
        terms = {int(str(s.attrs["term"])) for s in ships}
        assert {promotion.old_term, promotion.new_term} <= terms
        receives = _spans(records, "replication.receive")
        by_term = {}
        for r in receives:
            by_term.setdefault(int(str(r.attrs["term"])), set()).add(
                r.span_id)
        # The two term pipelines share no spans: disjoint subtrees.
        assert by_term[promotion.old_term].isdisjoint(
            by_term[promotion.new_term])
        old_parents = {r.parent_span for r in receives
                       if int(str(r.attrs["term"])) == promotion.old_term}
        new_parents = {r.parent_span for r in receives
                       if int(str(r.attrs["term"])) == promotion.new_term}
        assert old_parents.isdisjoint(new_parents)

    def test_timeline_orders_fence_before_new_term_commits(
            self, tmp_path, ring):
        promotion = self._failover(tmp_path, ring)
        timeline = replication_timeline(list(ring.records))
        assert timeline.fence_violations() == []
        fences = timeline.of_kind("fence")
        assert len(fences) == 1
        fence = fences[0]
        assert fence.term == promotion.old_term
        assert fence.fence_seq == promotion.applied_seq
        new_commits = timeline.commits(term=promotion.new_term)
        assert new_commits
        assert all(c.order > fence.order for c in new_commits)
        old_commits = timeline.commits(term=promotion.old_term)
        assert all(c.order < fence.order for c in old_commits
                   if c.commit_seq is not None
                   and c.commit_seq <= fence.fence_seq)
        # The fence entry carries the surviving links' ack state (the
        # chosen replica has already left the follower set).
        acks = json.loads(fence.attrs["acks"])
        assert set(acks) == {"r0", "r1"} - {promotion.chosen}
        survivor = acks[next(iter(acks))]
        assert set(survivor) == {"acked_seq", "acked_term",
                                 "needs_snapshot"}

    def test_render_timeline_flags_nothing_on_a_clean_failover(
            self, tmp_path, ring):
        self._failover(tmp_path, ring)
        timeline = replication_timeline(list(ring.records))
        text = render_timeline(timeline)
        assert "ORDER VIOLATED" not in text
        assert "fence" in text and "promote" in text


class TestSnapshotCompression:
    def test_round_trip(self):
        text = json.dumps({"k": ["v"] * 200})
        payload, encoding, raw, wire = encode_snapshot(text)
        assert encoding == SNAPSHOT_ENCODING
        assert raw == len(text.encode("utf-8"))
        assert wire < raw  # repetitive JSON must actually compress
        assert decode_snapshot(payload, encoding) == text

    def test_uncompressed_frames_stay_readable(self):
        assert decode_snapshot("plain dump", None) == "plain dump"
        assert decode_snapshot("plain dump", "") == "plain dump"

    def test_unknown_encoding_is_refused(self):
        with pytest.raises(ValueError):
            decode_snapshot("payload", "lz9")

    def test_corrupt_payload_is_refused(self):
        with pytest.raises(ValueError):
            decode_snapshot("!!not-base64!!", SNAPSHOT_ENCODING)

    def test_catch_up_counts_bytes_both_sides(self, tmp_path, ring):
        service, group, _ = _service(tmp_path, replicas=1)
        counters = OBS.metrics.snapshot()["counters"]
        raw = counters.get("replication.snapshot.bytes_raw", 0)
        wire = counters.get("replication.snapshot.bytes_wire", 0)
        assert raw > 0 and 0 < wire < raw
        assert counters.get("replication.snapshot.catch_ups", 0) >= 1
        assert group.replica("r0").db is not None


class TestFrameCompatibility:
    def test_socket_frames_round_trip_unknown_keys(self, tmp_path,
                                                   ring):
        # An append frame carrying the trace context plus a key no
        # replica knows about must be applied, not refused — the wire
        # protocol is schemaless so older peers skip what they don't
        # understand.
        workdir = tmp_path / "primary"
        workdir.mkdir()
        db = pupil_database()
        persistence.save(db, workdir / "snapshot.json", wal_applied=0)
        from repro.fdb.wal import LoggedDatabase

        logged = LoggedDatabase(db, workdir / "wal.log")
        replica = Replica("r0", tmp_path / "r0")
        server = ReplicaServer(replica.handle)
        server.start()
        try:
            group = ReplicationGroup("sync(1)", ack_timeout=2.0,
                                     retry_interval=0.005)
            group.attach_primary(logged)
            group.add_replica("r0", server.transport())
            transport = group.shipper.link("r0").transport
            # With telemetry on, the shipped frame carries "trace".
            seq = logged.execute(Update.ins("teach", "gauss", "cs"))
            group.on_commit(seq)
            assert replica.applied_seq == seq
            assert replica.db.truth_of(
                "teach", "gauss", "cs") is Truth.TRUE
            # A hand-built frame with trace AND an unknown field.
            reply = transport.request({
                "type": "status",
                "trace": {"parent_span": 7, "cause": "u1"},
                "x-future-extension": {"nested": [1, 2]},
            })
            assert reply["applied_seq"] == seq
        finally:
            server.stop()

    def test_frame_missing_trace_context_over_socket(self, tmp_path):
        # Telemetry off end to end: no trace key anywhere, replica
        # applies regardless (backward compatibility).
        workdir = tmp_path / "primary"
        workdir.mkdir()
        db = pupil_database()
        persistence.save(db, workdir / "snapshot.json", wal_applied=0)
        from repro.fdb.wal import LoggedDatabase

        logged = LoggedDatabase(db, workdir / "wal.log")
        replica = Replica("r0", tmp_path / "r0")
        server = ReplicaServer(replica.handle)
        server.start()
        try:
            group = ReplicationGroup("sync(1)", ack_timeout=2.0,
                                     retry_interval=0.005)
            group.attach_primary(logged)
            group.add_replica("r0", server.transport())
            seq = logged.execute(Update.ins("teach", "gauss", "cs"))
            group.on_commit(seq)
            assert replica.applied_seq == seq
        finally:
            server.stop()


class TestLagSLO:
    def test_objective_registered_by_default(self, tmp_path, ring):
        service, group, _ = _service(tmp_path)
        names = [o.name for o in service.slo.objectives]
        assert "replication.lag" in names

    def test_lag_breach_turns_health_503(self, tmp_path, ring):
        service, group, _ = _service(
            tmp_path, mode="async",
            objectives=[replication_lag_objective(threshold_seq=0.5)],
        )
        service.insert("teach", "gauss", "cs")
        verdicts = service.slo.evaluate()
        assert all(v.ok for v in verdicts)
        # Partition the replicas and commit past them: worst lag > 0.5.
        for link in group.shipper.links():
            link.transport.partitioned = True
        service.insert("teach", "noether", "algebra")
        service.insert("teach", "hilbert", "logic")
        group.lag()
        service.slo.evaluate()
        assert "replication.lag" in service.slo.alerts
        service.serve_metrics()
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    service.endpoint.url + "/health", timeout=5)
            assert excinfo.value.code == 503
            body = json.loads(excinfo.value.read().decode("utf-8"))
            assert "replication.lag" in body["slo_alerts"]
        finally:
            for link in group.shipper.links():
                link.transport.partitioned = False
            service.close(timeout=5.0)

    def test_recovery_clears_the_alert(self, tmp_path, ring):
        import time

        # A short window so the breach sample ages out of the fast
        # window quickly once the replicas catch back up.
        service, group, _ = _service(
            tmp_path, mode="async",
            objectives=[replication_lag_objective(threshold_seq=0.5,
                                                  window=0.6)],
        )
        for link in group.shipper.links():
            link.transport.partitioned = True
        service.insert("teach", "gauss", "cs")
        service.slo.evaluate()
        assert "replication.lag" in service.slo.alerts
        for link in group.shipper.links():
            link.transport.partitioned = False
        group.sync_all(timeout=5.0)
        deadline = time.monotonic() + 2.0
        while time.monotonic() < deadline:
            service.slo.evaluate()
            if "replication.lag" not in service.slo.alerts:
                break
            time.sleep(0.05)
        assert "replication.lag" not in service.slo.alerts
