"""Property tests for the shipping protocol and the leadership lease
(seeded randoms).

The replication tentpole's core claim: a replica bootstrapped from
*any* intermediate checkpoint of the primary and fed the shipped WAL
stream from that point on ends up byte-for-byte identical to the
primary — including derived-function side-effects (materialised NVC
chains) and the indices of the nulls they mint. Update application is
deterministic because null and NC counters are persisted in the
snapshot, so every bootstrap point must converge to the same state.

The lease tests drive randomized partition / heal / clock-skew
schedules on a *virtual* clock (no sleeps, fully deterministic) and
assert the lease safety argument directly: at most one node holds a
valid lease at any instant — an election can only happen strictly
after the primary self-demoted, with at least the configured drift
margin of real time in between — and every acknowledged commit
survives to the finally elected primary.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.errors import (
    LeaseExpired,
    ReplicationTimeout,
    ReproError,
    StalePrimary,
)
from repro.fdb import persistence
from repro.fdb.database import FunctionalDatabase
from repro.fdb.updates import Update
from repro.fdb.wal import LoggedDatabase
from repro.replication import (
    FailoverCoordinator,
    LeaseConfig,
    Replica,
    ReplicationGroup,
    WalShipper,
)
from repro.workloads.university import pupil_database

_FACULTY = tuple(f"f{i}" for i in range(5))
_COURSES = tuple(f"c{i}" for i in range(4))
_STUDENTS = tuple(f"s{i}" for i in range(5))

_DOMAINS = {
    "teach": (_FACULTY, _COURSES),
    "class_list": (_COURSES, _STUDENTS),
    "pupil": (_FACULTY, _STUDENTS),  # derived: inserts mint nulls
}


def _random_update(rng: random.Random) -> Update:
    name = rng.choice(tuple(_DOMAINS))
    xs, ys = _DOMAINS[name]
    x, y = rng.choice(xs), rng.choice(ys)
    roll = rng.random()
    if roll < 0.6:
        return Update.ins(name, x, y)
    if roll < 0.9:
        return Update.delete(name, x, y)
    return Update.rep(name, (x, y), (rng.choice(xs), rng.choice(ys)))


def _state_fingerprint(db: FunctionalDatabase) -> dict:
    """Everything the paper's machinery stores, printable form:
    stored facts with flags and NC labels, plus both index counters
    (null and NC), so two equal fingerprints mean replaying either
    copy forward stays equal."""
    return {
        "tables": {name: db.table(name).rows()
                   for name in db.base_names},
        "next_null_index": db.nulls.next_index,
        "next_nc_index": db.ncs.next_index,
        "ncs": len(db.ncs),
    }


@pytest.mark.parametrize("seed", [0, 1, 7])
def test_replay_from_any_checkpoint_matches_primary(tmp_path, seed):
    rng = random.Random(seed)
    workdir = tmp_path / "primary"
    workdir.mkdir()
    db = pupil_database()
    logged = LoggedDatabase(db, workdir / "wal.log")
    shipper = WalShipper(logged.log, term=1, journal=True)

    # Drive the primary through a random update stream, dumping a
    # checkpoint snapshot at every commit boundary. Failed updates
    # leave an abort record in the stream — replicas must skip those
    # exactly as local replay does.
    checkpoints = {0: persistence.dumps(db, wal_applied=0, term=1)}
    for _ in range(24):
        update = _random_update(rng)
        try:
            logged.execute(update)
        except Exception:
            pass  # aborted: compensation record is in the stream
        seq = logged.log.last_seq()
        shipper.journal_through(seq)
        checkpoints[seq] = persistence.dumps(db, wal_applied=seq,
                                             term=1)

    head = logged.log.last_seq()
    assert head > 0
    stream = shipper.journal()
    expected = _state_fingerprint(db)

    for start, snapshot_text in checkpoints.items():
        replica = Replica(f"r{start}", tmp_path / f"r{start}")
        reply = replica.handle({
            "type": "snapshot", "term": 1,
            "snapshot": snapshot_text, "wal_applied": start,
        })
        assert reply["ok"], (start, reply)
        tail = [line for seq, line in stream if seq > start]
        reply = replica.handle({
            "type": "append", "term": 1,
            "records": tail, "through_seq": head,
        })
        assert reply["ok"], (start, reply)
        assert replica.applied_seq == head
        got = _state_fingerprint(replica.db)
        assert got == expected, f"bootstrap at seq {start} diverged"


@pytest.mark.parametrize("seed", [3, 11])
def test_crash_restart_mid_stream_converges(tmp_path, seed):
    """A replica that crashes after every batch and restarts from its
    working directory alone still converges to the primary."""
    rng = random.Random(seed)
    workdir = tmp_path / "primary"
    workdir.mkdir()
    db = pupil_database()
    logged = LoggedDatabase(db, workdir / "wal.log")
    shipper = WalShipper(logged.log, term=1, journal=True)

    replica = Replica("r0", tmp_path / "r0")
    replica.handle({
        "type": "snapshot", "term": 1,
        "snapshot": persistence.dumps(db, wal_applied=0, term=1),
        "wal_applied": 0,
    })

    for _ in range(16):
        try:
            logged.execute(_random_update(rng))
        except Exception:
            pass
        seq = logged.log.last_seq()
        shipper.journal_through(seq)
        tail = [line for s, line in shipper.journal()
                if s > replica.applied_seq]
        reply = replica.handle({
            "type": "append", "term": 1,
            "records": tail, "through_seq": seq,
        })
        assert reply["ok"]
        replica.crash()
        replica.restart()
        assert replica.applied_seq == seq

    assert _state_fingerprint(replica.db) == _state_fingerprint(db)


# -- lease safety under randomized partition / heal / skew ---------------------


class _World:
    """A shared virtual timeline; per-node clocks are constant-offset
    views of it (offsets bounded by the lease margin, as the protocol
    assumes)."""

    def __init__(self) -> None:
        self.now = 0.0


def _node_clock(world: _World, offset: float):
    return lambda: world.now + offset


def _lease_stack(tmp_path, seed: int, replicas: int,
                 cfg: LeaseConfig):
    """A replicated group with lease + detectors + coordinator, all on
    virtual per-node clocks with random bounded skew."""
    rng = random.Random(seed)
    world = _World()
    skews = {"primary": rng.uniform(-cfg.margin, cfg.margin)}
    workdir = tmp_path / "primary"
    workdir.mkdir()
    db = pupil_database()
    persistence.save(db, workdir / "snapshot.json", wal_applied=0)
    logged = LoggedDatabase(db, workdir / "wal.log")
    group = ReplicationGroup("sync(1)", ack_timeout=0.05,
                             retry_interval=0.005)
    lease = group.enable_lease(
        cfg, clock=_node_clock(world, skews["primary"])
    )
    term = group.attach_primary(logged, node="primary")
    coord = FailoverCoordinator(
        group, cfg, clock=_node_clock(world, 0.0)
    )
    for i in range(replicas):
        name = f"r{i}"
        skews[name] = rng.uniform(-cfg.margin, cfg.margin)
        replica = Replica(name, tmp_path / name)
        group.add_replica(name, replica)
        coord.watch(replica, clock=_node_clock(world, skews[name]))
    return world, skews, rng, logged, group, lease, coord, term


@pytest.mark.parametrize("seed", [0, 1, 5, 9])
def test_election_only_after_demotion_under_skew(tmp_path, seed):
    """Randomized partition/heal schedule with per-node clock skew up
    to the margin: no election may run while the lease is held, and
    when one does run, at least ``margin`` of real (virtual) time must
    already separate it from the primary's self-demotion instant.
    Every acked commit must survive to the elected primary."""
    cfg = LeaseConfig(duration=0.5, margin=0.1, renew_interval=0.08,
                      check_interval=0.01)
    (world, skews, rng, logged, group, lease, coord,
     term) = _lease_stack(tmp_path, seed, replicas=3, cfg=cfg)
    links = {link.name: link for link in group.shipper.links()}
    acked: list[int] = []
    last_renew = 0.0
    report = None
    forced_at = None
    steps = 0
    while report is None and steps < 400:
        steps += 1
        world.now += rng.uniform(0.01, 0.15)
        if forced_at is None:
            # The random phase: links flap independently.
            for link in links.values():
                if rng.random() < 0.2:
                    link.transport.partitioned = \
                        not link.transport.partitioned
            if steps > 40:
                # Force convergence: isolate the primary for good.
                for link in links.values():
                    link.transport.partitioned = True
                forced_at = world.now
        if world.now - last_renew >= cfg.renew_interval:
            last_renew = world.now
            lease.renew_once()
        held_before = lease.held()
        if held_before and forced_at is None and rng.random() < 0.5:
            try:
                group.check_primary(term)
                seq = logged.execute(
                    Update.ins("teach", f"prof{steps}", "cs")
                )
                try:
                    group.on_commit(seq)
                    acked.append(seq)
                except ReplicationTimeout:
                    pass  # durable locally, acked by nobody
            except LeaseExpired:
                # Lapsed between the held() sample and the write.
                assert not lease.held()
            except ReproError:
                pass
        # The primary's lapse instant on the shared timeline: its
        # validity window past the quorum watermark, skew removed.
        mark = lease.watermark()
        lapse_world = (
            None if mark is None
            else mark + cfg.primary_validity - skews["primary"]
        )
        report = coord.tick()
        if report is not None:
            # Election while the lease is held would mean two writers.
            assert not held_before
            assert not lease.held()
            assert lapse_world is not None
            gap = world.now - lapse_world
            assert gap >= cfg.margin - 1e-9, (
                f"election {gap:.3f}s after demotion, need "
                f">= margin {cfg.margin}"
            )
    assert report is not None, "no election despite full isolation"
    assert len(coord.elections) == 1

    # The deposed primary is turned away before its WAL from now on.
    wal_before = logged.log.last_seq()
    with pytest.raises(StalePrimary):
        group.check_primary(term)
    assert logged.log.last_seq() == wal_before

    # Every acked commit survived into the elected history.
    fence = group.fence_seq(term)
    lost = [seq for seq in acked if seq > fence]
    assert not lost, f"acked commits lost by the election: {lost}"
    assert not acked or report.applied_seq >= max(acked)

    # The new primary attaches, is granted the lease, and writes.
    chosen = group.replica(report.chosen)
    group.remove_replica(report.chosen)
    new_logged = LoggedDatabase(chosen.db, chosen.wal_path)
    new_term = group.attach_primary(new_logged, node=report.chosen)
    assert lease.held()
    group.check_primary(new_term)
    with pytest.raises(StalePrimary):
        group.check_primary(term)


@pytest.mark.parametrize("seed", [2, 7])
def test_lease_recovers_without_election_on_fast_heal(tmp_path, seed):
    """A partition shorter than the detector horizon must *not* elect:
    the lease lapses on the primary (writes refused — the safe side),
    then recovers under the same term once a quorum answers again."""
    cfg = LeaseConfig(duration=0.5, margin=0.1, renew_interval=0.08,
                      check_interval=0.01)
    (world, skews, rng, logged, group, lease, coord,
     term) = _lease_stack(tmp_path, seed, replicas=3, cfg=cfg)
    links = {link.name: link for link in group.shipper.links()}
    lease.renew_once()
    assert lease.held()

    for link in links.values():
        link.transport.partitioned = True
    # Past the primary's validity window but inside the detectors'
    # horizon: self-demoted, not yet electable.
    world.now += cfg.primary_validity + cfg.margin / 2
    lease.renew_once()
    assert not lease.held()
    with pytest.raises(LeaseExpired):
        group.check_primary(term)
    assert coord.tick() is None

    for link in links.values():
        link.transport.partitioned = False
    lease.renew_once()
    assert lease.held()
    group.check_primary(term)  # same term, no fence, no election
    assert coord.tick() is None
    assert not coord.elections
    assert group.term == term


def test_acked_commits_survive_automatic_failover(tmp_path):
    """Real clocks, real threads: the renewer and coordinator run as
    they do in production; killing the primary must elect exactly one
    new leader that holds every acked commit."""
    cfg = LeaseConfig(duration=0.3, margin=0.05, renew_interval=0.05,
                      check_interval=0.01)
    workdir = tmp_path / "primary"
    workdir.mkdir()
    db = pupil_database()
    persistence.save(db, workdir / "snapshot.json", wal_applied=0)
    logged = LoggedDatabase(db, workdir / "wal.log")
    group = ReplicationGroup("sync(1)", ack_timeout=1.0,
                             retry_interval=0.005)
    lease = group.enable_lease(cfg)
    term = group.attach_primary(logged, node="primary")
    coord = FailoverCoordinator(group, cfg)
    for i in range(2):
        replica = Replica(f"r{i}", tmp_path / f"r{i}")
        group.add_replica(replica.name, replica)
        coord.watch(replica)
    lease.start()
    coord.start()
    try:
        acked = []
        for i in range(8):
            group.check_primary(term)
            seq = logged.execute(Update.ins("teach", f"p{i}", "cs"))
            group.on_commit(seq)
            acked.append(seq)
        for link in group.shipper.links():
            link.transport.partitioned = True
        deadline = time.monotonic() + 5.0
        while not coord.elections and time.monotonic() < deadline:
            time.sleep(0.01)
        assert coord.elections, "no automatic election"
        assert len(coord.elections) == 1
        report = coord.elections[0]
        assert report.applied_seq >= max(acked)
        assert all(seq <= group.fence_seq(term) for seq in acked)
        with pytest.raises(StalePrimary):
            group.check_primary(term)

        chosen = group.replica(report.chosen)
        group.remove_replica(report.chosen)
        new_logged = LoggedDatabase(chosen.db, chosen.wal_path)
        new_term = group.attach_primary(new_logged,
                                        node=report.chosen)
        group.check_primary(new_term)
        seq = new_logged.execute(Update.ins("teach", "new", "math"))
        group.on_commit(seq)
        assert lease.held()
        # Still exactly one election: the new leader's beats keep the
        # remaining detector quiet.
        time.sleep(cfg.detector_horizon + 0.1)
        assert len(coord.elections) == 1
    finally:
        coord.stop()
        lease.stop()
