"""Property test for the shipping protocol (seeded randoms).

The replication tentpole's core claim: a replica bootstrapped from
*any* intermediate checkpoint of the primary and fed the shipped WAL
stream from that point on ends up byte-for-byte identical to the
primary — including derived-function side-effects (materialised NVC
chains) and the indices of the nulls they mint. Update application is
deterministic because null and NC counters are persisted in the
snapshot, so every bootstrap point must converge to the same state.
"""

from __future__ import annotations

import random

import pytest

from repro.fdb import persistence
from repro.fdb.database import FunctionalDatabase
from repro.fdb.updates import Update
from repro.fdb.wal import LoggedDatabase
from repro.replication import Replica, WalShipper
from repro.workloads.university import pupil_database

_FACULTY = tuple(f"f{i}" for i in range(5))
_COURSES = tuple(f"c{i}" for i in range(4))
_STUDENTS = tuple(f"s{i}" for i in range(5))

_DOMAINS = {
    "teach": (_FACULTY, _COURSES),
    "class_list": (_COURSES, _STUDENTS),
    "pupil": (_FACULTY, _STUDENTS),  # derived: inserts mint nulls
}


def _random_update(rng: random.Random) -> Update:
    name = rng.choice(tuple(_DOMAINS))
    xs, ys = _DOMAINS[name]
    x, y = rng.choice(xs), rng.choice(ys)
    roll = rng.random()
    if roll < 0.6:
        return Update.ins(name, x, y)
    if roll < 0.9:
        return Update.delete(name, x, y)
    return Update.rep(name, (x, y), (rng.choice(xs), rng.choice(ys)))


def _state_fingerprint(db: FunctionalDatabase) -> dict:
    """Everything the paper's machinery stores, printable form:
    stored facts with flags and NC labels, plus both index counters
    (null and NC), so two equal fingerprints mean replaying either
    copy forward stays equal."""
    return {
        "tables": {name: db.table(name).rows()
                   for name in db.base_names},
        "next_null_index": db.nulls.next_index,
        "next_nc_index": db.ncs.next_index,
        "ncs": len(db.ncs),
    }


@pytest.mark.parametrize("seed", [0, 1, 7])
def test_replay_from_any_checkpoint_matches_primary(tmp_path, seed):
    rng = random.Random(seed)
    workdir = tmp_path / "primary"
    workdir.mkdir()
    db = pupil_database()
    logged = LoggedDatabase(db, workdir / "wal.log")
    shipper = WalShipper(logged.log, term=1, journal=True)

    # Drive the primary through a random update stream, dumping a
    # checkpoint snapshot at every commit boundary. Failed updates
    # leave an abort record in the stream — replicas must skip those
    # exactly as local replay does.
    checkpoints = {0: persistence.dumps(db, wal_applied=0, term=1)}
    for _ in range(24):
        update = _random_update(rng)
        try:
            logged.execute(update)
        except Exception:
            pass  # aborted: compensation record is in the stream
        seq = logged.log.last_seq()
        shipper.journal_through(seq)
        checkpoints[seq] = persistence.dumps(db, wal_applied=seq,
                                             term=1)

    head = logged.log.last_seq()
    assert head > 0
    stream = shipper.journal()
    expected = _state_fingerprint(db)

    for start, snapshot_text in checkpoints.items():
        replica = Replica(f"r{start}", tmp_path / f"r{start}")
        reply = replica.handle({
            "type": "snapshot", "term": 1,
            "snapshot": snapshot_text, "wal_applied": start,
        })
        assert reply["ok"], (start, reply)
        tail = [line for seq, line in stream if seq > start]
        reply = replica.handle({
            "type": "append", "term": 1,
            "records": tail, "through_seq": head,
        })
        assert reply["ok"], (start, reply)
        assert replica.applied_seq == head
        got = _state_fingerprint(replica.db)
        assert got == expected, f"bootstrap at seq {start} diverged"


@pytest.mark.parametrize("seed", [3, 11])
def test_crash_restart_mid_stream_converges(tmp_path, seed):
    """A replica that crashes after every batch and restarts from its
    working directory alone still converges to the primary."""
    rng = random.Random(seed)
    workdir = tmp_path / "primary"
    workdir.mkdir()
    db = pupil_database()
    logged = LoggedDatabase(db, workdir / "wal.log")
    shipper = WalShipper(logged.log, term=1, journal=True)

    replica = Replica("r0", tmp_path / "r0")
    replica.handle({
        "type": "snapshot", "term": 1,
        "snapshot": persistence.dumps(db, wal_applied=0, term=1),
        "wal_applied": 0,
    })

    for _ in range(16):
        try:
            logged.execute(_random_update(rng))
        except Exception:
            pass
        seq = logged.log.last_seq()
        shipper.journal_through(seq)
        tail = [line for s, line in shipper.journal()
                if s > replica.applied_seq]
        reply = replica.handle({
            "type": "append", "term": 1,
            "records": tail, "through_seq": seq,
        })
        assert reply["ok"]
        replica.crash()
        replica.restart()
        assert replica.applied_seq == seq

    assert _state_fingerprint(replica.db) == _state_fingerprint(db)
