"""A small-matrix run of the replication chaos soak.

The full matrix (``python -m repro.faults --soak --replicas 2``) runs
in CI's ``replication-soak`` job; this keeps a scaled-down failover
cell in the regular test suite so the no-acked-loss invariant is
exercised on every run, not just nightly.
"""

from __future__ import annotations

from repro.faults.replication import (
    ReplicationSoakConfig,
    run_replication_soak,
)


def test_small_soak_matrix_holds_invariants(tmp_path):
    config = ReplicationSoakConfig(
        replicas=2,
        threads=2,
        ops_per_thread=8,
        seed=5,
        modes=("sync(1)",),
        scenarios=("partition", "primary_kill"),
        ack_timeout=1.0,
        wall_clock_limit=60.0,
        workdir=str(tmp_path),
        serve_endpoint=False,
    )
    report = run_replication_soak(config)
    assert report.ok, "\n".join(report.lines())
    assert len(report.cells) == 2
    assert report.promotions >= 1  # the primary_kill cell failed over
    assert report.fenced_writes >= 1
    assert report.rejoins >= 1
    kill = next(c for c in report.cells
                if c.scenario == "primary_kill")
    assert kill.promotion is not None
    assert kill.fence_seq is not None
    # every acked op survived: the cell records failures otherwise
    assert not kill.failures
