"""Tests for function definitions and schema containers."""

from __future__ import annotations

import pytest

from repro.core.schema import FunctionDef, Schema
from repro.core.types import ObjectType, TypeFunctionality, product_type
from repro.errors import (
    DuplicateFunctionError,
    SchemaError,
    UnknownFunctionError,
)

A = ObjectType("A")
B = ObjectType("B")
C = ObjectType("C")


def fd(name: str, dom=A, rng=B,
       tf=TypeFunctionality.MANY_MANY) -> FunctionDef:
    return FunctionDef(name, dom, rng, tf)


class TestFunctionDef:
    def test_str_matches_paper_notation(self):
        f = FunctionDef(
            "cutoff", ObjectType("marks"), ObjectType("letter_grade"),
            TypeFunctionality.MANY_ONE,
        )
        assert str(f) == "cutoff: marks -> letter_grade; (many-one)"

    def test_str_with_product_domain(self):
        f = FunctionDef(
            "grade", product_type("student", "course"),
            ObjectType("letter_grade"), TypeFunctionality.MANY_ONE,
        )
        assert str(f) == (
            "grade: [student; course] -> letter_grade; (many-one)"
        )

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            FunctionDef("", A, B)

    def test_default_functionality_is_many_many(self):
        assert fd("f").functionality == TypeFunctionality.MANY_MANY

    def test_syntactic_equivalence(self):
        assert fd("f").syntactically_equivalent(fd("g"))
        assert not fd("f").syntactically_equivalent(fd("g", rng=C))
        assert not fd("f").syntactically_equivalent(fd("g", dom=C))

    def test_type_functional_equivalence(self):
        assert fd("f").type_functionally_equivalent(fd("g"))
        assert not fd("f").type_functionally_equivalent(
            fd("g", tf=TypeFunctionality.ONE_ONE)
        )

    def test_endpoints(self):
        assert fd("f").endpoints == (A, B)

    def test_identity_by_all_components(self):
        assert fd("f") == fd("f")
        assert fd("f") != fd("f", tf=TypeFunctionality.ONE_ONE)
        assert fd("f") != fd("g")


class TestSchemaConstruction:
    def test_preserves_order(self):
        schema = Schema([fd("f"), fd("g"), fd("h")])
        assert schema.names == ("f", "g", "h")

    def test_duplicate_name_rejected(self):
        schema = Schema([fd("f")])
        with pytest.raises(DuplicateFunctionError):
            schema.add(fd("f", rng=C))

    def test_remove(self):
        schema = Schema([fd("f"), fd("g")])
        removed = schema.remove("f")
        assert removed.name == "f"
        assert schema.names == ("g",)

    def test_remove_unknown(self):
        with pytest.raises(UnknownFunctionError):
            Schema().remove("nope")


class TestSchemaLookup:
    def test_getitem(self):
        f = fd("f")
        assert Schema([f])["f"] is f

    def test_getitem_unknown(self):
        with pytest.raises(UnknownFunctionError):
            Schema()["f"]

    def test_get_default(self):
        assert Schema().get("f") is None

    def test_contains_name_and_def(self):
        f = fd("f")
        schema = Schema([f])
        assert "f" in schema
        assert f in schema
        assert fd("f", rng=C) not in schema  # same name, different def
        assert "g" not in schema

    def test_len_and_iter(self):
        schema = Schema([fd("f"), fd("g")])
        assert len(schema) == 2
        assert [f.name for f in schema] == ["f", "g"]

    def test_object_types_first_use_order(self):
        schema = Schema([fd("f", A, B), fd("g", B, C), fd("h", C, A)])
        assert schema.object_types == (A, B, C)


class TestSchemaArithmetic:
    def test_subtraction(self):
        schema = Schema([fd("f"), fd("g"), fd("h")])
        result = schema - Schema([fd("g")])
        assert result.names == ("f", "h")

    def test_subtraction_leaves_original(self):
        schema = Schema([fd("f"), fd("g")])
        _ = schema - Schema([fd("f")])
        assert len(schema) == 2

    def test_union(self):
        merged = Schema([fd("f")]) | Schema([fd("g")])
        assert merged.names == ("f", "g")

    def test_union_conflict_rejected(self):
        with pytest.raises(SchemaError):
            _ = Schema([fd("f")]) | Schema([fd("f", rng=C)])

    def test_union_idempotent_on_same_def(self):
        merged = Schema([fd("f")]) | Schema([fd("f")])
        assert merged.names == ("f",)

    def test_restricted_to(self):
        schema = Schema([fd("f"), fd("g"), fd("h")])
        assert schema.restricted_to(["h", "f"]).names == ("f", "h")

    def test_restricted_to_unknown(self):
        with pytest.raises(UnknownFunctionError):
            Schema([fd("f")]).restricted_to(["g"])

    def test_is_subschema_of(self):
        big = Schema([fd("f"), fd("g")])
        assert Schema([fd("f")]).is_subschema_of(big)
        assert not Schema([fd("h")]).is_subschema_of(big)

    def test_equality_ignores_order(self):
        assert Schema([fd("f"), fd("g")]) == Schema([fd("g"), fd("f")])
        assert Schema([fd("f")]) != Schema([fd("g")])

    def test_not_hashable(self):
        with pytest.raises(TypeError):
            hash(Schema())

    def test_copy_is_independent(self):
        schema = Schema([fd("f")])
        clone = schema.copy()
        clone.add(fd("g"))
        assert len(schema) == 1


class TestTable1(object):
    """Table 1 of the paper as a structured schema (fixture `s1`)."""

    def test_names(self, s1):
        assert s1.names == ("grade", "score", "cutoff", "teach", "taught_by")

    def test_grade_signature(self, s1):
        grade = s1["grade"]
        assert grade.domain == product_type("student", "course")
        assert grade.range == ObjectType("letter_grade")
        assert grade.functionality == TypeFunctionality.MANY_ONE

    def test_teach_taught_by_symmetry(self, s1):
        assert s1["teach"].domain == s1["taught_by"].range
        assert s1["teach"].range == s1["taught_by"].domain

    def test_object_types(self, s1):
        names = {t.name for t in s1.object_types}
        assert names == {
            "[student; course]", "letter_grade", "marks", "faculty", "course"
        }
