"""Tests for the schema text format (parser and printer)."""

from __future__ import annotations

import pytest

from repro.core.schema_text import (
    format_schema,
    parse_function_def,
    parse_schema,
)
from repro.core.types import ObjectType, TypeFunctionality, product_type
from repro.errors import ParseError


class TestParseFunctionDef:
    def test_basic(self):
        f = parse_function_def("teach: faculty -> course")
        assert f.name == "teach"
        assert f.domain == ObjectType("faculty")
        assert f.range == ObjectType("course")
        assert f.functionality == TypeFunctionality.MANY_MANY

    def test_with_functionality(self):
        f = parse_function_def("cutoff: marks -> letter_grade; (many-one)")
        assert f.functionality == TypeFunctionality.MANY_ONE

    def test_functionality_spacing_variants(self):
        for text in [
            "f: a -> b; (many - one)",
            "f: a -> b (many-one)",
            "f: a -> b;(many-one);",
            "f: a -> b; (Many-One)",
        ]:
            assert parse_function_def(text).functionality == (
                TypeFunctionality.MANY_ONE
            )

    def test_product_domain(self):
        f = parse_function_def(
            "grade: [student; course] -> letter_grade; (many-one)"
        )
        assert f.domain == product_type("student", "course")

    def test_unicode_arrow(self):
        f = parse_function_def("teach: faculty → course")
        assert f.range == ObjectType("course")

    def test_trailing_semicolon(self):
        assert parse_function_def("f: a -> b;").name == "f"

    @pytest.mark.parametrize("bad", [
        "",
        "no colon here",
        "f a -> b",
        "f: a b",
        "f: a -> b -> c",
        "123: a -> b",
        "f f: a -> b",
    ])
    def test_rejects(self, bad):
        with pytest.raises(ParseError):
            parse_function_def(bad)

    def test_error_carries_line(self):
        with pytest.raises(ParseError) as info:
            parse_function_def("f: a b", line=7)
        assert "line 7" in str(info.value)


class TestParseSchema:
    def test_numbered_lines(self):
        schema = parse_schema("""
            1. grade: [student; course] -> letter_grade; (many-one)
            2. score: [student; course] -> marks; (many-one)
        """)
        assert schema.names == ("grade", "score")

    def test_comments_and_blanks(self):
        schema = parse_schema("""
            # the paper's pupil example
            teach: faculty -> course   # base

            class_list: course -> student
        """)
        assert schema.names == ("teach", "class_list")

    def test_duplicate_names_rejected(self):
        with pytest.raises(Exception):
            parse_schema("f: a -> b\nf: a -> c")

    def test_empty_text(self):
        assert len(parse_schema("")) == 0


class TestFormat:
    def test_roundtrip(self, s1):
        again = parse_schema(format_schema(s1))
        assert again == s1
        assert again.names == s1.names

    def test_numbered_matches_table1(self, s1):
        text = format_schema(s1, numbered=True)
        lines = text.splitlines()
        assert lines[0] == (
            "1. grade: [student; course] -> letter_grade; (many-one)"
        )
        assert lines[4] == (
            "5. taught_by: course -> faculty; (many-many)"
        )

    def test_roundtrip_of_formatted_numbered(self, s1):
        assert parse_schema(format_schema(s1, numbered=True)) == s1
