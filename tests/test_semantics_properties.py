"""Deeper semantic properties of the update machinery."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fdb.journal import Journal
from repro.fdb.logic import Truth
from repro.fdb.updates import (
    Update,
    UpdateSequence,
    apply_sequence,
    apply_update,
)
from repro.workloads.generator import (
    WorkloadConfig,
    chain_fdb,
    random_instance,
    random_updates,
)


def build(seed: int, k: int = 2, rows: int = 6):
    db = chain_fdb(k)
    random_instance(db, rows, seed=seed, value_pool=5)
    return db


def fingerprint(db) -> tuple:
    tables = tuple(
        (name, tuple(db.table(name).rows())) for name in db.base_names
    )
    ncs = tuple(sorted(str(nc) for nc in db.ncs))
    return (tables, ncs, db.nulls.next_index)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(1, 8))
def test_sequence_equals_individual_application(seed, n):
    """An UpdateSequence that succeeds produces exactly the state of
    applying its updates one by one."""
    db_a = build(seed)
    db_b = build(seed)
    updates = random_updates(
        db_a, n, WorkloadConfig(seed=seed + 7, value_pool=5)
    )
    if not updates:
        return
    apply_sequence(db_a, UpdateSequence(tuple(updates)))
    for update in updates:
        apply_update(db_b, update)
    assert fingerprint(db_a) == fingerprint(db_b)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_derived_insert_idempotent(seed):
    """Inserting a derived fact twice changes nothing the second time
    (the fact is already true)."""
    db = build(seed)
    db.insert("v", "T0_p", "T2_q")
    once = fingerprint(db)
    db.insert("v", "T0_p", "T2_q")
    assert fingerprint(db) == once


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_derived_delete_idempotent(seed):
    from repro.fdb.evaluate import derived_extension

    db = build(seed, rows=8)
    extension = list(derived_extension(db, "v"))
    if not extension:
        return
    target = extension[0]
    db.delete("v", *target)
    once = fingerprint(db)
    db.delete("v", *target)
    assert fingerprint(db) == once


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_delete_insert_delete_never_true(seed):
    """DEL; INS; DEL on a derived fact always ends not-true."""
    from repro.fdb.evaluate import derived_extension

    db = build(seed, rows=8)
    extension = list(derived_extension(db, "v"))
    if not extension:
        return
    x, y = extension[0]
    db.delete("v", x, y)
    db.insert("v", x, y)
    assert db.truth_of("v", x, y) is Truth.TRUE
    db.delete("v", x, y)
    assert db.truth_of("v", x, y) is not Truth.TRUE


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(1, 10))
def test_journal_redo_equals_original_run(seed, n):
    """undo-all + redo-all lands on the exact original state."""
    db = build(seed)
    journal = Journal(db)
    journal.execute_all(random_updates(
        db, n, WorkloadConfig(seed=seed + 3, value_pool=5)
    ))
    final = fingerprint(db)
    journal.undo_all()
    while journal.can_redo:
        journal.redo()
    assert fingerprint(db) == final


def test_stress_run_keeps_invariants():
    """A larger, deterministic run: 3-hop chain, ~240 stored facts,
    150 mixed updates, dual-structure check at the end. (Sizes chosen
    to keep the whole suite fast: the derived-valuation check
    re-enumerates chains per TRUE pair and grows superlinearly with
    the join fan-out, which is exactly what bench E15 measures — the
    invariant check here only needs a non-trivial instance.)"""
    from tests.test_update_properties import (
        check_derived_valuation,
        check_invariants,
    )

    db = chain_fdb(3)
    random_instance(db, 80, seed=99, value_pool=40)
    updates = random_updates(
        db, 150, WorkloadConfig(seed=100, value_pool=40)
    )
    for update in updates:
        apply_update(db, update)
    check_invariants(db)
    check_derived_valuation(db)
    counts = db.counts()
    assert counts["stored_facts"] > 150
    assert counts["ncs"] >= 1
