"""Tests for the concurrent service layer: retry policy, circuit
breaker, admission control, deadlines and the service facade."""

from __future__ import annotations

import threading
import time

import pytest

from repro.cancel import Deadline
from repro.errors import (
    DeadlineExceeded,
    DeadlockDetected,
    LockTimeout,
    ServiceClosed,
    ServiceOverloaded,
    ServiceReadOnly,
)
from repro.faults import FAULTS, TransientError
from repro.fdb.logic import Truth
from repro.fdb.updates import Update, UpdateSequence
from repro.fdb.wal import UpdateLog
from repro.service import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    AdmissionGate,
    CircuitBreaker,
    DatabaseService,
    RetryPolicy,
    WRITE_RESOURCE,
)
from repro.workloads.university import pupil_database


@pytest.fixture(autouse=True)
def clean_registry():
    FAULTS.disarm_all()
    yield
    FAULTS.disarm_all()


class TestRetryPolicy:
    def test_non_retryable_propagates_immediately(self):
        calls = []

        def fn():
            calls.append(1)
            raise ValueError("nope")

        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=5).run(fn)
        assert len(calls) == 1

    def test_retryable_retries_until_success(self):
        calls = []

        def fn():
            calls.append(1)
            if len(calls) < 3:
                raise LockTimeout("busy")
            return "done"

        policy = RetryPolicy(max_attempts=5, base_delay=0.0, jitter=0.0)
        assert policy.run(fn) == "done"
        assert len(calls) == 3

    def test_attempts_exhausted_raises_last_error(self):
        calls = []

        def fn():
            calls.append(1)
            raise DeadlockDetected("cycle")

        policy = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)
        with pytest.raises(DeadlockDetected):
            policy.run(fn)
        assert len(calls) == 3

    def test_on_retry_sees_each_failure(self):
        seen = []

        def fn():
            raise LockTimeout("busy")

        policy = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)
        with pytest.raises(LockTimeout):
            policy.run(fn, on_retry=lambda n, exc: seen.append(n))
        assert seen == [0, 1]

    def test_expired_deadline_stops_retries(self):
        calls = []

        def fn():
            calls.append(1)
            raise LockTimeout("busy")

        policy = RetryPolicy(max_attempts=5, base_delay=0.0, jitter=0.0)
        with pytest.raises(LockTimeout):
            policy.run(fn, deadline=Deadline(expires_at=0.0))
        assert len(calls) == 1

    def test_backoff_caps_and_jitters(self):
        import random

        policy = RetryPolicy(base_delay=0.01, multiplier=2.0,
                             max_delay=0.03, jitter=0.005)
        assert policy.delay(0) == 0.01
        assert policy.delay(5) == 0.03  # capped
        rng = random.Random(7)
        jittered = policy.delay(0, rng)
        assert 0.01 <= jittered <= 0.015


class TestCircuitBreaker:
    def test_trips_after_threshold_and_fails_fast(self):
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=60.0)
        for _ in range(3):
            breaker.allow()
            breaker.record_failure(OSError("disk gone"))
        assert breaker.state == OPEN
        assert breaker.trips == 1
        with pytest.raises(ServiceReadOnly):
            breaker.allow()

    def test_success_resets_failure_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure(OSError())
        breaker.record_success()
        breaker.record_failure(OSError())
        assert breaker.state == CLOSED

    def test_half_open_probe_closes_on_success(self):
        clock = [0.0]
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0,
                                 clock=lambda: clock[0])
        breaker.record_failure(OSError())
        assert breaker.state == OPEN
        clock[0] = 2.0
        breaker.allow()  # probe admitted
        assert breaker.state == HALF_OPEN
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.resets == 1

    def test_half_open_probe_reopens_on_failure(self):
        clock = [0.0]
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0,
                                 clock=lambda: clock[0])
        breaker.record_failure(OSError())
        clock[0] = 2.0
        breaker.allow()
        breaker.record_failure(OSError())
        assert breaker.state == OPEN
        assert breaker.trips == 2
        with pytest.raises(ServiceReadOnly):
            breaker.allow()

    def test_half_open_quota_bounds_probes(self):
        clock = [0.0]
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0,
                                 half_open_max=1, clock=lambda: clock[0])
        breaker.record_failure(OSError())
        clock[0] = 2.0
        breaker.allow()  # the probe slot
        with pytest.raises(ServiceReadOnly):
            breaker.allow()
        breaker.release_probe()  # probe ended with no storage verdict
        breaker.allow()  # slot available again


class TestAdmissionGate:
    def test_sheds_when_queue_full(self):
        gate = AdmissionGate(max_concurrent=1, max_queue=0)
        gate.enter()
        with pytest.raises(ServiceOverloaded):
            gate.enter()
        assert gate.shed == 1
        gate.leave()
        gate.enter()  # slot free again

    def test_queued_request_sheds_on_timeout(self):
        gate = AdmissionGate(max_concurrent=1, max_queue=1,
                             queue_timeout=0.05)
        gate.enter()
        start = time.monotonic()
        with pytest.raises(ServiceOverloaded):
            gate.enter()
        assert time.monotonic() - start >= 0.05

    def test_queued_request_admitted_when_slot_frees(self):
        gate = AdmissionGate(max_concurrent=1, max_queue=1,
                             queue_timeout=5.0)
        gate.enter()
        admitted = threading.Event()

        def queued():
            gate.enter()
            admitted.set()
            gate.leave()

        worker = threading.Thread(target=queued)
        worker.start()
        try:
            time.sleep(0.05)
            gate.leave()
            assert admitted.wait(5.0)
        finally:
            worker.join(5.0)

    def test_closed_gate_rejects_and_wakes_queued(self):
        gate = AdmissionGate(max_concurrent=1, max_queue=1,
                             queue_timeout=5.0)
        gate.enter()
        failed = threading.Event()

        def queued():
            try:
                gate.enter()
            except ServiceClosed:
                failed.set()

        worker = threading.Thread(target=queued)
        worker.start()
        try:
            time.sleep(0.05)
            gate.close()
            assert failed.wait(5.0)
            with pytest.raises(ServiceClosed):
                gate.enter()
        finally:
            worker.join(5.0)

    def test_wait_idle_is_the_drain_barrier(self):
        gate = AdmissionGate(max_concurrent=2)
        gate.enter()
        assert not gate.wait_idle(timeout=0.05)
        gate.leave()
        assert gate.wait_idle(timeout=0.05)


class TestServiceBasics:
    def test_write_then_read(self, tmp_path):
        service = DatabaseService(pupil_database(),
                                  log=tmp_path / "wal.jsonl")
        service.insert("teach", "gauss", "cs")
        assert service.truth_of("teach", "gauss", "cs") is Truth.TRUE
        assert len(service.committed_ops()) == 1
        assert service.stats()["writes"] == 1
        assert service.stats()["reads"] == 1

    def test_clusters_join_derived_and_bases(self):
        service = DatabaseService(pupil_database())
        # pupil is derived from teach ∘ ... : same cluster.
        assert service.cluster_of("pupil") == service.cluster_of("teach")

    def test_write_resource_sorts_first(self):
        service = DatabaseService(pupil_database())
        assert WRITE_RESOURCE < service.cluster_of("teach")

    def test_sequence_is_atomic_through_service(self, tmp_path):
        service = DatabaseService(pupil_database(),
                                  log=tmp_path / "wal.jsonl")
        service.execute(UpdateSequence((
            Update.ins("teach", "gauss", "cs"),
            Update.delete("teach", "euclid", "math"),
        )))
        assert service.truth_of("teach", "gauss", "cs") is Truth.TRUE
        assert service.truth_of("teach", "euclid", "math") is Truth.FALSE

    def test_undurable_service_rolls_back_failures(self, monkeypatch):
        from repro.service import service as service_module

        db = pupil_database()
        service = DatabaseService(db)
        real_apply = service_module.apply_update
        calls = []

        def failing_apply(target, update):
            calls.append(update)
            if len(calls) == 2:
                raise RuntimeError("boom mid-sequence")
            return real_apply(target, update)

        monkeypatch.setattr(service_module, "apply_update",
                            failing_apply)
        with pytest.raises(RuntimeError):
            service.execute(UpdateSequence((
                Update.ins("teach", "gauss", "cs"),
                Update.ins("teach", "noether", "algebra"),
            )))
        # The first insert of the sequence was rolled back.
        assert db.truth_of("teach", "gauss", "cs") is Truth.FALSE
        assert service.committed_ops() == ()

    def test_read_modify_write_applies_built_update(self, tmp_path):
        service = DatabaseService(pupil_database(),
                                  log=tmp_path / "wal.jsonl")

        def build(db):
            pairs = sorted(db.table("teach").pairs())
            x, y = pairs[0]
            return Update.rep("teach", (x, y), (x, "revised"))

        applied = service.read_modify_write(("teach",), build)
        assert applied is not None
        x = sorted(service.db.table("teach").pairs())[0][0]
        assert service.truth_of("teach", x, "revised") is Truth.TRUE

    def test_read_modify_write_decline(self):
        service = DatabaseService(pupil_database())
        assert service.read_modify_write(("teach",),
                                         lambda db: None) is None
        assert service.committed_ops() == ()

    def test_drain_then_closed(self):
        service = DatabaseService(pupil_database())
        assert service.drain() is True
        assert service.closed
        with pytest.raises(ServiceClosed):
            service.insert("teach", "gauss", "cs")


class TestServiceDeadlines:
    def test_expired_deadline_cancels_write_cleanly(self, tmp_path):
        db = pupil_database()
        log_path = tmp_path / "wal.jsonl"
        service = DatabaseService(db, log=log_path)
        with pytest.raises(DeadlineExceeded):
            service.insert("teach", "gauss", "cs",
                           deadline=Deadline(expires_at=0.0))
        # Nothing was applied and nothing was logged.
        assert db.truth_of("teach", "gauss", "cs") is Truth.FALSE
        assert len(UpdateLog(log_path)) == 0
        assert service.committed_ops() == ()
        # The service is healthy afterwards.
        service.insert("teach", "gauss", "cs")
        assert db.truth_of("teach", "gauss", "cs") is Truth.TRUE

    def test_default_deadline_applies(self):
        service = DatabaseService(pupil_database(),
                                  default_deadline=30.0)
        # Simply exercises the default path; a generous default
        # never fires.
        service.insert("teach", "gauss", "cs")

    def test_expired_deadline_cancels_read(self):
        service = DatabaseService(pupil_database())
        with pytest.raises(DeadlineExceeded):
            # 'pupil' is derived: its extension enumerates chains,
            # which is where the cancellation checkpoints live.
            service.extension("pupil", deadline=Deadline(expires_at=0.0))


class TestServiceReadOnlyMode:
    def test_breaker_trips_to_read_only_and_recovers(self, tmp_path):
        db = pupil_database()
        service = DatabaseService(
            db,
            log=tmp_path / "wal.jsonl",
            retry=RetryPolicy(max_attempts=1),
            breaker=CircuitBreaker(failure_threshold=2,
                                   reset_timeout=0.05),
        )
        FAULTS.arm("wal.append.before", TransientError(times=10 ** 6))
        for _ in range(2):
            with pytest.raises((OSError, Exception)):
                service.insert("teach", "gauss", "cs")
        assert service.breaker.state == OPEN
        # Writes now fail fast...
        with pytest.raises(ServiceReadOnly):
            service.insert("teach", "gauss", "cs")
        # ...while reads keep flowing.
        assert service.truth_of("teach", "euclid", "math") is Truth.TRUE
        # Storage heals; after the reset timeout a probe closes it.
        FAULTS.disarm_all()
        time.sleep(0.1)
        service.insert("teach", "gauss", "cs")
        assert service.breaker.state == CLOSED
        assert service.breaker.resets == 1
        assert db.truth_of("teach", "gauss", "cs") is Truth.TRUE


class TestServiceConcurrency:
    def test_shedding_through_the_facade(self):
        service = DatabaseService(pupil_database(), max_concurrent=1,
                                  max_queue=0)
        inside = threading.Event()
        release = threading.Event()

        def slow_read(db):
            inside.set()
            release.wait(5.0)
            return None

        worker = threading.Thread(
            target=lambda: service.read(("teach",), slow_read))
        worker.start()
        try:
            assert inside.wait(5.0)
            with pytest.raises(ServiceOverloaded):
                service.truth_of("teach", "euclid", "math")
        finally:
            release.set()
            worker.join(5.0)
        assert service.stats()["shed"] == 1

    def test_concurrent_readers_of_one_cluster(self):
        service = DatabaseService(pupil_database(), max_concurrent=4)
        barrier = threading.Barrier(3, timeout=5.0)
        results = []
        lock = threading.Lock()

        def read(db):
            barrier.wait()  # proves all three are inside together
            return db.truth_of("teach", "euclid", "math")

        def worker():
            value = service.read(("teach",), read)
            with lock:
                results.append(value)

        pool = [threading.Thread(target=worker) for _ in range(3)]
        for t in pool:
            t.start()
        for t in pool:
            t.join(5.0)
        assert results == [Truth.TRUE] * 3

    def test_dual_rmw_resolves_via_retry(self, tmp_path):
        """Two read-modify-writes on the same cluster race the shared →
        exclusive upgrade; the loser is a deadlock victim and retries."""
        service = DatabaseService(
            pupil_database(), log=tmp_path / "wal.jsonl",
            lock_timeout=0.5,
            retry=RetryPolicy(max_attempts=6, base_delay=0.001,
                              jitter=0.001),
        )
        barrier = threading.Barrier(2, timeout=5.0)
        errors = []

        def build(db):
            try:
                barrier.wait()  # both hold the shared lock here
            except threading.BrokenBarrierError:
                pass  # the retry pass runs alone
            pairs = sorted(db.table("teach").pairs())
            x, y = pairs[0]
            return Update.rep("teach", (x, y), (x, f"{y}+"))

        def worker():
            try:
                service.read_modify_write(("teach",), build)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        pool = [threading.Thread(target=worker) for _ in range(2)]
        for t in pool:
            t.start()
        for t in pool:
            t.join(10.0)
        assert errors == []
        assert len(service.committed_ops()) == 2
        stats = service.stats()
        assert stats["deadlocks"] + stats["lock_timeouts"] >= 1


class TestClusterMapCache:
    """The function -> cluster map is schema metadata: it must be
    rebuilt only when a declaration moves ``db.schema_version``, never
    on an unknown-name probe (which used to re-run the union-find on
    every miss)."""

    def test_unknown_probe_does_not_recluster(self, monkeypatch):
        import repro.service.service as service_module

        service = DatabaseService(pupil_database())
        calls = []
        real = service_module.clusters_of

        def counting(db):
            calls.append(1)
            return real(db)

        monkeypatch.setattr(service_module, "clusters_of", counting)
        try:
            for _ in range(5):
                with pytest.raises(KeyError):
                    service.cluster_of("no_such_function")
            assert calls == []  # misses never rebuild
            service.cluster_of("teach")
            assert calls == []  # hits ride the cache too
        finally:
            service.close()

    def test_declaration_rebuilds_once(self, monkeypatch):
        from repro.core.schema import (
            FunctionDef,
            ObjectType,
            TypeFunctionality,
        )
        import repro.service.service as service_module

        service = DatabaseService(pupil_database())
        calls = []
        real = service_module.clusters_of

        def counting(db):
            calls.append(1)
            return real(db)

        monkeypatch.setattr(service_module, "clusters_of", counting)
        try:
            service.db.declare_base(FunctionDef(
                "late_fn", ObjectType("L0"), ObjectType("L1"),
                TypeFunctionality.MANY_MANY,
            ))
            assert service.cluster_of("late_fn") == "fn:late_fn"
            assert len(calls) == 1  # the version bump: one rebuild
            service.cluster_of("late_fn")
            service.cluster_of("teach")
            assert len(calls) == 1  # and only one
        finally:
            service.close()
