"""Tests for the reader–writer lock manager.

Deterministic where possible: the manager accepts explicit ``owner``
ids, so most scenarios run single-threaded. Real threads appear only
where a parked waiter is part of the scenario (deadlock cycles need an
owner recorded in the wait-for graph).
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import DeadlockDetected, LockTimeout
from repro.service import EXCLUSIVE, SHARED, LockManager


def _wait_for(predicate, timeout=5.0):
    expires = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > expires:
            raise AssertionError("condition never became true")
        time.sleep(0.005)


class TestGrants:
    def test_shared_holders_coexist(self):
        locks = LockManager()
        locks.acquire("r", SHARED, owner=1)
        locks.acquire("r", SHARED, owner=2)
        assert set(locks.holders("r")["shared"]) == {1, 2}
        locks.release("r", SHARED, owner=1)
        locks.release("r", SHARED, owner=2)
        assert locks.holders("r")["shared"] == ()

    def test_exclusive_blocks_shared(self):
        locks = LockManager()
        locks.acquire("r", EXCLUSIVE, owner=1)
        with pytest.raises(LockTimeout):
            locks.acquire("r", SHARED, owner=2, timeout=0.05)

    def test_shared_blocks_exclusive(self):
        locks = LockManager()
        locks.acquire("r", SHARED, owner=1)
        with pytest.raises(LockTimeout):
            locks.acquire("r", EXCLUSIVE, owner=2, timeout=0.05)

    def test_exclusive_blocks_exclusive(self):
        locks = LockManager()
        locks.acquire("r", EXCLUSIVE, owner=1)
        with pytest.raises(LockTimeout):
            locks.acquire("r", EXCLUSIVE, owner=2, timeout=0.05)

    def test_disjoint_resources_do_not_contend(self):
        locks = LockManager()
        locks.acquire("a", EXCLUSIVE, owner=1)
        locks.acquire("b", EXCLUSIVE, owner=2, timeout=0.05)

    def test_reentrant_holds_need_matching_releases(self):
        locks = LockManager()
        locks.acquire("r", EXCLUSIVE, owner=1)
        locks.acquire("r", EXCLUSIVE, owner=1)
        locks.release("r", EXCLUSIVE, owner=1)
        # Still held after one release.
        with pytest.raises(LockTimeout):
            locks.acquire("r", EXCLUSIVE, owner=2, timeout=0.05)
        locks.release("r", EXCLUSIVE, owner=1)
        locks.acquire("r", EXCLUSIVE, owner=2, timeout=0.05)

    def test_sole_holder_upgrade_allowed(self):
        locks = LockManager()
        locks.acquire("r", SHARED, owner=1)
        locks.acquire("r", EXCLUSIVE, owner=1)  # the RMW step
        assert locks.holders("r")["exclusive"] == (1,)
        # And a second reader is now blocked by the upgrade.
        with pytest.raises(LockTimeout):
            locks.acquire("r", SHARED, owner=2, timeout=0.05)

    def test_upgrade_blocked_by_other_reader(self):
        locks = LockManager()
        locks.acquire("r", SHARED, owner=1)
        locks.acquire("r", SHARED, owner=2)
        with pytest.raises(LockTimeout):
            locks.acquire("r", EXCLUSIVE, owner=1, timeout=0.05)


class TestMisuse:
    def test_release_not_held_raises(self):
        locks = LockManager()
        with pytest.raises(RuntimeError):
            locks.release("r", SHARED, owner=1)
        locks.acquire("r", SHARED, owner=1)
        with pytest.raises(RuntimeError):
            locks.release("r", EXCLUSIVE, owner=1)

    def test_unknown_mode_rejected(self):
        locks = LockManager()
        with pytest.raises(ValueError):
            locks.acquire("r", "upgradable", owner=1)

    def test_release_all_drops_everything(self):
        locks = LockManager()
        locks.acquire("a", SHARED, owner=1)
        locks.acquire("b", EXCLUSIVE, owner=1)
        locks.release_all(owner=1)
        locks.acquire("a", EXCLUSIVE, owner=2, timeout=0.05)
        locks.acquire("b", EXCLUSIVE, owner=2, timeout=0.05)


class TestHeld:
    def test_held_acquires_sorted_and_releases(self):
        locks = LockManager()
        with locks.held(["b", "a", "b"], EXCLUSIVE, owner=1):
            assert locks.holders("a")["exclusive"] == (1,)
            assert locks.holders("b")["exclusive"] == (1,)
        assert locks.holders("a")["exclusive"] == ()
        assert locks.holders("b")["exclusive"] == ()

    def test_held_failure_releases_partial_takes(self):
        locks = LockManager()
        locks.acquire("b", EXCLUSIVE, owner=2)
        with pytest.raises(LockTimeout):
            with locks.held(["a", "b"], EXCLUSIVE, owner=1,
                            timeout=0.05):
                pass  # pragma: no cover - never reached
        # "a" was taken first (sorted order) and released on failure.
        locks.acquire("a", EXCLUSIVE, owner=3, timeout=0.05)


class TestDeadlockDetection:
    def test_ab_ba_cycle_detected(self):
        locks = LockManager()
        locks.acquire("a", EXCLUSIVE, owner=100)

        parked = threading.Event()
        outcome: list[str] = []

        def other():
            locks.acquire("b", EXCLUSIVE)
            parked.set()
            try:
                # Parks: "a" is held by owner 100 (never released
                # until we are done); the 2 s timeout bounds the test.
                locks.acquire("a", EXCLUSIVE, timeout=2.0)
                outcome.append("acquired")
            except LockTimeout:
                outcome.append("timeout")
            finally:
                locks.release_all()

        worker = threading.Thread(target=other)
        worker.start()
        try:
            assert parked.wait(5.0)
            _wait_for(lambda: worker.ident in locks._waiting)
            # Owner 100 asking for "b" closes the cycle:
            # 100 -> worker (holds b) -> 100 (holds a).
            with pytest.raises(DeadlockDetected):
                locks.acquire("b", EXCLUSIVE, owner=100, timeout=2.0)
            # The victim contract resolves it.
            locks.release_all(owner=100)
        finally:
            worker.join(5.0)
        assert outcome == ["acquired"]

    def test_dual_upgrade_deadlocks(self):
        locks = LockManager()
        locks.acquire("r", SHARED, owner=100)

        started = threading.Event()

        def upgrader():
            locks.acquire("r", SHARED)
            started.set()
            try:
                locks.acquire("r", EXCLUSIVE, timeout=2.0)
            except (LockTimeout, DeadlockDetected):
                pass
            finally:
                locks.release_all()

        worker = threading.Thread(target=upgrader)
        worker.start()
        try:
            assert started.wait(5.0)
            _wait_for(lambda: worker.ident in locks._waiting)
            with pytest.raises(DeadlockDetected):
                locks.acquire("r", EXCLUSIVE, owner=100, timeout=2.0)
            locks.release_all(owner=100)
        finally:
            worker.join(5.0)

    def test_no_false_positive_on_plain_contention(self):
        locks = LockManager()
        locks.acquire("r", EXCLUSIVE, owner=100)
        # Owner 100 is not waiting on anything: no cycle, so the
        # contender times out instead of being declared a victim.
        with pytest.raises(LockTimeout):
            locks.acquire("r", EXCLUSIVE, owner=2, timeout=0.05)


class TestTimeouts:
    def test_timeout_respects_deadline(self):
        from repro.cancel import Deadline

        locks = LockManager(default_timeout=30.0)
        locks.acquire("r", EXCLUSIVE, owner=1)
        start = time.monotonic()
        with pytest.raises(LockTimeout):
            locks.acquire("r", EXCLUSIVE, owner=2,
                          deadline=Deadline(0.05))
        assert time.monotonic() - start < 5.0

    def test_waiter_wakes_on_release(self):
        locks = LockManager()
        locks.acquire("r", EXCLUSIVE, owner=100)
        acquired = threading.Event()

        def waiter():
            locks.acquire("r", EXCLUSIVE, timeout=5.0)
            acquired.set()
            locks.release_all()

        worker = threading.Thread(target=waiter)
        worker.start()
        try:
            time.sleep(0.05)
            locks.release("r", EXCLUSIVE, owner=100)
            assert acquired.wait(5.0)
        finally:
            worker.join(5.0)


class TestTargetedWakeups:
    """A release must notify exactly the parked waiters whose request
    became grantable — never the whole herd (the
    ``service.lock.wakeups`` counter is the observable)."""

    @staticmethod
    def _wakeups():
        from repro.obs import OBS
        return OBS.metrics.counter("service.lock.wakeups").value

    @pytest.fixture(autouse=True)
    def obs_enabled(self):
        from repro.obs import OBS
        OBS.enable()
        yield
        OBS.disable()
        OBS.reset()
        OBS.metrics.clear()

    def test_release_notifies_only_its_resource(self):
        locks = LockManager()
        locks.acquire("a", EXCLUSIVE, owner=1)
        locks.acquire("b", EXCLUSIVE, owner=2)
        got_a, got_b = threading.Event(), threading.Event()

        def wait_on(resource, flag):
            locks.acquire(resource, EXCLUSIVE, timeout=5.0)
            flag.set()
            locks.release_all()

        threads = [
            threading.Thread(target=wait_on, args=("a", got_a)),
            threading.Thread(target=wait_on, args=("b", got_b)),
        ]
        for thread in threads:
            thread.start()
        try:
            _wait_for(lambda: len(locks._waiting) == 2)
            base = self._wakeups()
            locks.release("a", EXCLUSIVE, owner=1)
            assert got_a.wait(5.0)
            # b's waiter was not part of that wakeup.
            assert not got_b.wait(0.05)
            assert self._wakeups() == base + 1
            locks.release("b", EXCLUSIVE, owner=2)
            assert got_b.wait(5.0)
            assert self._wakeups() == base + 2
        finally:
            for thread in threads:
                thread.join(5.0)

    def test_ungrantable_waiter_is_not_notified(self):
        locks = LockManager()
        locks.acquire("r", SHARED, owner=1)
        locks.acquire("r", SHARED, owner=2)
        got = threading.Event()

        def writer():
            locks.acquire("r", EXCLUSIVE, timeout=5.0)
            got.set()
            locks.release_all()

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            _wait_for(lambda: len(locks._waiting) == 1)
            base = self._wakeups()
            # One shared holder remains: the exclusive request is
            # still not grantable, so no notify is spent on it.
            locks.release("r", SHARED, owner=1)
            assert not got.wait(0.05)
            assert self._wakeups() == base
            locks.release("r", SHARED, owner=2)
            assert got.wait(5.0)
            assert self._wakeups() == base + 1
        finally:
            thread.join(5.0)
