"""Seeded serializability properties of the concurrent service.

The oracle is the same as the chaos soak's: whatever interleaving the
scheduler produced, replaying the service's commit-ordered operation
log sequentially over an identically seeded fresh instance must
reproduce the live state *exactly* — tables, NC registry, flags and
indexed-null counters included. The global write token makes the
commit order total, which is what licenses the comparison.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import ReproError
from repro.faults.harness import states_diff
from repro.faults.soak import soak_database
from repro.fdb.updates import UpdateSequence, apply_sequence, apply_update
from repro.fdb.wal import recover
from repro.fdb import persistence
from repro.service import DatabaseService, RetryPolicy
from repro.workloads.generator import WorkloadConfig, random_updates

SEEDS = [0, 1, 7]


def _replay(seed: int, ops):
    expected = soak_database(seed)
    for op in ops:
        if isinstance(op, UpdateSequence):
            apply_sequence(expected, op)
        else:
            apply_update(expected, op)
    return expected


@pytest.mark.parametrize("seed", SEEDS)
def test_concurrent_service_is_serializable(seed, tmp_path):
    threads = 6
    ops_per_thread = 15
    db = soak_database(seed)
    snapshot = tmp_path / "snapshot.json"
    wal_path = tmp_path / "wal.jsonl"
    persistence.save(db, snapshot, wal_applied=0)
    service = DatabaseService(
        db,
        log=wal_path,
        lock_timeout=0.5,
        retry=RetryPolicy(max_attempts=6, base_delay=0.002,
                          max_delay=0.05, jitter=0.002),
        max_concurrent=threads,
        seed=seed,
    )
    # Streams are pregenerated against the seed instance so every run
    # with one seed submits the identical multiset of updates.
    streams = [
        random_updates(db, ops_per_thread,
                       WorkloadConfig(seed=seed * 1000 + worker,
                                      value_pool=10))
        for worker in range(threads)
    ]
    harness_errors: list[BaseException] = []

    def run(stream):
        for update in stream:
            try:
                service.execute(update)
            except ReproError:
                # Shed/timed-out requests are legitimate outcomes; the
                # oracle only covers what *committed*.
                pass
            except BaseException as exc:  # pragma: no cover
                harness_errors.append(exc)

    pool = [threading.Thread(target=run, args=(stream,))
            for stream in streams]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join(60.0)
    assert not any(thread.is_alive() for thread in pool)
    assert harness_errors == []
    service.drain()

    committed = service.committed_ops()
    assert committed, "nothing committed — the test exercised nothing"
    # Property 1: live state == sequential replay of the commit log.
    assert states_diff(_replay(seed, committed), db) is None
    # Property 2: crash-recovering from snapshot + WAL reproduces the
    # same state — the concurrent path kept the log exact too.
    report = recover(snapshot, wal_path, policy="strict")
    assert states_diff(report.db, db) is None


def test_interleaved_reads_never_observe_partial_propagation():
    """Readers hold cluster locks: a derived read during concurrent
    base writes sees only committed states, so every observed verdict
    must be reproducible from some replay prefix."""
    seed = 3
    db = soak_database(seed)
    service = DatabaseService(db, lock_timeout=0.5,
                              retry=RetryPolicy(max_attempts=6,
                                                base_delay=0.002))
    stop = threading.Event()
    observed: list[int] = []
    errors: list[BaseException] = []

    def reader():
        try:
            while not stop.is_set():
                extension = service.extension("va")
                observed.append(len(tuple(extension)))
        except BaseException as exc:  # pragma: no cover
            errors.append(exc)

    writer_stream = random_updates(
        db, 40, WorkloadConfig(seed=seed, value_pool=8))
    reader_thread = threading.Thread(target=reader)
    reader_thread.start()
    try:
        for update in writer_stream:
            try:
                service.execute(update)
            except ReproError:
                pass
    finally:
        stop.set()
        reader_thread.join(30.0)
    assert errors == []
    assert observed, "reader never ran"
