"""Service-level telemetry: request lifecycle spans, RED metrics,
contention profiling, breaker gauge accounting and the service-owned
metrics endpoint.

The request tracing contract: every ``DatabaseService`` entry point
opens a ``service.request`` span carrying a request id and operation
family, with admission wait, lock acquisition, retry attempts, engine
execution and WAL commit nested under it, and stamps
``committed=True`` on the span only once the write actually committed
— the invariant the chaos soak cross-checks against
``committed_ops()``.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.errors import ServiceReadOnly
from repro.faults import FAULTS, TransientError
from repro.obs import OBS, RingBufferSink
from repro.service import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    DatabaseService,
    RetryPolicy,
)
from repro.service.breaker import STATE_CODE
from repro.fdb.updates import Update
from repro.workloads.university import pupil_database


def _scrub():
    OBS.disable()
    OBS.reset()
    OBS.metrics.clear()


@pytest.fixture(autouse=True)
def clean_state():
    _scrub()
    FAULTS.disarm_all()
    yield
    FAULTS.disarm_all()
    _scrub()


def observed_service(tmp_path, **kwargs) -> tuple[DatabaseService,
                                                  RingBufferSink]:
    OBS.enable()
    sink = OBS.events.add_sink(RingBufferSink(capacity=4096))
    service = DatabaseService(pupil_database(),
                              log=tmp_path / "wal.jsonl", **kwargs)
    return service, sink


def spans(sink: RingBufferSink, name: str, kind: str = "span.end"):
    return [r for r in sink.records if r.kind == kind and r.name == name]


class TestRequestLifecycleSpans:
    def test_execute_produces_a_complete_span_tree(self, tmp_path):
        service, sink = observed_service(tmp_path)
        try:
            service.execute(Update.ins("teach", "gauss", "cs"))
        finally:
            OBS.events.remove_sink(sink)
        (request,) = spans(sink, "service.request")
        assert request.attrs["family"] == "execute"
        assert request.attrs["request"].startswith("r")
        assert request.attrs["committed"] is True
        # Every stage ran under the request span's subtree.
        for stage in ("service.admission", "service.attempt",
                      "service.locks", "service.engine", "wal.commit"):
            assert spans(sink, stage), f"missing {stage} span"
        (attempt,) = spans(sink, "service.attempt")
        assert attempt.attrs["attempt"] == 1
        # The request span is the root of its tree.
        (start,) = spans(sink, "service.request", "span.start")
        assert start.parent_span is None

    def test_read_request_is_not_marked_committed(self, tmp_path):
        service, sink = observed_service(tmp_path)
        try:
            service.truth_of("teach", "euclid", "math")
        finally:
            OBS.events.remove_sink(sink)
        (request,) = spans(sink, "service.request")
        assert request.attrs["family"] == "read"
        assert request.attrs["committed"] is False

    def test_failed_execute_is_not_marked_committed(self, tmp_path):
        service, sink = observed_service(
            tmp_path, retry=RetryPolicy(max_attempts=1))
        FAULTS.arm("wal.append.before", TransientError(times=10 ** 6))
        try:
            with pytest.raises(Exception):
                service.execute(Update.ins("teach", "gauss", "cs"))
        finally:
            OBS.events.remove_sink(sink)
        (request,) = spans(sink, "service.request")
        assert request.attrs["committed"] is False
        assert service.committed_ops() == ()

    def test_request_ids_are_unique_per_request(self, tmp_path):
        service, sink = observed_service(tmp_path)
        try:
            service.execute(Update.ins("teach", "gauss", "cs"))
            service.truth_of("teach", "gauss", "cs")
        finally:
            OBS.events.remove_sink(sink)
        ids = [r.attrs["request"]
               for r in spans(sink, "service.request", "span.start")]
        assert len(ids) == 2
        assert len(set(ids)) == 2


class TestRedMetrics:
    def test_per_family_rate_error_duration(self, tmp_path):
        service, sink = observed_service(
            tmp_path, retry=RetryPolicy(max_attempts=1))
        try:
            service.execute(Update.ins("teach", "gauss", "cs"))
            service.truth_of("teach", "gauss", "cs")
            FAULTS.arm("wal.append.before", TransientError(times=10 ** 6))
            with pytest.raises(Exception):
                service.execute(Update.ins("teach", "noether", "algebra"))
        finally:
            OBS.events.remove_sink(sink)
        metrics = OBS.metrics
        assert metrics.counter("service.red.execute.requests").value == 2
        assert metrics.counter("service.red.execute.errors").value == 1
        assert metrics.counter("service.red.read.requests").value == 1
        duration = metrics.log_histogram(
            "service.red.execute.duration_seconds")
        assert duration.count == 2

    def test_slo_monitor_sees_every_request(self, tmp_path):
        service, sink = observed_service(tmp_path)
        try:
            for i in range(5):
                service.execute(Update.ins("teach", f"t{i}", f"c{i}"))
        finally:
            OBS.events.remove_sink(sink)
        assert service.slo.snapshot()["window_samples"] == 5
        stats = service.stats()
        assert stats["slo_healthy"] is True
        assert stats["slo_alerts"] == []


class TestContentionProfiling:
    def test_per_cluster_wait_and_hold_histograms(self, tmp_path):
        service, sink = observed_service(tmp_path)
        try:
            service.execute(Update.ins("teach", "gauss", "cs"))
        finally:
            OBS.events.remove_sink(sink)
        names = {ins.name for ins in OBS.metrics}
        waits = [n for n in names
                 if n.startswith("service.lock.wait.exclusive.")]
        holds = [n for n in names
                 if n.startswith("service.lock.hold.exclusive.")]
        assert waits and holds
        # The write token is always locked exclusively on the write path.
        assert any(n.endswith("__write__") for n in waits)
        assert any(n.endswith("__write__") for n in holds)
        hold = OBS.metrics.log_histogram(
            next(n for n in holds if n.endswith("__write__")))
        assert hold.count >= 1

    def test_upgrade_counter_on_read_modify_write(self, tmp_path):
        service, sink = observed_service(tmp_path)
        try:
            service.read_modify_write(
                ("teach",),
                lambda db: Update.ins("teach", "gauss", "cs"),
            )
        finally:
            OBS.events.remove_sink(sink)
        assert OBS.metrics.counter("service.lock.upgrades").value >= 1
        # The upgrade is visible in the trace, too.
        upgrade_spans = [
            r for r in spans(sink, "service.locks", "span.start")
            if r.attrs.get("upgrade") is True
        ]
        assert upgrade_spans


class TestBreakerProbeAccounting:
    def test_probe_slot_released_on_success(self):
        clock_now = [0.0]
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0,
                                 clock=lambda: clock_now[0])
        breaker.record_failure()
        assert breaker.state == OPEN
        clock_now[0] = 2.0
        breaker.allow()  # HALF_OPEN, probe slot taken
        assert breaker.state == HALF_OPEN
        breaker.record_success()
        assert breaker.state == CLOSED
        # The slot came back: an immediate next operation is admitted.
        breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_probe_slot_released_on_failure(self):
        clock_now = [0.0]
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0,
                                 clock=lambda: clock_now[0])
        breaker.record_failure()
        clock_now[0] = 2.0
        breaker.allow()
        assert breaker.state == HALF_OPEN
        breaker.record_failure()
        assert breaker.state == OPEN  # re-opened, probes zeroed
        clock_now[0] = 4.0
        breaker.allow()  # a fresh probe slot exists after the re-trip
        assert breaker.state == HALF_OPEN

    def test_release_probe_returns_slot_without_a_verdict(self):
        clock_now = [0.0]
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0,
                                 half_open_max=1,
                                 clock=lambda: clock_now[0])
        breaker.record_failure()
        clock_now[0] = 2.0
        breaker.allow()
        # Quota exhausted: a second candidate is rejected...
        with pytest.raises(ServiceReadOnly):
            breaker.allow()
        # ...until the first ends without a storage verdict.
        breaker.release_probe()
        breaker.allow()
        assert breaker.state == HALF_OPEN

    def test_state_gauge_and_events_agree_with_committed_ops(
            self, tmp_path):
        OBS.enable()
        sink = OBS.events.add_sink(RingBufferSink(capacity=4096))
        service = DatabaseService(
            pupil_database(),
            log=tmp_path / "wal.jsonl",
            retry=RetryPolicy(max_attempts=1),
            breaker=CircuitBreaker(failure_threshold=2,
                                   reset_timeout=0.05),
        )
        try:
            service.execute(Update.ins("teach", "gauss", "cs"))
            FAULTS.arm("wal.append.before", TransientError(times=10 ** 6))
            for _ in range(2):
                with pytest.raises(Exception):
                    service.execute(
                        Update.ins("teach", "noether", "algebra"))
            assert service.breaker.state == OPEN
            assert OBS.metrics.gauge("service.breaker.state").value == \
                STATE_CODE[OPEN]
            # Failing fast is an error, not a commit.
            with pytest.raises(ServiceReadOnly):
                service.execute(Update.ins("teach", "noether", "algebra"))
            FAULTS.disarm_all()
            time.sleep(0.1)
            service.execute(Update.ins("teach", "noether", "algebra"))
            assert service.breaker.state == CLOSED
            assert OBS.metrics.gauge("service.breaker.state").value == \
                STATE_CODE[CLOSED]
        finally:
            OBS.events.remove_sink(sink)
        # Exactly the two successful writes committed, and exactly two
        # request spans carry committed=True.
        assert len(service.committed_ops()) == 2
        committed_spans = [
            r for r in sink.records
            if r.kind == "span.end" and r.name == "service.request"
            and r.attrs.get("committed") is True
        ]
        assert len(committed_spans) == 2
        actions = [r.name for r in sink.records if r.kind == "action"]
        assert "breaker.open" in actions
        assert "breaker.half_open" in actions
        assert "breaker.closed" in actions


class TestServiceEndpoint:
    def test_serve_metrics_exposes_service_health(self, tmp_path):
        from repro.obs.endpoint import parse_prometheus

        OBS.enable()
        service = DatabaseService(pupil_database(),
                                  log=tmp_path / "wal.jsonl")
        try:
            service.execute(Update.ins("teach", "gauss", "cs"))
            endpoint = service.serve_metrics()
            assert service.serve_metrics() is endpoint  # idempotent
            body = urllib.request.urlopen(
                endpoint.url + "/metrics", timeout=5
            ).read().decode("utf-8")
            families = parse_prometheus(body)
            assert "service_red_execute_requests_total" in families
            with urllib.request.urlopen(
                endpoint.url + "/health", timeout=5
            ) as resp:
                verdict = json.loads(resp.read().decode("utf-8"))
            assert verdict["healthy"] is True
            assert verdict["breaker"] == CLOSED
            assert verdict["committed"] == 1
        finally:
            service.close()
        assert service.endpoint is None or not service.endpoint.running

    def test_health_is_503_while_breaker_open(self, tmp_path):
        OBS.enable()
        service = DatabaseService(
            pupil_database(),
            log=tmp_path / "wal.jsonl",
            retry=RetryPolicy(max_attempts=1),
            breaker=CircuitBreaker(failure_threshold=1,
                                   reset_timeout=60.0),
        )
        try:
            FAULTS.arm("wal.append.before", TransientError(times=10 ** 6))
            with pytest.raises(Exception):
                service.execute(Update.ins("teach", "gauss", "cs"))
            assert service.breaker.state == OPEN
            endpoint = service.serve_metrics()
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(endpoint.url + "/health",
                                       timeout=5)
            assert excinfo.value.code == 503
            verdict = json.loads(excinfo.value.read().decode("utf-8"))
            assert verdict["healthy"] is False
            assert verdict["breaker"] == OPEN
        finally:
            FAULTS.disarm_all()
            service.close()
