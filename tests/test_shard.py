"""Tests for the sharded keyspace: the cluster -> lane ShardMap and
the ShardedDatabaseService facade (routing, multi-shard writes with
marker journals, scatter-gather reads, cross-shard guard rails)."""

from __future__ import annotations

import pytest

from repro.core.derivation import Derivation
from repro.core.schema import FunctionDef, ObjectType, TypeFunctionality
from repro.errors import CrossShardError
from repro.faults import FAULTS
from repro.faults.harness import states_diff
from repro.fdb.database import FunctionalDatabase
from repro.fdb.logic import Truth
from repro.fdb.updates import (
    Update,
    UpdateSequence,
    apply_sequence,
    apply_update,
)
from repro.service import DatabaseService
from repro.service.service import clusters_of
from repro.shard import ShardMap, ShardedDatabaseService

CLUSTERS = 4


@pytest.fixture(autouse=True)
def clean_registry():
    FAULTS.disarm_all()
    yield
    FAULTS.disarm_all()


def four_cluster_database() -> FunctionalDatabase:
    """``CLUSTERS`` independent derivation clusters
    ``c<i>a . c<i>b -> c<i>v``."""
    db = FunctionalDatabase()
    mm = TypeFunctionality.MANY_MANY
    for index in range(CLUSTERS):
        prefix = f"c{index}"
        types = [ObjectType(f"T{index}_{j}") for j in range(3)]
        first = FunctionDef(f"{prefix}a", types[0], types[1], mm)
        second = FunctionDef(f"{prefix}b", types[1], types[2], mm)
        db.declare_base(first)
        db.declare_base(second)
        db.declare_derived(
            FunctionDef(f"{prefix}v", types[0], types[2], mm),
            Derivation.of(first, second),
        )
    return db


def round_robin_pins(shards: int) -> dict[str, int]:
    clusters = sorted(set(clusters_of(four_cluster_database()).values()))
    return {cluster: index % shards
            for index, cluster in enumerate(clusters)}


@pytest.fixture
def facade(tmp_path):
    """Two lanes over the four clusters, pinned round-robin so both
    lanes own two clusters each."""
    service = ShardedDatabaseService(
        four_cluster_database, 2,
        pins=round_robin_pins(2),
        log_dir=tmp_path / "lanes",
    )
    yield service
    service.close()


class TestShardMap:
    def test_placement_is_stable_and_total(self):
        db = four_cluster_database()
        first = ShardMap(db, 3)
        second = ShardMap(four_cluster_database(), 3)
        # Same schema, same pins -> identical placement (crc32 of the
        # cluster id, not anything process-local).
        assert first == second
        assert first.assignments() == second.assignments()
        placed = set()
        for shard in range(3):
            placed.update(first.names_on(shard))
        assert placed == set(db.base_names) | set(db.derived_names)

    def test_cluster_members_stay_together(self):
        shard_map = ShardMap(four_cluster_database(), 2)
        for index in range(CLUSTERS):
            family = {shard_map.shard_of(f"c{index}{part}")
                      for part in ("a", "b", "v")}
            assert len(family) == 1

    def test_pins_override_the_hash(self):
        db = four_cluster_database()
        clusters = sorted(set(clusters_of(db).values()))
        pins = {clusters[0]: 1, clusters[1]: 1}
        shard_map = ShardMap(db, 2, pins=pins)
        assert shard_map.shard_of_cluster(clusters[0]) == 1
        assert shard_map.shard_of_cluster(clusters[1]) == 1

    def test_invalid_configuration_rejected(self):
        db = four_cluster_database()
        with pytest.raises(ValueError):
            ShardMap(db, 0)
        cluster = next(iter(clusters_of(db).values()))
        with pytest.raises(ValueError):
            ShardMap(db, 2, pins={cluster: 2})

    def test_unknown_name_raises(self):
        shard_map = ShardMap(four_cluster_database(), 2)
        with pytest.raises(KeyError):
            shard_map.shard_of("nope")

    def test_stale_and_rebuild_on_schema_change(self):
        db = four_cluster_database()
        shard_map = ShardMap(db, 2)
        assert not shard_map.stale_for(db)
        extra = FunctionDef(
            "late", ObjectType("L0"), ObjectType("L1"),
            TypeFunctionality.MANY_MANY,
        )
        db.declare_base(extra)
        assert shard_map.stale_for(db)
        rebuilt = shard_map.rebuilt(db)
        assert not rebuilt.stale_for(db)
        assert 0 <= rebuilt.shard_of("late") < 2
        assert rebuilt.pins == shard_map.pins


class TestRouting:
    def test_single_cluster_write_lands_on_owning_lane_only(self, facade):
        facade.insert("c0a", "x", "y")
        owner = facade.shard_of("c0a")
        other = 1 - owner
        assert len(facade.committed_ops(owner)) == 1
        assert len(facade.committed_ops(other)) == 0
        assert facade.lane(owner).db.truth_of(
            "c0a", "x", "y") is Truth.TRUE
        assert facade.lane(other).db.truth_of(
            "c0a", "x", "y") is Truth.FALSE

    def test_single_cluster_sequence_stays_single_lane(self, facade):
        seq = UpdateSequence((
            Update.ins("c1a", "p", "q"),
            Update.ins("c1b", "q", "r"),
        ), label="one-cluster")
        facade.execute(seq)
        owner = facade.shard_of("c1a")
        assert len(facade.committed_ops(owner)) == 1
        # A single-lane sequence takes the lane's normal path: no
        # global-lane marker is journalled anywhere.
        for shard in range(2):
            assert facade.cross_markers(shard) == ()

    def test_delete_and_replace_route_like_insert(self, facade):
        facade.insert("c2a", "x", "y")
        facade.replace("c2a", ("x", "y"), ("x", "z"))
        facade.delete("c2a", "x", "z")
        owner = facade.shard_of("c2a")
        assert len(facade.committed_ops(owner)) == 3

    def test_declare_lands_on_every_lane_and_rebuilds_map(self, facade):
        extra = FunctionDef(
            "late", ObjectType("L0"), ObjectType("L1"),
            TypeFunctionality.MANY_MANY,
        )
        facade.declare(lambda db: db.declare_base(extra))
        for lane in facade.lanes:
            assert lane.db.is_base("late")
        shard = facade.shard_of("late")
        facade.insert("late", "a", "b")
        assert facade.lane(shard).db.truth_of(
            "late", "a", "b") is Truth.TRUE


class TestMultiShardWrites:
    def multi(self, facade, tag: str) -> UpdateSequence:
        return UpdateSequence((
            Update.ins("c0a", f"{tag}x", f"{tag}y"),
            Update.ins("c1a", f"{tag}x", f"{tag}y"),
        ), label=f"multi-{tag}")

    def test_multi_shard_sequence_commits_on_every_lane(self, facade):
        facade.execute(self.multi(facade, "m0"))
        for name in ("c0a", "c1a"):
            lane = facade.lane(facade.shard_of(name))
            assert lane.db.truth_of(name, "m0x", "m0y") is Truth.TRUE
        assert facade.stats()["multi_writes"] == 1

    def test_markers_are_journalled_on_each_involved_lane(self, facade):
        for tag in ("m0", "m1", "m2"):
            facade.execute(self.multi(facade, tag))
        for shard in range(2):
            journal = facade.cross_markers(shard)
            assert len(journal) == 3
            markers = [marker for marker, _ in journal]
            indices = [index for _, index in journal]
            # Strictly increasing in both coordinates: the lane's
            # replay oracle stays sequential.
            assert markers == sorted(markers)
            assert len(set(markers)) == 3
            assert indices == sorted(indices)
            assert len(set(indices)) == 3
            committed = len(facade.committed_ops(shard))
            assert all(index < committed for index in indices)
        # The same marker pairs the two lanes' slices of one write.
        assert ([m for m, _ in facade.cross_markers(0)]
                == [m for m, _ in facade.cross_markers(1)])

    def test_replay_of_one_lane_log_reproduces_its_state(self, facade):
        facade.insert("c0a", "solo", "row")
        facade.execute(self.multi(facade, "mix"))
        facade.insert("c1b", "tail", "row")
        for shard in range(2):
            expected = four_cluster_database()
            for op in facade.committed_ops(shard):
                if isinstance(op, UpdateSequence):
                    apply_sequence(expected, op)
                else:
                    apply_update(expected, op)
            assert states_diff(expected, facade.lane(shard).db) is None


class TestReads:
    def test_single_shard_read(self, facade):
        facade.insert("c0a", "x", "y")
        rows = facade.read(("c0a",), lambda db: db.table("c0a").rows())
        assert len(rows) == 1
        assert facade.truth_of("c0a", "x", "y") is Truth.TRUE
        assert ("x", "y") in facade.extension("c0a")

    def test_cross_shard_read_is_refused(self, facade):
        with pytest.raises(CrossShardError):
            facade.read(("c0a", "c1a"), lambda db: None)

    def test_scatter_read_gathers_with_sequence_vector(self, facade):
        facade.insert("c0a", "x", "y")
        facade.insert("c1a", "p", "q")
        results, vector = facade.scatter_read(
            ("c0a", "c1a"),
            lambda db, names: {n: len(db.table(n).rows())
                               for n in names},
        )
        shard0 = facade.shard_of("c0a")
        shard1 = facade.shard_of("c1a")
        assert results[shard0] == {"c0a": 1}
        assert results[shard1] == {"c1a": 1}
        # Each vector entry is the lane's committed-op count captured
        # under that lane's locks.
        assert vector == {shard0: 1, shard1: 1}
        assert facade.sequence_vector() == vector
        assert facade.stats()["scatter_reads"] == 1


class TestReadModifyWrite:
    def test_single_shard_rmw_applies(self, facade):
        facade.insert("c0a", "x", "y")

        def build(db):
            if db.truth_of("c0a", "x", "y") is Truth.TRUE:
                return Update.ins("c0a", "x2", "y2")
            return None

        applied = facade.read_modify_write(("c0a",), build)
        assert applied is not None
        lane = facade.lane(facade.shard_of("c0a"))
        assert lane.db.truth_of("c0a", "x2", "y2") is Truth.TRUE

    def test_rmw_spanning_shards_is_refused(self, facade):
        with pytest.raises(CrossShardError):
            facade.read_modify_write(
                ("c0a", "c1a"), lambda db: None,
            )

    def test_rmw_escaping_its_lane_is_refused_before_apply(self, facade):
        with pytest.raises(CrossShardError):
            facade.read_modify_write(
                ("c0a",), lambda db: Update.ins("c1a", "x", "y"),
            )
        for shard in range(2):
            assert facade.committed_ops(shard) == ()


class TestSwapLane:
    def test_swap_requires_matching_shard_label(self, facade):
        impostor = DatabaseService(four_cluster_database(), shard=1)
        try:
            with pytest.raises(ValueError):
                facade.swap_lane(0, impostor)
        finally:
            impostor.close()

    def test_swap_installs_the_replacement(self, facade):
        replacement = DatabaseService(four_cluster_database(), shard=0)
        old = facade.lane(0)
        facade.swap_lane(0, replacement)
        assert facade.lane(0) is replacement
        facade.insert(facade.map.names_on(0)[0], "post", "swap")
        assert len(replacement.committed_ops()) == 1
        old.close()


class TestHealthAndStats:
    def test_stats_exposes_assignments_and_lanes(self, facade):
        facade.insert("c0a", "x", "y")
        stats = facade.stats()
        assert stats["shards"] == 2
        assert set(stats["assignments"].values()) == {0, 1}
        assert set(stats["lanes"]) == {"0", "1"}
        assert stats["sequence_vector"][facade.shard_of("c0a")] == 1

    def test_health_folds_every_lane(self, facade):
        verdict = facade._health()
        assert verdict["healthy"] is True
        assert verdict["shards"] == 2
        assert set(verdict["lanes"]) == {"0", "1"}
