"""Property tests for the sharded keyspace (satellite of the shard
work): a sharded run's per-shard state must equal an unsharded run of
the same workload restricted to that shard's clusters — the whole
fingerprint (tables with flags and NCLs, the NC registry, both index
counters), not just the rows. Includes a mid-run failover on one
shard's replication group: promoting a replica and swapping the lane
must not perturb the restriction property."""

from __future__ import annotations

from random import Random

import pytest

from repro.core.derivation import Derivation
from repro.core.schema import FunctionDef, ObjectType, TypeFunctionality
from repro.faults import FAULTS
from repro.faults.harness import states_diff
from repro.fdb import persistence
from repro.fdb.database import FunctionalDatabase
from repro.fdb.updates import Update, UpdateSequence
from repro.fdb.wal import UpdateLog
from repro.replication import Replica, ReplicationGroup
from repro.service import DatabaseService
from repro.service.service import clusters_of
from repro.shard import ShardedDatabaseService

CLUSTERS = 4
SHARDS = 2
OPS = 120


@pytest.fixture(autouse=True)
def clean_registry():
    FAULTS.disarm_all()
    yield
    FAULTS.disarm_all()


def property_database() -> FunctionalDatabase:
    db = FunctionalDatabase()
    mm = TypeFunctionality.MANY_MANY
    for index in range(CLUSTERS):
        prefix = f"p{index}"
        types = [ObjectType(f"P{index}_{j}") for j in range(3)]
        first = FunctionDef(f"{prefix}a", types[0], types[1], mm)
        second = FunctionDef(f"{prefix}b", types[1], types[2], mm)
        db.declare_base(first)
        db.declare_base(second)
        db.declare_derived(
            FunctionDef(f"{prefix}v", types[0], types[2], mm),
            Derivation.of(first, second),
        )
    return db


def _pins() -> dict[str, int]:
    clusters = sorted(set(clusters_of(property_database()).values()))
    return {cluster: index % SHARDS
            for index, cluster in enumerate(clusters)}


def _generate_ops(seed: int, count: int) -> list:
    """A deterministic mixed workload: inserts, deletes and replaces
    of live facts (touching derived functions too, so NCs and null
    indices get exercised), plus multi-cluster atomic sequences that
    the facade must run through its global lane."""
    rng = Random(seed)
    live: dict[str, list[tuple[str, str]]] = {}
    ops: list = []

    def fresh(name: str) -> tuple[str, str]:
        pair = (f"{name}x{rng.randrange(10_000)}",
                f"{name}y{rng.randrange(10_000)}")
        live.setdefault(name, []).append(pair)
        return pair

    names = [f"p{i}{part}" for i in range(CLUSTERS)
             for part in ("a", "b", "v")]
    for _ in range(count):
        roll = rng.random()
        name = rng.choice(names)
        if roll < 0.55:
            x, y = fresh(name)
            ops.append(Update.ins(name, x, y))
        elif roll < 0.70 and live.get(name):
            x, y = live[name].pop(rng.randrange(len(live[name])))
            ops.append(Update.delete(name, x, y))
        elif roll < 0.80 and live.get(name):
            old = live[name].pop(rng.randrange(len(live[name])))
            new = (old[0], f"{name}y{rng.randrange(10_000)}")
            live[name].append(new)
            ops.append(Update.rep(name, old, new))
        else:
            first, second = rng.sample(range(CLUSTERS), 2)
            ops.append(UpdateSequence((
                Update.ins(f"p{first}a", *fresh(f"p{first}a")),
                Update.ins(f"p{second}a", *fresh(f"p{second}a")),
            ), label="cross"))
    return ops


def _touched_names(op) -> set[str]:
    if isinstance(op, UpdateSequence):
        return {simple.function for simple in op}
    return {op.function}


def _restricted_replay(ops: list, names: set[str]) -> DatabaseService:
    """The oracle: an *unsharded* service fed only the ops that touch
    ``names`` (cluster confinement makes the restriction well-defined:
    every op touches one cluster per shard-slice, and ops on other
    clusters cannot move this slice's state or index counters)."""
    oracle = DatabaseService(property_database())
    for op in ops:
        touched = _touched_names(op)
        if touched <= names:
            oracle.execute(op)
        elif touched & names:
            # A cross-cluster sequence: keep only this slice, exactly
            # as the facade's global lane hands it to the lane.
            kept = tuple(simple for simple in op
                         if simple.function in names)
            oracle.execute(kept[0] if len(kept) == 1
                           else UpdateSequence(kept, label=op.label))
    return oracle


def _assert_restriction_holds(facade: ShardedDatabaseService,
                              ops: list) -> None:
    for shard in range(SHARDS):
        names = set(facade.map.names_on(shard))
        oracle = _restricted_replay(ops, names)
        try:
            diff = states_diff(oracle.db, facade.lane(shard).db)
            assert diff is None, f"shard {shard}: {diff}"
        finally:
            oracle.close()


@pytest.mark.parametrize("seed", (0, 1, 2))
def test_per_shard_state_equals_unsharded_restriction(tmp_path, seed):
    ops = _generate_ops(seed, OPS)
    facade = ShardedDatabaseService(
        property_database, SHARDS,
        pins=_pins(),
        log_dir=tmp_path / "lanes",
    )
    try:
        for op in ops:
            facade.execute(op)
        _assert_restriction_holds(facade, ops)
    finally:
        facade.close()


def test_restriction_survives_midrun_failover(tmp_path):
    """Shard 0 runs replicated; halfway through the workload its
    replica is promoted and swapped in as the lane. The per-shard
    restriction property must hold over the *whole* op list — the
    failover is invisible to the oracle because sync(1) acked every
    committed op before the promotion."""
    ops = _generate_ops(seed=42, count=OPS)
    facade = ShardedDatabaseService(
        property_database, SHARDS,
        pins=_pins(),
        log_dir=tmp_path / "lanes",
    )
    # Rebuild lane 0 as a replicated primary with one synchronous
    # replica (the facade's constructor builds plain lanes; swapping
    # in a replicated one is exactly the operator path).
    workdir = tmp_path / "shard0-primary"
    workdir.mkdir()
    db0 = property_database()
    persistence.save(db0, workdir / "snapshot.json", wal_applied=0)
    group = ReplicationGroup("sync(1)", ack_timeout=5.0,
                             retry_interval=0.005)
    lane0 = DatabaseService(
        db0, log=workdir / "wal.log", shard=0,
        replication=group, node="shard-0-primary",
    )
    # Two replicas: the promotion consumes one, and the survivor keeps
    # satisfying the new primary's sync(1) quota.
    group.add_replica("r0", Replica("r0", tmp_path / "r0"))
    group.add_replica("r1", Replica("r1", tmp_path / "r1"))
    plain = facade.lane(0)
    facade.swap_lane(0, lane0)
    plain.close()
    promoted = None
    try:
        half = len(ops) // 2
        for op in ops[:half]:
            facade.execute(op)

        report = group.promote()
        chosen = group.replica(report.chosen)
        group.remove_replica(report.chosen)
        promoted = DatabaseService(
            chosen.db, log=UpdateLog(chosen.wal_path), shard=0,
            replication=group, node=chosen.name,
        )
        facade.swap_lane(0, promoted)
        lane0.close()

        for op in ops[half:]:
            facade.execute(op)
        _assert_restriction_holds(facade, ops)
        assert facade.lane(0) is promoted
        # The surviving replica converges to the promoted lane too.
        assert group.sync_all(timeout=10.0)["lagging"] == []
        survivor = group.replica(group.replica_names()[0])
        assert states_diff(promoted.db, survivor.db) is None
    finally:
        facade.close()
