"""SLO objectives and the burn-rate monitor.

Covers objective validation and description, the multiwindow alert
rule (raise only when both the slow and fast windows are violated,
clear as soon as the fast window recovers), the three measurement
kinds, and the ``slo.*`` counters/actions the transitions emit.
"""

from __future__ import annotations

import pytest

from repro.obs.metrics import MetricError
from repro.obs import OBS, Objective, RingBufferSink, SLOMonitor
from repro.obs.slo import ERROR_RATE, LATENCY, SHED_RATE, default_objectives


def _scrub():
    OBS.disable()
    OBS.reset()
    OBS.metrics.clear()


@pytest.fixture(autouse=True)
def clean_obs():
    _scrub()
    yield
    _scrub()


class FakeClock:
    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def monitor(objective: Objective) -> tuple[SLOMonitor, FakeClock]:
    clock = FakeClock()
    return SLOMonitor((objective,), clock=clock), clock


class TestObjective:
    def test_rejects_unknown_kind(self):
        with pytest.raises(MetricError):
            Objective("x", "throughput", 1.0)

    def test_rejects_negative_threshold(self):
        with pytest.raises(MetricError):
            Objective("x", LATENCY, -0.5)

    def test_rejects_bad_fast_fraction(self):
        with pytest.raises(MetricError):
            Objective("x", LATENCY, 0.1, fast_fraction=1.5)

    def test_describe_is_human_readable(self):
        assert Objective("x", LATENCY, 0.050, family="execute",
                         percentile=99).describe() == \
            "p99 execute latency < 50ms"
        assert "error rate < 1%" in Objective(
            "y", ERROR_RATE, 0.01).describe()

    def test_fast_window_is_a_fraction_of_the_slow(self):
        objective = Objective("x", LATENCY, 0.1, window=60.0,
                              fast_fraction=1 / 6)
        assert objective.fast_window == pytest.approx(10.0)

    def test_defaults_cover_latency_errors_and_shedding(self):
        kinds = {o.kind for o in default_objectives()}
        assert kinds == {LATENCY, ERROR_RATE, SHED_RATE}


class TestBurnRateRule:
    def test_raises_only_when_both_windows_violated(self):
        slo, clock = monitor(Objective(
            "err", ERROR_RATE, 0.10, window=60.0, fast_fraction=1 / 6))
        # Errors old enough to be outside the fast window: slow window
        # is violated, fast is healthy — no alert.
        for _ in range(10):
            slo.record("execute", 0.001, error=True)
        clock.advance(30.0)
        for _ in range(10):
            slo.record("execute", 0.001)
        slo.evaluate()
        assert slo.healthy
        # Fresh errors violate the fast window too — now it fires.
        for _ in range(10):
            slo.record("execute", 0.001, error=True)
        slo.evaluate()
        assert not slo.healthy
        assert slo.raised == 1

    def test_clears_when_fast_window_recovers(self):
        slo, clock = monitor(Objective(
            "err", ERROR_RATE, 0.10, window=60.0, fast_fraction=1 / 6))
        for _ in range(10):
            slo.record("execute", 0.001, error=True)
        slo.evaluate()
        assert not slo.healthy
        # The errors age past the fast window; successes replace them.
        clock.advance(15.0)
        for _ in range(10):
            slo.record("execute", 0.001)
        slo.evaluate()
        assert slo.healthy
        assert slo.cleared == 1

    def test_latency_percentile_measurement(self):
        slo, _ = monitor(Objective(
            "lat", LATENCY, 0.050, family="execute", percentile=99,
            window=60.0))
        for _ in range(98):
            slo.record("execute", 0.001)
        slo.record("execute", 0.500)
        slo.record("execute", 0.500)
        (verdict,) = slo.evaluate()
        assert not verdict.ok
        assert verdict.slow_value == pytest.approx(0.500)

    def test_family_filter_ignores_other_traffic(self):
        slo, _ = monitor(Objective(
            "lat", LATENCY, 0.050, family="execute", window=60.0))
        slo.record("read", 9.0)  # terrible, but not our family
        (verdict,) = slo.evaluate()
        assert verdict.ok

    def test_shed_rate_measurement(self):
        slo, _ = monitor(Objective(
            "shed", SHED_RATE, 0.10, window=60.0))
        for i in range(10):
            slo.record("execute", 0.001, error=(i < 2), shed=(i < 2))
        (verdict,) = slo.evaluate()
        assert verdict.slow_value == pytest.approx(0.2)
        assert not verdict.ok

    def test_empty_window_is_healthy(self):
        slo, clock = monitor(Objective(
            "err", ERROR_RATE, 0.10, window=1.0))
        slo.record("execute", 0.001, error=True)
        clock.advance(10.0)  # everything aged out
        (verdict,) = slo.evaluate()
        assert verdict.ok
        assert verdict.slow_value is None

    def test_samples_prune_to_the_window_horizon(self):
        slo, clock = monitor(Objective(
            "err", ERROR_RATE, 0.10, window=1.0))
        for _ in range(5):
            slo.record("execute", 0.001)
            clock.advance(2.0)
        slo.record("execute", 0.001)
        assert slo.snapshot()["window_samples"] == 1


class TestTransitionNarration:
    def test_raise_and_clear_emit_counters_and_actions(self):
        OBS.enable()
        sink = OBS.events.add_sink(RingBufferSink())
        try:
            slo, clock = monitor(Objective(
                "err", ERROR_RATE, 0.10, window=60.0,
                fast_fraction=1 / 6))
            for _ in range(10):
                slo.record("execute", 0.001, error=True)
            slo.evaluate()
            clock.advance(15.0)
            for _ in range(10):
                slo.record("execute", 0.001)
            slo.evaluate()
        finally:
            OBS.events.remove_sink(sink)
        names = [r.name for r in sink.records if r.kind == "action"]
        assert "slo.alert_raised" in names
        assert "slo.alert_cleared" in names
        assert OBS.metrics.counter("slo.alerts_raised").value == 1
        assert OBS.metrics.counter("slo.alerts_cleared").value == 1
        assert OBS.metrics.gauge("slo.alerts_active").value == 0

    def test_snapshot_shape(self):
        slo, _ = monitor(Objective("err", ERROR_RATE, 0.10))
        snap = slo.snapshot()
        assert snap["healthy"] is True
        assert snap["alerts"] == []
        (verdict,) = snap["objectives"]
        assert verdict["name"] == "err"
        assert "objective" in verdict


class TestReplicationLagObjective:
    def _monitor(self, threshold=10.0, window=60.0):
        from repro.obs.slo import replication_lag_objective

        objective = replication_lag_objective(threshold_seq=threshold,
                                              window=window)
        clock = FakeClock()
        mon = SLOMonitor((objective,), clock=clock)
        return mon, clock, objective

    def test_describe(self):
        from repro.obs.slo import replication_lag_objective

        objective = replication_lag_objective(threshold_seq=256)
        assert objective.describe() == "replication lag <= 256 seqs"

    def test_probe_requires_a_known_objective(self):
        mon, _, _ = self._monitor()
        with pytest.raises(MetricError):
            mon.set_probe("nope", lambda: 0.0)

    def test_add_objective_rejects_duplicates(self):
        from repro.obs.slo import replication_lag_objective

        mon, _, objective = self._monitor()
        with pytest.raises(MetricError):
            mon.add_objective(objective)
        assert "replication.lag" in [o.name for o in mon.objectives]

    def test_level_above_threshold_alerts_and_recovers(self):
        mon, clock, _ = self._monitor(threshold=10.0, window=60.0)
        level = {"value": 0.0}
        mon.set_probe("replication.lag", lambda: level["value"])
        assert all(v.ok for v in mon.evaluate())
        level["value"] = 500.0
        clock.advance(1.0)
        verdicts = mon.evaluate()
        assert not verdicts[0].ok
        assert "replication.lag" in mon.alerts
        # Recovery: the breach sample must age out of the fast window
        # (window/6 = 10s) before the alert clears.
        level["value"] = 0.0
        clock.advance(5.0)
        mon.evaluate()
        assert "replication.lag" in mon.alerts  # still inside fast
        clock.advance(10.0)
        mon.evaluate()
        assert "replication.lag" not in mon.alerts

    def test_none_probe_value_is_no_sample(self):
        mon, clock, _ = self._monitor(threshold=1.0)
        mon.set_probe("replication.lag", lambda: None)
        for _ in range(3):
            clock.advance(1.0)
            verdict = mon.evaluate()[0]
        assert verdict.ok and verdict.slow_requests == 0

    def test_levels_prune_to_the_horizon(self):
        mon, clock, _ = self._monitor(threshold=10.0, window=10.0)
        mon.set_probe("replication.lag", lambda: 99.0)
        mon.evaluate()
        clock.advance(100.0)  # far past the horizon: sample pruned
        mon.set_probe("replication.lag", lambda: 0.0)
        verdict = mon.evaluate()[0]
        assert verdict.ok

    def test_added_objective_joins_snapshot(self):
        from repro.obs.slo import replication_lag_objective

        mon = SLOMonitor(default_objectives(), clock=FakeClock())
        mon.add_objective(replication_lag_objective(threshold_seq=8))
        mon.set_probe("replication.lag", lambda: 2.0)
        snap = mon.snapshot()
        names = [v["name"] for v in snap["objectives"]]
        assert "replication.lag" in names
