"""Slow-path attribution: thresholds, lazy diagnosis, integration.

Covers the family-threshold dispatch, the lazy ``detail`` contract
(built only for slow spans; its failure captured, not raised), the
bounded buffer, and the wired call sites: slow updates and queries
carry an ``explain``-style per-hop cost breakdown and an update-id
cause, surfaced through ``FunctionalDatabase.stats()``.
"""

from __future__ import annotations

import pytest

from repro.fdb.explain import cost_breakdown, derived_breakdown, hop_costs
from repro.fdb.query import fn
from repro.fdb.updates import apply_update
from repro.obs import OBS, SlowLog
from repro.workloads.university import pupil_database, section_42_updates


def _scrub():
    OBS.disable()
    OBS.reset()
    OBS.metrics.clear()
    OBS.events.clear_sinks()
    OBS.slowlog.disable()


@pytest.fixture(autouse=True)
def clean_obs():
    _scrub()
    yield
    _scrub()


# -- the SlowLog primitive ----------------------------------------------------


class TestSlowLog:
    def test_inactive_by_default(self):
        log = SlowLog()
        assert not log.active
        assert log.record("query.pairs", "k", 99.0) is None

    def test_family_dispatch(self):
        log = SlowLog(query_seconds=1.0, update_seconds=2.0)
        assert log.threshold_for("query.image") == 1.0
        assert log.threshold_for("update.delete") == 2.0
        assert log.threshold_for("wal.append") is None

    def test_under_threshold_not_recorded(self):
        log = SlowLog(query_seconds=1.0)
        assert log.record("query.pairs", "k", 0.5) is None
        assert len(log) == 0

    def test_detail_built_only_when_slow(self):
        calls = []

        def detail():
            calls.append(1)
            return {"chains": ["v = a o b"]}

        log = SlowLog(query_seconds=1.0)
        log.record("query.pairs", "fast", 0.1, detail=detail)
        assert calls == []
        entry = log.record("query.pairs", "slow", 2.0, detail=detail)
        assert calls == [1]
        assert entry.detail == {"chains": ["v = a o b"]}

    def test_detail_failure_is_captured(self):
        def broken():
            raise ValueError("no schema")

        log = SlowLog(update_seconds=0.0)
        entry = log.record("update.insert", "k", 1.0, detail=broken)
        assert entry.detail == {"error": "ValueError: no schema"}

    def test_capacity_keeps_newest(self):
        log = SlowLog(query_seconds=0.0, capacity=2)
        for index in range(4):
            log.record("query.pairs", f"k{index}", 1.0)
        assert [r.key for r in log.records] == ["k2", "k3"]

    def test_configure_sentinel_leaves_other_family(self):
        log = SlowLog(query_seconds=1.0)
        log.configure(update_seconds=2.0)
        assert log.query_seconds == 1.0
        log.configure(query_seconds=None)
        assert log.query_seconds is None
        assert log.update_seconds == 2.0

    def test_snapshot_and_render(self):
        log = SlowLog(update_seconds=0.0)
        log.record("update.delete", "pupil", 0.5, cause="u3",
                   detail={"hops": [{"hop": 1, "function": "pupil",
                                     "role": "base", "rows": 4,
                                     "est_cost": 4}]})
        snap = log.snapshot()
        assert snap["update_threshold_seconds"] == 0.0
        (record,) = snap["records"]
        assert record["cause"] == "u3"
        rendered = log.records[0].render()
        assert "update.delete" in rendered and "hop 1" in rendered


# -- cost breakdowns ----------------------------------------------------------


class TestCostBreakdown:
    def test_hop_costs_of_derived_function(self):
        db = pupil_database()
        (derivation,) = db.derived("pupil").derivations
        hops = hop_costs(db, derivation)
        assert [h["hop"] for h in hops] == list(range(1, len(hops) + 1))
        # est_cost is cumulative: never decreases hop to hop.
        costs = [h["est_cost"] for h in hops]
        assert all(b >= a for a, b in zip(costs, costs[1:]))

    def test_breakdown_shapes(self):
        db = pupil_database()
        payload = derived_breakdown(db, "pupil")
        assert payload["chains"]
        assert payload["est_chains"] >= 1
        for hop in payload["hops"]:
            assert {"hop", "function", "role", "rows", "fanout",
                    "est_cost", "derivation"} <= set(hop)

    def test_base_function_breakdown(self):
        db = pupil_database()
        payload = derived_breakdown(db, "teach")
        (hop,) = payload["hops"]
        assert hop["role"] == "base"

    def test_query_breakdown(self):
        db = pupil_database()
        query = ~fn("pupil")
        payload = cost_breakdown(db, query.derivations(db))
        assert payload["hops"]


# -- wired call sites ---------------------------------------------------------


class TestIntegration:
    def test_slow_update_captured_with_cause_and_detail(self):
        OBS.enable()
        OBS.slowlog.configure(update_seconds=0.0)
        db = pupil_database()
        apply_update(db, section_42_updates()[0])
        records = OBS.slowlog.records
        assert records
        top = records[0]
        assert top.op.startswith("update.")
        assert top.cause == "u1"
        assert top.detail and top.detail.get("hops")

    def test_slow_query_captured(self):
        OBS.enable()
        OBS.slowlog.configure(query_seconds=0.0)
        db = pupil_database()
        fn("pupil").pairs(db)
        assert any(r.op.startswith("query.")
                   for r in OBS.slowlog.records)

    def test_fast_path_records_nothing(self):
        OBS.enable()
        OBS.slowlog.configure(update_seconds=3600.0,
                              query_seconds=3600.0)
        db = pupil_database()
        apply_update(db, section_42_updates()[0])
        fn("pupil").pairs(db)
        assert len(OBS.slowlog.records) == 0

    def test_stats_surfaces_slowlog(self):
        OBS.enable()
        OBS.slowlog.configure(update_seconds=0.0)
        db = pupil_database()
        apply_update(db, section_42_updates()[0])
        snap = db.stats()
        assert snap["slowlog"]["records"]
        assert snap["slowlog"]["update_threshold_seconds"] == 0.0
