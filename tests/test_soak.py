"""The chaos soak, sized for CI: 8 workers, a live fault schedule,
zero tolerated divergence."""

from __future__ import annotations

import json

from repro.faults.soak import SoakConfig, run_soak


class TestSoak:
    def test_soak_with_faults_converges(self, tmp_path):
        report = run_soak(SoakConfig(
            threads=8,
            ops_per_thread=12,
            seed=0,
            workdir=tmp_path,
            jsonl=tmp_path / "events.jsonl",
        ))
        assert report.divergence is None
        assert report.recovery_divergence is None
        assert report.hung_workers == 0
        assert report.breaker_opens > 0
        assert report.breaker_closes > 0
        assert report.ok, "\n".join(report.lines())
        # The event log is real JSONL with the breaker narration.
        names = [json.loads(line).get("name")
                 for line in (tmp_path / "events.jsonl").read_text(
                     encoding="utf-8").splitlines() if line.strip()]
        assert "breaker.open" in names
        assert "breaker.closed" in names

    def test_soak_without_faults_is_pure_concurrency(self, tmp_path):
        report = run_soak(SoakConfig(
            threads=6,
            ops_per_thread=10,
            seed=2,
            faults=False,
            workdir=tmp_path,
            jsonl=tmp_path / "events.jsonl",
        ))
        assert report.divergence is None
        assert report.recovery_divergence is None
        assert report.hung_workers == 0
        # Every planned operation resolved to some outcome.
        assert report.accounting_error is None
