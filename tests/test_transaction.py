"""Tests for atomic update scopes."""

from __future__ import annotations

import pytest

from repro.errors import TransactionError
from repro.fdb.logic import Truth
from repro.fdb.transaction import Transaction


class TestCommit:
    def test_successful_block_keeps_changes(self, pupil_db):
        with pupil_db.transaction():
            pupil_db.insert("teach", "gauss", "cs")
            pupil_db.delete("teach", "euclid", "math")
        assert pupil_db.truth_of("teach", "gauss", "cs") is Truth.TRUE
        assert pupil_db.truth_of("teach", "euclid", "math") is Truth.FALSE


class TestRollback:
    def test_exception_restores_tables(self, pupil_db):
        with pytest.raises(RuntimeError):
            with pupil_db.transaction():
                pupil_db.insert("teach", "gauss", "cs")
                raise RuntimeError("boom")
        assert pupil_db.truth_of("teach", "gauss", "cs") is Truth.FALSE
        assert pupil_db.truth_of("teach", "euclid", "math") is Truth.TRUE

    def test_rollback_restores_ncs_and_flags(self, pupil_db):
        with pytest.raises(RuntimeError):
            with pupil_db.transaction():
                pupil_db.delete("pupil", "euclid", "john")
                assert len(pupil_db.ncs) == 1
                raise RuntimeError("boom")
        assert len(pupil_db.ncs) == 0
        fact = pupil_db.table("teach").get("euclid", "math")
        assert fact.truth is Truth.TRUE and fact.ncl == set()

    def test_rollback_restores_null_counter(self, pupil_db):
        with pytest.raises(RuntimeError):
            with pupil_db.transaction():
                pupil_db.insert("pupil", "gauss", "bill")  # burns n1
                raise RuntimeError("boom")
        assert pupil_db.nulls.next_index == 1

    def test_replace_atomicity_with_failing_insert(self, pupil_db,
                                                   monkeypatch):
        from repro.fdb import updates

        original_insert = updates.insert

        def failing_insert(db, name, x, y):
            raise RuntimeError("insert failed")

        monkeypatch.setattr(updates, "insert", failing_insert)
        with pytest.raises(RuntimeError):
            updates.replace(
                pupil_db, "teach", ("euclid", "math"), ("euclid", "cs")
            )
        monkeypatch.setattr(updates, "insert", original_insert)
        # The delete was rolled back.
        assert pupil_db.truth_of("teach", "euclid", "math") is Truth.TRUE


class TestMisuse:
    def test_double_enter_rejected(self, pupil_db):
        transaction = Transaction(pupil_db)
        with transaction:
            with pytest.raises(TransactionError):
                transaction.__enter__()

    def test_exit_without_enter(self, pupil_db):
        transaction = Transaction(pupil_db)
        with pytest.raises(TransactionError):
            transaction.__exit__(None, None, None)

    def test_sequential_reuse_allowed(self, pupil_db):
        transaction = Transaction(pupil_db)
        with transaction:
            pupil_db.insert("teach", "gauss", "cs")
        with transaction:
            pupil_db.insert("teach", "noether", "algebra")
        assert len(pupil_db.table("teach")) == 4


class TestConcurrencyGuard:
    def test_nested_transaction_rejected(self, pupil_db):
        with pupil_db.transaction():
            with pytest.raises(TransactionError, match="nested"):
                with pupil_db.transaction():
                    pass  # pragma: no cover - never reached

    def test_concurrent_thread_rejected(self, pupil_db):
        import threading

        errors: list[BaseException] = []
        entered = threading.Event()
        release = threading.Event()

        def holder():
            with pupil_db.transaction():
                entered.set()
                release.wait(5.0)

        worker = threading.Thread(target=holder)
        worker.start()
        try:
            assert entered.wait(5.0)
            try:
                with pupil_db.transaction():
                    pass  # pragma: no cover - never reached
            except TransactionError as exc:
                errors.append(exc)
        finally:
            release.set()
            worker.join(5.0)
        assert len(errors) == 1
        assert "concurrent" in str(errors[0])

    def test_guard_released_after_commit_and_rollback(self, pupil_db):
        with pupil_db.transaction():
            pupil_db.insert("teach", "gauss", "cs")
        with pytest.raises(RuntimeError):
            with pupil_db.transaction():
                raise RuntimeError("boom")
        # Both exits released the guard; a fresh transaction works.
        with pupil_db.transaction():
            pupil_db.insert("teach", "noether", "algebra")

    def test_atomic_reenters_open_transaction(self, pupil_db):
        from repro.fdb.transaction import atomic

        with pupil_db.transaction():
            # Nested atomic scopes are no-ops instead of errors...
            with atomic(pupil_db):
                pupil_db.insert("teach", "gauss", "cs")
            pupil_db.insert("teach", "noether", "algebra")
            raise_rollback = True
        assert pupil_db.truth_of("teach", "gauss", "cs") is Truth.TRUE
        assert raise_rollback

    def test_atomic_standalone_is_a_transaction(self, pupil_db):
        from repro.fdb.transaction import atomic

        with pytest.raises(RuntimeError):
            with atomic(pupil_db):
                pupil_db.insert("teach", "gauss", "cs")
                raise RuntimeError("boom")
        assert pupil_db.truth_of("teach", "gauss", "cs") is Truth.FALSE
