"""Unit and property tests for the type-functionality algebra."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.types import (
    Multiplicity,
    ObjectType,
    TypeFunctionality,
    compose_functionalities,
    product_type,
)

TF = TypeFunctionality
ALL_TFS = TF.all()
tf_strategy = st.sampled_from(ALL_TFS)


class TestMultiplicity:
    def test_join_many_absorbs(self):
        assert Multiplicity.ONE.join(Multiplicity.MANY) is Multiplicity.MANY
        assert Multiplicity.MANY.join(Multiplicity.ONE) is Multiplicity.MANY
        assert Multiplicity.MANY.join(Multiplicity.MANY) is Multiplicity.MANY

    def test_join_one_identity(self):
        assert Multiplicity.ONE.join(Multiplicity.ONE) is Multiplicity.ONE

    def test_str(self):
        assert str(Multiplicity.ONE) == "one"
        assert str(Multiplicity.MANY) == "many"


class TestTypeFunctionalityBasics:
    def test_four_canonical_instances(self):
        assert len(set(ALL_TFS)) == 4

    @pytest.mark.parametrize("text, expected", [
        ("one-one", TF.ONE_ONE),
        ("one-many", TF.ONE_MANY),
        ("many-one", TF.MANY_ONE),
        ("many-many", TF.MANY_MANY),
        ("Many - One", TF.MANY_ONE),
        ("MANY-MANY", TF.MANY_MANY),
        ("many -  one", TF.MANY_ONE),
    ])
    def test_parse(self, text, expected):
        assert TF.parse(text) == expected

    @pytest.mark.parametrize("bad", ["", "many", "many-", "-one",
                                     "some-one", "many-one-many"])
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            TF.parse(bad)

    def test_str_roundtrip(self):
        for tf in ALL_TFS:
            assert TF.parse(str(tf)) == tf

    def test_repr(self):
        assert repr(TF.MANY_ONE) == "TypeFunctionality.MANY_ONE"

    def test_single_valued(self):
        assert TF.MANY_ONE.is_single_valued
        assert TF.ONE_ONE.is_single_valued
        assert not TF.MANY_MANY.is_single_valued
        assert not TF.ONE_MANY.is_single_valued

    def test_injective(self):
        assert TF.ONE_MANY.is_injective
        assert TF.ONE_ONE.is_injective
        assert not TF.MANY_ONE.is_injective
        assert not TF.MANY_MANY.is_injective


class TestCompositionTable:
    """The full 4x4 composition table, checked against the worst-case
    rule (a composite component is ONE only when both factors' are)."""

    def test_identity_element(self):
        for tf in ALL_TFS:
            assert TF.ONE_ONE.compose(tf) == tf
            assert tf.compose(TF.ONE_ONE) == tf

    def test_many_many_absorbing(self):
        for tf in ALL_TFS:
            assert TF.MANY_MANY.compose(tf) == TF.MANY_MANY
            assert tf.compose(TF.MANY_MANY) == TF.MANY_MANY

    def test_paper_grade_case(self):
        # score (many-one) o cutoff (many-one) = many-one = grade's.
        assert TF.MANY_ONE.compose(TF.MANY_ONE) == TF.MANY_ONE

    def test_mixed(self):
        assert TF.MANY_ONE.compose(TF.ONE_MANY) == TF.MANY_MANY
        assert TF.ONE_MANY.compose(TF.MANY_ONE) == TF.MANY_MANY
        assert TF.ONE_MANY.compose(TF.ONE_MANY) == TF.ONE_MANY

    def test_exhaustive_against_rule(self):
        for a in ALL_TFS:
            for b in ALL_TFS:
                composite = a.compose(b)
                assert composite.src_per_tgt == a.src_per_tgt.join(
                    b.src_per_tgt
                )
                assert composite.tgt_per_src == a.tgt_per_src.join(
                    b.tgt_per_src
                )


class TestAlgebraicLaws:
    @given(tf_strategy, tf_strategy, tf_strategy)
    def test_associativity(self, a, b, c):
        assert a.compose(b).compose(c) == a.compose(b.compose(c))

    @given(tf_strategy, tf_strategy)
    def test_commutativity(self, a, b):
        # Worst-case composition happens to be commutative.
        assert a.compose(b) == b.compose(a)

    @given(tf_strategy)
    def test_idempotence(self, a):
        assert a.compose(a) == a

    @given(tf_strategy)
    def test_inverse_involution(self, a):
        assert a.inverse().inverse() == a

    @given(tf_strategy, tf_strategy)
    def test_inverse_antihomomorphism(self, a, b):
        # (a o b)^-1 = b^-1 o a^-1
        assert a.compose(b).inverse() == b.inverse().compose(a.inverse())

    def test_inverse_swaps(self):
        assert TF.MANY_ONE.inverse() == TF.ONE_MANY
        assert TF.ONE_MANY.inverse() == TF.MANY_ONE
        assert TF.ONE_ONE.inverse() == TF.ONE_ONE
        assert TF.MANY_MANY.inverse() == TF.MANY_MANY

    @given(st.lists(tf_strategy, max_size=6))
    def test_fold_matches_pairwise(self, tfs):
        expected = TF.ONE_ONE
        for tf in tfs:
            expected = expected.compose(tf)
        assert compose_functionalities(tfs) == expected

    def test_fold_empty_is_identity(self):
        assert compose_functionalities([]) == TF.ONE_ONE


class TestObjectType:
    def test_simple(self):
        t = ObjectType("marks")
        assert t.name == "marks"
        assert not t.is_product
        assert str(t) == "marks"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            ObjectType("")

    def test_product(self):
        t = product_type("student", "course")
        assert t.is_product
        assert t.components == ("student", "course")
        assert t.name == "[student; course]"

    def test_product_needs_components(self):
        with pytest.raises(ValueError):
            product_type()

    def test_parse_simple(self):
        assert ObjectType.parse("  faculty ") == ObjectType("faculty")

    def test_parse_product(self):
        parsed = ObjectType.parse("[student; course]")
        assert parsed == product_type("student", "course")

    def test_parse_product_whitespace(self):
        assert ObjectType.parse("[ student ;course ]") == product_type(
            "student", "course"
        )

    def test_parse_empty_rejected(self):
        with pytest.raises(ValueError):
            ObjectType.parse("   ")
        with pytest.raises(ValueError):
            ObjectType.parse("[ ; ]")

    def test_equality_distinguishes_products(self):
        assert product_type("a", "b") != product_type("b", "a")
        assert ObjectType("[a; b]", ("a", "b")) == product_type("a", "b")

    def test_hashable(self):
        assert len({ObjectType("a"), ObjectType("a"), ObjectType("b")}) == 2
