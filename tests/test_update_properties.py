"""Property-based tests: structural invariants hold under arbitrary
update streams.

A database built from random chains and hammered with random mixed
update streams must always satisfy:

* the NC/NCL dual structure is consistent (every NC member fact exists,
  is ambiguous, and points back; every NCL index points to a live NC);
* stored facts are never FALSE;
* an insert makes its fact true, a delete makes it not-true (base
  deletes: false);
* derived truth valuation agrees with its definition (a TRUE derived
  pair is witnessed by an exact all-true chain).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fdb.database import FunctionalDatabase
from repro.fdb.evaluate import derived_extension, iter_chains
from repro.fdb.logic import Truth
from repro.fdb.updates import apply_update
from repro.workloads.generator import (
    WorkloadConfig,
    chain_fdb,
    random_instance,
    random_updates,
)


def check_invariants(db: FunctionalDatabase) -> None:
    # -- NC -> fact direction
    for nc in db.ncs:
        assert len(nc.members) >= 1
        for ref in nc.members:
            fact = db.table(ref.function).get(ref.x, ref.y)
            assert fact is not None, f"dangling NC member {ref}"
            assert fact.truth is Truth.AMBIGUOUS, f"NC member not A: {ref}"
            assert nc.index in fact.ncl, f"missing back-pointer: {ref}"
    # -- fact -> NC direction, and no stored falsity
    for name in db.base_names:
        for fact in db.table(name).facts():
            assert fact.truth is not Truth.FALSE
            for index in fact.ncl:
                assert index in db.ncs, (
                    f"fact points to dead NC g{index}"
                )
                member_refs = db.ncs.get(index).members
                assert fact.ref(name) in member_refs


def check_derived_valuation(db: FunctionalDatabase) -> None:
    for name in db.derived_names:
        extension = derived_extension(db, name)
        derived = db.derived(name)
        for (x, y), truth in extension.items():
            if truth is Truth.TRUE:
                witnessed = any(
                    chain.all_exact and chain.all_true
                    for derivation in derived.derivations
                    for chain in iter_chains(db, derivation, x, y)
                )
                assert witnessed, f"TRUE {name}({x})={y} has no witness"


def build(seed: int, k: int, rows: int) -> FunctionalDatabase:
    db = chain_fdb(k)
    random_instance(db, rows, seed=seed, value_pool=6)
    return db


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    k=st.integers(2, 4),
    rows=st.integers(0, 10),
    n_updates=st.integers(0, 25),
)
def test_invariants_hold_under_random_streams(seed, k, rows, n_updates):
    db = build(seed, k, rows)
    updates = random_updates(
        db, n_updates,
        WorkloadConfig(seed=seed + 1, value_pool=6, fresh_value_rate=0.4),
    )
    for update in updates:
        apply_update(db, update)
        check_invariants(db)
    check_derived_valuation(db)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_insert_asserts_truth(seed):
    db = build(seed, 2, 5)
    db.insert("v", "T0_x", "T2_y")
    assert db.truth_of("v", "T0_x", "T2_y") is Truth.TRUE
    db.insert("f1", "T0_a", "T1_b")
    assert db.truth_of("f1", "T0_a", "T1_b") is Truth.TRUE
    check_invariants(db)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_delete_denies_truth(seed):
    db = build(seed, 2, 8)
    extension = derived_extension(db, "v")
    for (x, y), truth in list(extension.items())[:3]:
        db.delete("v", x, y)
        assert db.truth_of("v", x, y) is not Truth.TRUE
        check_invariants(db)
    for fact in list(db.table("f1").facts())[:3]:
        x, y = fact.pair
        db.delete("f1", x, y)
        assert db.truth_of("f1", x, y) is Truth.FALSE
        check_invariants(db)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_derived_updates_never_remove_base_facts(seed):
    """The side-effect-freedom property, at scale: derived INS/DEL only
    ever adds rows or flips flags — stored pairs survive."""
    db = build(seed, 3, 8)
    before = {
        name: {fact.pair for fact in db.table(name).facts()}
        for name in db.base_names
    }
    extension = list(derived_extension(db, "v"))
    for pair in extension[:4]:
        db.delete("v", *pair)
    db.insert("v", "T0_fresh", "T3_fresh")
    for name, pairs in before.items():
        now = {fact.pair for fact in db.table(name).facts()}
        assert pairs <= now


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_insert_after_delete_restores_truth(seed):
    db = build(seed, 2, 8)
    extension = list(derived_extension(db, "v"))
    if not extension:
        return
    x, y = extension[0]
    db.delete("v", x, y)
    db.insert("v", x, y)
    assert db.truth_of("v", x, y) is Truth.TRUE
    check_invariants(db)
