"""Tests for general update requests (atomic update sequences)."""

from __future__ import annotations

import pytest

from repro.core.design_aid import AutoDesigner
from repro.errors import UpdateError
from repro.fdb.journal import Journal
from repro.fdb.logic import Truth
from repro.fdb.updates import Update, UpdateSequence, apply_sequence
from repro.lang.interp import Interpreter


class TestUpdateSequence:
    def test_str(self):
        sequence = UpdateSequence((
            Update.ins("f", "a", "b"), Update.delete("g", "c", "d"),
        ), label="fixups")
        assert str(sequence) == (
            "BEGIN fixups { INS(f, <a, b>); DEL(g, <c, d>) }"
        )

    def test_empty_rejected(self):
        with pytest.raises(UpdateError):
            UpdateSequence(())

    def test_len_iter(self):
        sequence = UpdateSequence((Update.ins("f", "a", "b"),))
        assert len(sequence) == 1
        assert [u.kind for u in sequence] == ["INS"]


class TestApplySequence:
    def test_all_applied(self, pupil_db):
        apply_sequence(pupil_db, UpdateSequence((
            Update.ins("teach", "gauss", "optics"),
            Update.delete("teach", "euclid", "math"),
        )))
        assert pupil_db.truth_of("teach", "gauss", "optics") is Truth.TRUE
        assert pupil_db.truth_of("teach", "euclid", "math") is Truth.FALSE

    def test_atomic_on_failure(self, pupil_db):
        sequence = UpdateSequence((
            Update.ins("teach", "gauss", "optics"),
            Update.ins("no_such_function", "a", "b"),
        ))
        with pytest.raises(Exception):
            apply_sequence(pupil_db, sequence)
        # The first insert was rolled back with the failure.
        assert pupil_db.truth_of("teach", "gauss", "optics") is Truth.FALSE


class TestJournaledSequences:
    def test_one_entry_one_undo(self, pupil_db):
        journal = Journal(pupil_db)
        journal.execute(UpdateSequence((
            Update.delete("pupil", "euclid", "john"),
            Update.ins("pupil", "gauss", "bill"),
        )))
        assert len(journal.history) == 1
        assert len(pupil_db.ncs) == 1
        journal.undo()
        assert len(pupil_db.ncs) == 0
        assert pupil_db.nulls.next_index == 1
        journal.redo()
        assert len(pupil_db.ncs) == 1
        assert pupil_db.truth_of("pupil", "gauss", "bill") is Truth.TRUE


class TestLanguageBlocks:
    SETUP = """
        add teach: faculty -> course (many-many);
        add class_list: course -> student (many-many);
        add pupil: faculty -> student (many-many);
        commit;
        insert teach(euclid, math);
        insert class_list(math, john);
    """

    def _run(self, script: str):
        interp = Interpreter(AutoDesigner())
        return interp, interp.execute(script)

    def test_begin_end_executes_atomically(self):
        interp, out = self._run(self.SETUP + """
            begin;
            delete pupil(euclid, john);
            insert teach(gauss, optics);
            end;
            history;
        """)
        joined = "\n".join(out)
        assert "queued: DEL(pupil, <euclid, john>)" in joined
        assert "ok: BEGIN { DEL(pupil, <euclid, john>); "in joined
        # One journal entry for the whole block (+2 setup inserts).
        assert "3 applied, 0 undone" in joined

    def test_undo_reverts_whole_block(self):
        interp, out = self._run(self.SETUP + """
            begin;
            delete pupil(euclid, john);
            insert teach(gauss, optics);
            end;
            undo;
            truth pupil(euclid, john);
            truth teach(gauss, optics);
        """)
        assert "pupil(euclid) = john: true" in out
        assert "teach(gauss) = optics: false" in out

    def test_abort_discards(self):
        interp, out = self._run(self.SETUP + """
            begin;
            delete pupil(euclid, john);
            abort;
            truth pupil(euclid, john);
        """)
        assert "aborted: discarded 1 queued updates" in out
        assert out[-1] == "pupil(euclid) = john: true"

    def test_nested_begin_rejected(self):
        interp, out = self._run(self.SETUP + "begin; begin;")
        assert out[-1] == "error: a begin block is already open"

    def test_end_without_begin_rejected(self):
        interp, out = self._run(self.SETUP + "end;")
        assert out[-1] == "error: no begin block is open"

    def test_empty_block(self):
        interp, out = self._run(self.SETUP + "begin; end;")
        assert out[-1] == "end: empty sequence, nothing to do"

    def test_guarded_block_undone_as_unit(self):
        interp, out = self._run(self.SETUP + """
            constraint include class_list.domain in teach.range;
            guard on;
            begin;
            insert teach(gauss, optics);
            insert class_list(alchemy, ada);
            end;
        """)
        assert out[-1].startswith("error: sequence undone")
        # Both halves of the block are gone (the error aborted the
        # script, so query in a fresh execute call).
        followup = interp.execute("truth teach(gauss, optics);")
        assert followup[-1] == "teach(gauss) = optics: false"
