"""Tests for the Section 4.1 update algorithms, including a row-by-row
replay of the Section 4.2 worked example (u1..u5)."""

from __future__ import annotations

import pytest

from repro.core.derivation import Derivation
from repro.core.schema import FunctionDef
from repro.core.types import ObjectType, TypeFunctionality
from repro.errors import UpdateError
from repro.fdb.database import FunctionalDatabase
from repro.fdb.evaluate import derived_extension
from repro.fdb.logic import Truth
from repro.fdb.updates import (
    Update,
    apply_update,
    base_delete,
    base_insert,
    derived_delete,
    derived_insert,
)
from repro.fdb.values import NullValue, is_null

A, B, C = (ObjectType(n) for n in "ABC")
MM = TypeFunctionality.MANY_MANY
T, AMB, F = Truth.TRUE, Truth.AMBIGUOUS, Truth.FALSE


class TestBaseInsert:
    def test_new_fact_stored_true(self, pupil_db):
        base_insert(pupil_db, "teach", "gauss", "cs")
        fact = pupil_db.table("teach").get("gauss", "cs")
        assert fact.truth is T and fact.ncl == set()

    def test_existing_ambiguous_fact_truthified(self, pupil_db):
        pupil_db.delete("pupil", "euclid", "john")  # creates the NC
        fact = pupil_db.table("teach").get("euclid", "math")
        assert fact.truth is AMB
        base_insert(pupil_db, "teach", "euclid", "math")
        assert fact.truth is T
        assert fact.ncl == set()
        assert len(pupil_db.ncs) == 0

    def test_insert_dismantles_all_ncs_of_fact(self, pupil_db):
        pupil_db.delete("pupil", "euclid", "john")
        pupil_db.delete("pupil", "euclid", "bill")
        fact = pupil_db.table("teach").get("euclid", "math")
        assert len(fact.ncl) == 2
        base_insert(pupil_db, "teach", "euclid", "math")
        assert len(pupil_db.ncs) == 0
        # The other members of the dismantled NCs stay ambiguous.
        assert pupil_db.table("class_list").get("math", "john").truth is AMB

    def test_idempotent_on_true_fact(self, pupil_db):
        base_insert(pupil_db, "teach", "euclid", "math")
        assert len(pupil_db.table("teach")) == 2


class TestBaseDelete:
    def test_removes_fact(self, pupil_db):
        base_delete(pupil_db, "teach", "euclid", "math")
        assert pupil_db.table("teach").get("euclid", "math") is None
        assert pupil_db.truth_of("teach", "euclid", "math") is F

    def test_absent_fact_noop(self, pupil_db):
        base_delete(pupil_db, "teach", "nobody", "nothing")
        assert len(pupil_db.table("teach")) == 2

    def test_dismantles_ncs(self, pupil_db):
        pupil_db.delete("pupil", "euclid", "john")
        base_delete(pupil_db, "teach", "euclid", "math")
        assert len(pupil_db.ncs) == 0
        # Its NC partner stays ambiguous with an empty NCL (the u3 state).
        partner = pupil_db.table("class_list").get("math", "john")
        assert partner.truth is AMB and partner.ncl == set()


class TestDerivedDelete:
    def test_creates_nc_per_chain(self, pupil_db):
        derived_delete(pupil_db, "pupil", "euclid", "john")
        assert len(pupil_db.ncs) == 1
        nc = pupil_db.ncs.get(1)
        assert {str(m) for m in nc.members} == {
            "<teach, euclid, math>", "<class_list, math, john>",
        }

    def test_fact_becomes_false(self, pupil_db):
        derived_delete(pupil_db, "pupil", "euclid", "john")
        assert pupil_db.truth_of("pupil", "euclid", "john") is F

    def test_siblings_become_ambiguous_not_deleted(self, pupil_db):
        """The paper's headline claim: no side effects. <euclid, bill>
        and <laplace, john> survive (ambiguous), unlike under naive
        translation."""
        derived_delete(pupil_db, "pupil", "euclid", "john")
        extension = derived_extension(pupil_db, "pupil")
        assert extension[("euclid", "bill")] is AMB
        assert extension[("laplace", "john")] is AMB
        assert extension[("laplace", "bill")] is T
        assert ("euclid", "john") not in extension
        # And crucially: no base fact was removed.
        assert len(pupil_db.table("teach")) == 2
        assert len(pupil_db.table("class_list")) == 2

    def test_noop_when_underivable(self, pupil_db):
        derived_delete(pupil_db, "pupil", "nobody", "nothing")
        assert len(pupil_db.ncs) == 0

    def test_idempotent(self, pupil_db):
        derived_delete(pupil_db, "pupil", "euclid", "john")
        derived_delete(pupil_db, "pupil", "euclid", "john")
        assert len(pupil_db.ncs) == 1

    def test_multiple_chains_all_negated(self, pupil_db):
        pupil_db.insert("teach", "euclid", "physics")
        pupil_db.insert("class_list", "physics", "john")
        derived_delete(pupil_db, "pupil", "euclid", "john")
        assert len(pupil_db.ncs) == 2
        assert pupil_db.truth_of("pupil", "euclid", "john") is F

    def test_single_step_derivation_deletes_base(self):
        db = FunctionalDatabase()
        f = FunctionDef("f", A, B, MM)
        db.declare_base(f)
        db.declare_derived(FunctionDef("v", A, B, MM), Derivation.of(f))
        db.load("f", [("a", "b")])
        derived_delete(db, "v", "a", "b")
        assert db.table("f").get("a", "b") is None
        assert len(db.ncs) == 0


class TestDerivedInsert:
    def test_creates_nvc(self, pupil_db):
        derived_insert(pupil_db, "pupil", "gauss", "bill")
        assert pupil_db.truth_of("pupil", "gauss", "bill") is T
        nvc_fact = pupil_db.table("teach").get("gauss", NullValue(1))
        assert nvc_fact is not None and nvc_fact.truth is T

    def test_noop_when_already_true(self, pupil_db):
        derived_insert(pupil_db, "pupil", "euclid", "john")
        # No NVC was created: teach still has exactly two rows.
        assert len(pupil_db.table("teach")) == 2
        assert pupil_db.nulls.next_index == 1

    def test_reuses_existing_nvc(self, pupil_db):
        derived_insert(pupil_db, "pupil", "gauss", "bill")
        first_nulls = pupil_db.nulls.next_index
        # Make the NVC ambiguous, then insert again: clean-up, no new
        # nulls.
        derived_delete(pupil_db, "pupil", "gauss", "bill")
        # The exact NVC chain is negated; an ambiguously-matching chain
        # (<gauss, n1> ~ <math, bill>) keeps the fact ambiguous, per the
        # Section 3.2 valuation.
        assert pupil_db.truth_of("pupil", "gauss", "bill") is AMB
        derived_insert(pupil_db, "pupil", "gauss", "bill")
        assert pupil_db.truth_of("pupil", "gauss", "bill") is T
        assert pupil_db.nulls.next_index == first_nulls

    def test_insert_mode_all_covers_every_derivation(self):
        db = FunctionalDatabase(insert_mode="all")
        f = FunctionDef("f", A, B, MM)
        g = FunctionDef("g", A, B, MM)
        db.declare_base(f)
        db.declare_base(g)
        db.declare_derived(
            FunctionDef("v", A, B, MM), [Derivation.of(f), Derivation.of(g)]
        )
        derived_insert(db, "v", "a", "b")
        assert db.table("f").get("a", "b") is not None
        assert db.table("g").get("a", "b") is not None

    def test_insert_mode_primary_covers_first_only(self):
        db = FunctionalDatabase(insert_mode="primary")
        f = FunctionDef("f", A, B, MM)
        g = FunctionDef("g", A, B, MM)
        db.declare_base(f)
        db.declare_base(g)
        db.declare_derived(
            FunctionDef("v", A, B, MM), [Derivation.of(f), Derivation.of(g)]
        )
        derived_insert(db, "v", "a", "b")
        assert db.table("f").get("a", "b") is not None
        assert db.table("g").get("a", "b") is None


class TestUpdateObject:
    def test_str(self):
        assert str(Update.ins("f", "a", "b")) == "INS(f, <a, b>)"
        assert str(Update.delete("f", "a", "b")) == "DEL(f, <a, b>)"
        assert str(Update.rep("f", ("a", "b"), ("c", "d"))) == (
            "REP(f, <a, b>, <c, d>)"
        )

    def test_validation(self):
        with pytest.raises(UpdateError):
            Update("UPSERT", "f", ("a", "b"))
        with pytest.raises(UpdateError):
            Update("INS", "f", ("a", "b"), ("c", "d"))
        with pytest.raises(UpdateError):
            Update("REP", "f", ("a", "b"))

    def test_apply_dispatch(self, pupil_db):
        apply_update(pupil_db, Update.ins("teach", "gauss", "cs"))
        assert pupil_db.truth_of("teach", "gauss", "cs") is T
        apply_update(pupil_db, Update.delete("teach", "gauss", "cs"))
        assert pupil_db.truth_of("teach", "gauss", "cs") is F
        apply_update(pupil_db, Update.rep(
            "teach", ("euclid", "math"), ("euclid", "cs")
        ))
        assert pupil_db.truth_of("teach", "euclid", "cs") is T


class TestSection42Trace(object):
    """Row-by-row replay of the five update tables of Section 4.2."""

    def _teach_rows(self, db):
        return db.table("teach").rows()

    def _class_rows(self, db):
        return db.table("class_list").rows()

    def _pupil(self, db):
        return derived_extension(db, "pupil")

    def test_initial_state(self, pupil_db):
        assert self._pupil(pupil_db) == {
            ("euclid", "john"): T, ("euclid", "bill"): T,
            ("laplace", "john"): T, ("laplace", "bill"): T,
        }

    def test_after_u1(self, pupil_db, u_sequence):
        apply_update(pupil_db, u_sequence[0])
        assert self._teach_rows(pupil_db) == [
            ("euclid", "math", "A", "{g1}"),
            ("laplace", "math", "T", "{}"),
        ]
        assert self._class_rows(pupil_db) == [
            ("math", "john", "A", "{g1}"),
            ("math", "bill", "T", "{}"),
        ]
        assert self._pupil(pupil_db) == {
            ("euclid", "bill"): AMB,
            ("laplace", "john"): AMB,
            ("laplace", "bill"): T,
        }

    def test_after_u2(self, pupil_db, u_sequence):
        for update in u_sequence[:2]:
            apply_update(pupil_db, update)
        n1 = NullValue(1)
        assert self._teach_rows(pupil_db)[2] == ("gauss", "n1", "T", "{}")
        assert self._class_rows(pupil_db)[2] == ("n1", "bill", "T", "{}")
        pupil = self._pupil(pupil_db)
        assert pupil[("gauss", "bill")] is T      # the NVC matches exactly
        assert pupil[("gauss", "john")] is AMB    # n1 ~ math ambiguous
        assert pupil_db.table("teach").get("gauss", n1).truth is T

    def test_after_u3(self, pupil_db, u_sequence):
        for update in u_sequence[:3]:
            apply_update(pupil_db, update)
        assert pupil_db.table("teach").get("euclid", "math") is None
        assert len(pupil_db.ncs) == 0
        partner = pupil_db.table("class_list").get("math", "john")
        assert partner.truth is AMB and partner.ncl == set()
        pupil = self._pupil(pupil_db)
        assert pupil == {
            ("laplace", "john"): AMB,
            ("laplace", "bill"): T,
            ("gauss", "bill"): T,
            ("gauss", "john"): AMB,
        }

    def test_after_u4(self, pupil_db, u_sequence):
        for update in u_sequence[:4]:
            apply_update(pupil_db, update)
        partner = pupil_db.table("class_list").get("math", "john")
        assert partner.truth is T
        pupil = self._pupil(pupil_db)
        assert pupil[("laplace", "john")] is T
        assert pupil[("gauss", "john")] is AMB

    def test_after_u5(self, pupil_db, u_sequence):
        for update in u_sequence:
            apply_update(pupil_db, update)
        pupil = self._pupil(pupil_db)
        assert pupil == {
            ("gauss", "john"): T,
            ("laplace", "john"): T,
            ("laplace", "bill"): T,
            ("gauss", "bill"): T,
        }
        # The NVC row <gauss, n1> remains, as in the paper's last table.
        assert any(
            is_null(fact.y) for fact in pupil_db.table("teach").facts()
        )

    def test_no_base_fact_ever_deleted_by_derived_updates(
        self, pupil_db, u_sequence
    ):
        """Side-effect freedom: u1 and u2 are derived updates and must
        not remove stored base facts."""
        before_teach = {f.pair for f in pupil_db.table("teach").facts()}
        before_class = {f.pair for f in pupil_db.table("class_list").facts()}
        apply_update(pupil_db, u_sequence[0])  # DEL(pupil, ...)
        apply_update(pupil_db, u_sequence[1])  # INS(pupil, ...)
        after_teach = {f.pair for f in pupil_db.table("teach").facts()}
        after_class = {f.pair for f in pupil_db.table("class_list").facts()}
        assert before_teach <= after_teach
        assert before_class <= after_class
