"""Tests for values, nulls and the Section 3.2 matching rules."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fdb.values import (
    NullFactory,
    NullValue,
    is_null,
    match_ambiguously,
    match_exactly,
    matches,
)


class TestNullValue:
    def test_equality_by_index(self):
        assert NullValue(1) == NullValue(1)
        assert NullValue(1) != NullValue(2)

    def test_never_equals_data(self):
        assert NullValue(1) != "n1"
        assert NullValue(1) != 1

    def test_str(self):
        assert str(NullValue(3)) == "n3"

    def test_hashable(self):
        assert len({NullValue(1), NullValue(1), NullValue(2)}) == 2


class TestNullFactory:
    def test_sequential_indices(self):
        factory = NullFactory()
        assert [factory.fresh().index for _ in range(3)] == [1, 2, 3]

    def test_fresh_many(self):
        factory = NullFactory()
        nulls = list(factory.fresh_many(4))
        assert [n.index for n in nulls] == [1, 2, 3, 4]

    def test_next_index_preview(self):
        factory = NullFactory()
        assert factory.next_index == 1
        factory.fresh()
        assert factory.next_index == 2

    def test_resume_from_index(self):
        factory = NullFactory(next_index=10)
        assert factory.fresh() == NullValue(10)

    def test_rejects_bad_start(self):
        with pytest.raises(ValueError):
            NullFactory(0)


class TestMatching:
    """The matching table of Section 3.2."""

    def test_equal_data_matches_exactly(self):
        assert match_exactly("math", "math")
        assert not match_ambiguously("math", "math")

    def test_distinct_data_no_match(self):
        assert not match_exactly("math", "physics")
        assert not match_ambiguously("math", "physics")
        assert not matches("math", "physics")

    def test_same_null_matches_exactly(self):
        assert match_exactly(NullValue(1), NullValue(1))
        assert not match_ambiguously(NullValue(1), NullValue(1))

    def test_distinct_nulls_match_ambiguously(self):
        assert not match_exactly(NullValue(1), NullValue(2))
        assert match_ambiguously(NullValue(1), NullValue(2))

    def test_null_vs_data_matches_ambiguously(self):
        assert match_ambiguously(NullValue(1), "math")
        assert match_ambiguously("math", NullValue(1))
        assert not match_exactly(NullValue(1), "math")

    def test_is_null(self):
        assert is_null(NullValue(1))
        assert not is_null("n1")
        assert not is_null(None)

    def test_tuples_as_product_values(self):
        assert match_exactly(("john", "math"), ("john", "math"))
        assert not matches(("john", "math"), ("john", "physics"))

    @given(st.integers(1, 50), st.integers(1, 50))
    def test_exact_and_ambiguous_disjoint_for_nulls(self, i, j):
        a, b = NullValue(i), NullValue(j)
        assert match_exactly(a, b) != match_ambiguously(a, b) or (
            not match_exactly(a, b) and not match_ambiguously(a, b)
        )

    @given(st.text(max_size=5) | st.integers(), st.text(max_size=5) | st.integers())
    def test_data_never_matches_ambiguously(self, a, b):
        assert not match_ambiguously(a, b)
