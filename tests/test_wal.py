"""Tests for write-ahead logging and crash recovery."""

from __future__ import annotations

import pytest

from repro.errors import PersistenceError
from repro.fdb import persistence
from repro.fdb.evaluate import derived_extension
from repro.fdb.logic import Truth
from repro.fdb.updates import Update, UpdateSequence
from repro.fdb.wal import LoggedDatabase, UpdateLog, checkpoint, recover
from repro.workloads.university import pupil_database, section_42_updates


@pytest.fixture
def setup(tmp_path):
    """A fresh pupil database, its snapshot, and an empty log."""
    db = pupil_database()
    snapshot = tmp_path / "snapshot.json"
    persistence.save(db, snapshot)
    log_path = tmp_path / "updates.log"
    return LoggedDatabase(db, log_path), snapshot, log_path


class TestUpdateLog:
    def test_roundtrip_entries(self, tmp_path):
        log = UpdateLog(tmp_path / "log")
        log.append(Update.ins("teach", "gauss", "cs"))
        log.append(Update.rep("teach", ("a", "b"), ("c", "d")))
        log.append(UpdateSequence((
            Update.delete("pupil", "euclid", "john"),
        ), label="fix"))
        entries = list(log.entries())
        assert [str(e) for e in entries] == [
            "INS(teach, <gauss, cs>)",
            "REP(teach, <a, b>, <c, d>)",
            "BEGIN fix { DEL(pupil, <euclid, john>) }",
        ]
        assert len(log) == 3

    def test_missing_file_is_empty(self, tmp_path):
        log = UpdateLog(tmp_path / "nope")
        assert list(log.entries()) == []
        assert not log.tail_is_torn

    def test_tuple_values_survive(self, tmp_path):
        log = UpdateLog(tmp_path / "log")
        log.append(Update.ins("grade", ("john", "math"), "A"))
        entry = next(iter(log.entries()))
        assert entry.pair == (("john", "math"), "A")

    def test_torn_tail_skipped(self, tmp_path):
        log = UpdateLog(tmp_path / "log")
        log.append(Update.ins("teach", "a", "b"))
        with log.path.open("a", encoding="utf-8") as handle:
            handle.write('{"kind": "INS", "function": "te')  # crash!
        assert log.tail_is_torn
        assert len(list(log.entries())) == 1

    def test_interior_corruption_raises(self, tmp_path):
        log = UpdateLog(tmp_path / "log")
        log.append(Update.ins("teach", "a", "b"))
        with log.path.open("a", encoding="utf-8") as handle:
            handle.write("garbage\n")
        log.append(Update.ins("teach", "c", "d"))
        with pytest.raises(PersistenceError):
            list(log.entries())

    def test_truncate(self, tmp_path):
        log = UpdateLog(tmp_path / "log")
        log.append(Update.ins("teach", "a", "b"))
        log.truncate()
        assert len(log) == 0


class TestLoggedDatabase:
    def test_front_door_logs_and_applies(self, setup):
        logged, _, log_path = setup
        logged.insert("teach", "gauss", "cs")
        logged.delete("teach", "gauss", "cs")
        logged.replace("teach", ("euclid", "math"), ("euclid", "cs"))
        assert len(UpdateLog(log_path)) == 3
        assert logged.db.truth_of("teach", "euclid", "cs") is Truth.TRUE

    def test_log_written_before_apply(self, setup):
        """A failing update still leaves its log entry (write-ahead):
        recovery replays it and fails the same way — or, as here, the
        entry simply targets an unknown function and recovery would
        surface the same error. We check the ordering contract only."""
        logged, _, log_path = setup
        with pytest.raises(Exception):
            logged.insert("no_such", "a", "b")
        assert len(UpdateLog(log_path)) == 1


class TestRecovery:
    def test_replay_reproduces_state(self, setup):
        logged, snapshot, log_path = setup
        for update in section_42_updates():
            logged.execute(update)
        report = recover(snapshot, log_path)
        assert report.entries_applied == 5
        assert not report.torn_tail
        assert derived_extension(report.db, "pupil") == (
            derived_extension(logged.db, "pupil")
        )
        for name in logged.db.base_names:
            assert report.db.table(name).rows() == (
                logged.db.table(name).rows()
            )

    def test_recovery_with_torn_tail(self, setup):
        logged, snapshot, log_path = setup
        logged.insert("teach", "gauss", "cs")
        with log_path.open("a", encoding="utf-8") as handle:
            handle.write('{"kind": "DEL", "fun')  # crash mid-write
        report = recover(snapshot, log_path)
        assert report.torn_tail
        assert report.entries_applied == 1
        assert report.db.truth_of("teach", "gauss", "cs") is Truth.TRUE
        assert "torn tail skipped" in str(report)

    def test_checkpoint_truncates_and_recovers(self, setup, tmp_path):
        logged, snapshot, log_path = setup
        logged.execute(Update.delete("pupil", "euclid", "john"))
        checkpoint(logged, snapshot)
        assert len(UpdateLog(log_path)) == 0
        logged.insert("class_list", "math", "john")  # post-checkpoint
        report = recover(snapshot, log_path)
        assert report.entries_applied == 1
        # The pre-checkpoint NC state came from the snapshot; the
        # post-checkpoint insert dismantled it on both copies.
        assert len(report.db.ncs) == 0
        assert len(logged.db.ncs) == 0

    def test_sequences_replay_atomically(self, setup):
        logged, snapshot, log_path = setup
        logged.execute(UpdateSequence((
            Update.delete("pupil", "euclid", "john"),
            Update.ins("pupil", "gauss", "bill"),
        )))
        report = recover(snapshot, log_path)
        assert report.entries_applied == 1
        assert report.db.truth_of("pupil", "gauss", "bill") is Truth.TRUE
        assert len(report.db.ncs) == 1

    def test_null_indices_reproduced(self, setup):
        logged, snapshot, log_path = setup
        logged.insert("pupil", "gauss", "bill")  # burns n1
        report = recover(snapshot, log_path)
        assert report.db.table("teach").rows() == (
            logged.db.table("teach").rows()
        )
        assert report.db.nulls.next_index == logged.db.nulls.next_index
