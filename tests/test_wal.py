"""Tests for write-ahead logging and crash recovery."""

from __future__ import annotations

import pytest

from repro.errors import PersistenceError
from repro.fdb import persistence
from repro.fdb.evaluate import derived_extension
from repro.fdb.logic import Truth
from repro.fdb.updates import Update, UpdateSequence
from repro.fdb.wal import LoggedDatabase, UpdateLog, checkpoint, recover
from repro.workloads.university import pupil_database, section_42_updates


@pytest.fixture
def setup(tmp_path):
    """A fresh pupil database, its snapshot, and an empty log."""
    db = pupil_database()
    snapshot = tmp_path / "snapshot.json"
    persistence.save(db, snapshot)
    log_path = tmp_path / "updates.log"
    return LoggedDatabase(db, log_path), snapshot, log_path


class TestUpdateLog:
    def test_roundtrip_entries(self, tmp_path):
        log = UpdateLog(tmp_path / "log")
        log.append(Update.ins("teach", "gauss", "cs"))
        log.append(Update.rep("teach", ("a", "b"), ("c", "d")))
        log.append(UpdateSequence((
            Update.delete("pupil", "euclid", "john"),
        ), label="fix"))
        entries = list(log.entries())
        assert [str(e) for e in entries] == [
            "INS(teach, <gauss, cs>)",
            "REP(teach, <a, b>, <c, d>)",
            "BEGIN fix { DEL(pupil, <euclid, john>) }",
        ]
        assert len(log) == 3

    def test_missing_file_is_empty(self, tmp_path):
        log = UpdateLog(tmp_path / "nope")
        assert list(log.entries()) == []
        assert not log.tail_is_torn

    def test_tuple_values_survive(self, tmp_path):
        log = UpdateLog(tmp_path / "log")
        log.append(Update.ins("grade", ("john", "math"), "A"))
        entry = next(iter(log.entries()))
        assert entry.pair == (("john", "math"), "A")

    def test_torn_tail_skipped(self, tmp_path):
        log = UpdateLog(tmp_path / "log")
        log.append(Update.ins("teach", "a", "b"))
        with log.path.open("a", encoding="utf-8") as handle:
            handle.write('{"kind": "INS", "function": "te')  # crash!
        assert log.tail_is_torn
        assert len(list(log.entries())) == 1

    def test_interior_corruption_raises(self, tmp_path):
        log = UpdateLog(tmp_path / "log")
        log.append(Update.ins("teach", "a", "b"))
        with log.path.open("a", encoding="utf-8") as handle:
            handle.write("garbage\n")
        log.append(Update.ins("teach", "c", "d"))
        with pytest.raises(PersistenceError):
            list(log.entries())

    def test_truncate(self, tmp_path):
        log = UpdateLog(tmp_path / "log")
        log.append(Update.ins("teach", "a", "b"))
        log.truncate()
        assert len(log) == 0


class TestLoggedDatabase:
    def test_front_door_logs_and_applies(self, setup):
        logged, _, log_path = setup
        logged.insert("teach", "gauss", "cs")
        logged.delete("teach", "gauss", "cs")
        logged.replace("teach", ("euclid", "math"), ("euclid", "cs"))
        assert len(UpdateLog(log_path)) == 3
        assert logged.db.truth_of("teach", "euclid", "cs") is Truth.TRUE

    def test_invalid_update_never_logged(self, setup):
        """Validate-then-log: an update the schema cannot apply is
        rejected *before* it reaches the log, so replay can never
        diverge by re-running an update the live database refused."""
        logged, _, log_path = setup
        with pytest.raises(Exception):
            logged.insert("no_such", "a", "b")
        assert len(UpdateLog(log_path)) == 0

    def test_failed_apply_is_compensated(self, setup):
        """If applying a logged update fails, the memory state rolls
        back and an abort record lands in the log — replay skips the
        entry and matches the live state exactly."""
        from repro.faults import ErrorFault, FAULTS

        logged, snapshot, log_path = setup
        logged.insert("teach", "gauss", "cs")
        FAULTS.arm("wal.apply.before", ErrorFault(times=1))
        try:
            with pytest.raises(RuntimeError):
                logged.insert("teach", "noether", "algebra")
        finally:
            FAULTS.disarm_all()
        # Rolled back in memory...
        assert logged.db.table("teach").get("noether", "algebra") is None
        # ... and compensated on disk: one committed entry remains.
        assert len(UpdateLog(log_path)) == 1
        report = recover(snapshot, log_path)
        assert report.entries_applied == 1
        assert report.aborted == 1
        for name in logged.db.base_names:
            assert report.db.table(name).rows() == (
                logged.db.table(name).rows()
            )


class TestRecovery:
    def test_replay_reproduces_state(self, setup):
        logged, snapshot, log_path = setup
        for update in section_42_updates():
            logged.execute(update)
        report = recover(snapshot, log_path)
        assert report.entries_applied == 5
        assert not report.torn_tail
        assert derived_extension(report.db, "pupil") == (
            derived_extension(logged.db, "pupil")
        )
        for name in logged.db.base_names:
            assert report.db.table(name).rows() == (
                logged.db.table(name).rows()
            )

    def test_recovery_with_torn_tail(self, setup):
        logged, snapshot, log_path = setup
        logged.insert("teach", "gauss", "cs")
        with log_path.open("a", encoding="utf-8") as handle:
            handle.write('{"kind": "DEL", "fun')  # crash mid-write
        report = recover(snapshot, log_path)
        assert report.torn_tail
        assert report.entries_applied == 1
        assert report.db.truth_of("teach", "gauss", "cs") is Truth.TRUE
        assert "torn tail skipped" in str(report)

    def test_checkpoint_truncates_and_recovers(self, setup, tmp_path):
        logged, snapshot, log_path = setup
        logged.execute(Update.delete("pupil", "euclid", "john"))
        checkpoint(logged, snapshot)
        assert len(UpdateLog(log_path)) == 0
        logged.insert("class_list", "math", "john")  # post-checkpoint
        report = recover(snapshot, log_path)
        assert report.entries_applied == 1
        # The pre-checkpoint NC state came from the snapshot; the
        # post-checkpoint insert dismantled it on both copies.
        assert len(report.db.ncs) == 0
        assert len(logged.db.ncs) == 0

    def test_sequences_replay_atomically(self, setup):
        logged, snapshot, log_path = setup
        logged.execute(UpdateSequence((
            Update.delete("pupil", "euclid", "john"),
            Update.ins("pupil", "gauss", "bill"),
        )))
        report = recover(snapshot, log_path)
        assert report.entries_applied == 1
        assert report.db.truth_of("pupil", "gauss", "bill") is Truth.TRUE
        assert len(report.db.ncs) == 1

    def test_null_indices_reproduced(self, setup):
        logged, snapshot, log_path = setup
        logged.insert("pupil", "gauss", "bill")  # burns n1
        report = recover(snapshot, log_path)
        assert report.db.table("teach").rows() == (
            logged.db.table("teach").rows()
        )
        assert report.db.nulls.next_index == logged.db.nulls.next_index


def _corrupt_crc(log_path, line_index):
    """Flip the stored CRC of one record, leaving the line parseable."""
    import json

    lines = log_path.read_text(encoding="utf-8").splitlines()
    record = json.loads(lines[line_index])
    record["crc"] = (record["crc"] + 1) & 0xFFFFFFFF
    lines[line_index] = json.dumps(record, sort_keys=True)
    log_path.write_text("\n".join(lines) + "\n", encoding="utf-8")


class TestRecoveryEdgeCases:
    def test_empty_log_file(self, setup):
        logged, snapshot, log_path = setup
        log_path.write_text("", encoding="utf-8")
        report = recover(snapshot, log_path)
        assert report.entries_applied == 0
        assert not report.torn_tail

    def test_blank_interior_lines_ignored(self, setup):
        logged, snapshot, log_path = setup
        logged.insert("teach", "gauss", "cs")
        with log_path.open("a", encoding="utf-8") as handle:
            handle.write("\n   \n")
        logged.insert("teach", "noether", "algebra")
        report = recover(snapshot, log_path)
        assert report.entries_applied == 2
        assert report.records_skipped == 0

    def test_checksum_failure_strict_raises(self, setup):
        logged, snapshot, log_path = setup
        logged.insert("teach", "gauss", "cs")
        logged.insert("teach", "noether", "algebra")
        _corrupt_crc(log_path, 0)
        with pytest.raises(PersistenceError, match="checksum"):
            recover(snapshot, log_path, policy="strict")

    def test_checksum_failure_salvage_skips_with_report(self, setup):
        logged, snapshot, log_path = setup
        logged.insert("teach", "gauss", "cs")
        logged.insert("teach", "noether", "algebra")
        _corrupt_crc(log_path, 0)
        report = recover(snapshot, log_path, policy="salvage")
        assert report.entries_applied == 1
        assert report.records_skipped == 1
        assert report.checksum_failures == 1
        assert any("checksum" in note for note in report.notes)
        # The surviving record still replayed.
        assert report.db.truth_of(
            "teach", "noether", "algebra") is Truth.TRUE

    def test_legacy_v1_log_replays(self, setup):
        """Pre-checksum logs — bare entry objects, no v/seq/crc —
        still recover."""
        import json

        from repro.fdb.wal import _encode_entry

        logged, snapshot, log_path = setup
        lines = [
            json.dumps(_encode_entry(Update.ins("teach", "gauss", "cs"))),
            json.dumps(_encode_entry(UpdateSequence((
                Update.delete("teach", "gauss", "cs"),
            ), label="legacy"))),
        ]
        log_path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        report = recover(snapshot, log_path)
        assert report.entries_applied == 2
        assert report.legacy_records == 2
        assert report.db.truth_of("teach", "gauss", "cs") is not Truth.TRUE

    def test_sequence_gap_strict_vs_salvage(self, setup):
        logged, snapshot, log_path = setup
        for update in section_42_updates():
            logged.execute(update)
        lines = log_path.read_text(encoding="utf-8").splitlines()
        del lines[2]  # open a hole in the sequence
        log_path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(PersistenceError, match="gap"):
            recover(snapshot, log_path, policy="strict")
        report = recover(snapshot, log_path, policy="salvage")
        assert report.entries_applied == 4
        assert any("gap" in note for note in report.notes)

    @pytest.mark.parametrize("prefix", range(6))
    def test_committed_prefix_replay_is_deterministic(
            self, tmp_path, prefix):
        """The property the whole log design rests on: replaying any
        committed prefix over the snapshot equals applying that prefix
        directly — twice over, since recovery itself must be
        deterministic too."""
        from repro.fdb.updates import apply_update
        from repro.workloads.university import pupil_database

        updates = section_42_updates()[:prefix]
        snapshot = tmp_path / "snapshot.json"
        log_path = tmp_path / "wal.log"
        db = pupil_database()
        persistence.save(db, snapshot)
        logged = LoggedDatabase(db, log_path)
        for update in updates:
            logged.execute(update)

        oracle = pupil_database()
        for update in updates:
            apply_update(oracle, update)

        for _ in range(2):
            report = recover(snapshot, log_path)
            assert report.entries_applied == prefix
            for name in oracle.base_names:
                assert report.db.table(name).rows() == (
                    oracle.table(name).rows()
                )
            assert report.db.nulls.next_index == oracle.nulls.next_index
            assert report.db.ncs.next_index == oracle.ncs.next_index


class TestShippingSurface:
    """The log plumbing replication rides on: term stamping, record
    ranges, the checkpoint floor, fence truncation, tear discard and
    the health verdict."""

    def test_term_stamped_and_omitted_when_zero(self, tmp_path):
        import json

        plain = UpdateLog(tmp_path / "plain.log")
        plain.append(Update.ins("teach", "gauss", "cs"))
        raw = json.loads(
            (tmp_path / "plain.log").read_text().splitlines()[0]
        )
        assert "term" not in raw  # byte-compat with pre-replication logs

        fenced = UpdateLog(tmp_path / "fenced.log", term=3)
        fenced.append(Update.ins("teach", "gauss", "cs"))
        raw = json.loads(
            (tmp_path / "fenced.log").read_text().splitlines()[0]
        )
        assert raw["term"] == 3

    def test_execute_returns_the_wal_seq(self, setup):
        logged, _, _ = setup
        seqs = [logged.execute(u) for u in section_42_updates()[:3]]
        assert seqs == [1, 2, 3]
        assert logged.log.last_seq() == 3

    def test_records_between_skips_headers_and_ships_aborts(
            self, setup):
        from repro.faults import ErrorFault, FAULTS

        logged, snapshot, log_path = setup
        logged.execute(Update.ins("teach", "gauss", "math"))
        checkpoint(logged, snapshot)  # leaves a header record
        logged.execute(Update.ins("teach", "noether", "math"))
        FAULTS.arm("wal.apply.before", ErrorFault(times=1))
        try:
            with pytest.raises(RuntimeError):
                logged.execute(Update.ins("teach", "hilbert", "math"))
        finally:
            FAULTS.disarm_all()
        records = logged.log.records_between(1, logged.log.last_seq())
        seqs = [seq for seq, _ in records]
        assert seqs == sorted(seqs)
        assert 1 not in seqs  # folded by the checkpoint
        import json

        payloads = [json.loads(line) for _, line in records]
        assert all("header" not in p for p in payloads)
        # the failed entry AND its compensation both ship
        assert any("abort_of" in p for p in payloads)
        aborted = {p["abort_of"] for p in payloads if "abort_of" in p}
        assert aborted <= set(seqs)

    def test_shippable_floor_tracks_checkpoints(self, setup):
        logged, snapshot, _ = setup
        assert logged.log.shippable_floor() == 0
        logged.execute(Update.ins("teach", "gauss", "math"))
        logged.execute(Update.ins("teach", "noether", "math"))
        checkpoint(logged, snapshot)
        assert logged.log.shippable_floor() == 2
        assert logged.log.records_between(0, 2) == []

    def test_truncate_to_drops_the_tail(self, setup):
        logged, _, _ = setup
        for update in section_42_updates()[:4]:
            logged.execute(update)
        dropped = logged.log.truncate_to(2)
        assert dropped == 2
        assert logged.log.last_seq() == 2
        assert logged.log.truncate_to(2) == 0  # idempotent
        # appends resume from the cut, not the old high-water mark
        logged2 = LoggedDatabase(pupil_database(), logged.log)
        assert logged.log.append(Update.ins("teach", "x", "y")) == 3

    def test_discard_torn_tail(self, setup):
        logged, _, log_path = setup
        for update in section_42_updates()[:2]:
            logged.execute(update)
        with log_path.open("a", encoding="utf-8") as handle:
            handle.write('{"v": 2, "seq": 3, "cr')  # mid-write crash
        log = UpdateLog(log_path)
        assert log.tail_is_torn
        assert log.discard_torn_tail() is True
        assert not log.tail_is_torn
        assert log.last_seq() == 2
        assert log.discard_torn_tail() is False

    def test_health_verdict(self, setup):
        logged, _, log_path = setup
        logged.log.term = 2
        for update in section_42_updates()[:3]:
            logged.execute(update)
        health = logged.log.health()
        assert health["last_seq"] == 3
        assert health["term"] == 2
        assert health["tail_torn"] is False
        assert health["entries"] == 3
        assert health["aborted"] == 0
        assert health["checksum_failures"] == 0
        with log_path.open("a", encoding="utf-8") as handle:
            handle.write('{"v": 2, "seq": 4, "cr')
        torn = UpdateLog(log_path).health()
        assert torn["tail_torn"] is True

    def test_health_cached_until_log_changes(self, setup, monkeypatch):
        """Monitoring scrapes (/metrics, /health, stats) must not pay
        a full salvage scan per request: health() reuses its scan
        until the log's (size, mtime) changes."""
        logged, _, _ = setup
        for update in section_42_updates()[:2]:
            logged.execute(update)
        log = logged.log
        scans = []
        real_scan = log._scan

        def counting_scan(policy):
            scans.append(policy)
            return real_scan(policy)

        monkeypatch.setattr(log, "_scan", counting_scan)
        first = log.health()
        assert first["last_seq"] == 2
        assert len(scans) == 1
        assert log.health() == first  # a second scrape: cache hit
        assert len(scans) == 1
        # the cached view still tracks live (non-scan) state
        log.term = 7
        assert log.health()["term"] == 7
        assert len(scans) == 1
        # an append invalidates the cache and the next scrape rescans
        logged.execute(section_42_updates()[2])
        refreshed = log.health()
        assert refreshed["last_seq"] == 3
        assert len(scans) == 2
