"""Tests for the workload generators (determinism, well-formedness,
cross-model consistency)."""

from __future__ import annotations

import pytest

from repro.core.graph import FunctionGraph
from repro.core.minimal_schema import minimal_schema_ams
from repro.fdb.evaluate import derived_extension
from repro.fdb.logic import Truth
from repro.fdb.updates import apply_update
from repro.workloads.generator import (
    WorkloadConfig,
    chain_fdb,
    cyclic_design_schema,
    paired_chain_workload,
    random_instance,
    random_updates,
    tree_schema_with_derived,
)


class TestTreeSchema:
    def test_deterministic(self):
        a = tree_schema_with_derived(15, 4, seed=5)
        b = tree_schema_with_derived(15, 4, seed=5)
        assert a == b and a.names == b.names

    def test_seed_changes_output(self):
        a = tree_schema_with_derived(15, 4, seed=5)
        b = tree_schema_with_derived(15, 4, seed=6)
        assert a != b

    def test_counts(self):
        schema = tree_schema_with_derived(15, 4, seed=5)
        assert len(schema) == (15 - 1) + 4

    def test_derived_have_matching_derivations(self):
        """Each chord's functionality equals its tree path's, so it is a
        genuine candidate derived function."""
        schema = tree_schema_with_derived(12, 5, seed=2)
        tree = schema.restricted_to(
            n for n in schema.names if n.startswith("f")
        )
        graph = FunctionGraph.of_schema(tree)
        for name in schema.names:
            if not name.startswith("d"):
                continue
            assert graph.has_equivalent_walk(schema[name]), name

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            tree_schema_with_derived(1, 0)

    def test_impossible_placement_rejected(self):
        # Two types -> all paths have length 1, but chords need >= 2.
        with pytest.raises(ValueError):
            tree_schema_with_derived(2, 1, seed=0)


class TestCyclicSchema:
    def test_structure(self):
        schema = cyclic_design_schema(3, path_length=2)
        assert len(schema) == 3 * 2 + 1
        assert "closer" in schema

    def test_closer_creates_n_cycles(self):
        schema = cyclic_design_schema(4, path_length=2)
        graph = FunctionGraph.of_schema(schema)
        cycles = list(graph.cycles_through("closer"))
        assert len(cycles) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            cyclic_design_schema(0)
        with pytest.raises(ValueError):
            cyclic_design_schema(2, path_length=0)


class TestChainFdb:
    def test_shape(self):
        db = chain_fdb(3)
        assert db.base_names == ("f1", "f2", "f3")
        assert db.derived_names == ("v",)
        assert str(db.derived("v").primary) == "f1 o f2 o f3"

    def test_k1(self):
        db = chain_fdb(1)
        assert db.base_names == ("f1",)

    def test_validation(self):
        with pytest.raises(ValueError):
            chain_fdb(0)


class TestRandomInstance:
    def test_sizes(self):
        db = chain_fdb(2)
        random_instance(db, 20, seed=1, value_pool=30)
        assert len(db.table("f1")) == 20
        assert len(db.table("f2")) == 20

    def test_deterministic(self):
        a = chain_fdb(2)
        b = chain_fdb(2)
        random_instance(a, 10, seed=3)
        random_instance(b, 10, seed=3)
        assert a.table("f1").rows() == b.table("f1").rows()

    def test_small_pool_caps_rows(self):
        db = chain_fdb(2)
        random_instance(db, 100, seed=1, value_pool=3)  # max 9 pairs
        assert len(db.table("f1")) <= 9


class TestRandomUpdates:
    def test_all_updates_applicable(self):
        db = chain_fdb(2)
        random_instance(db, 15, seed=4, value_pool=8)
        updates = random_updates(db, 40, WorkloadConfig(seed=9))
        assert len(updates) == 40
        for update in updates:
            apply_update(db, update)  # must not raise

    def test_deterministic(self):
        db = chain_fdb(2)
        random_instance(db, 15, seed=4)
        a = random_updates(db, 20, WorkloadConfig(seed=9))
        b = random_updates(db, 20, WorkloadConfig(seed=9))
        assert [str(u) for u in a] == [str(u) for u in b]

    def test_respects_mix(self):
        db = chain_fdb(2)
        random_instance(db, 15, seed=4)
        config = WorkloadConfig(
            seed=1, base_insert=1.0, base_delete=0.0,
            derived_insert=0.0, derived_delete=0.0,
        )
        updates = random_updates(db, 10, config)
        assert all(
            u.kind == "INS" and u.function.startswith("f") for u in updates
        )

    def test_zero_weights_rejected(self):
        config = WorkloadConfig(
            base_insert=0, base_delete=0,
            derived_insert=0, derived_delete=0,
        )
        with pytest.raises(ValueError):
            config.weights(with_derived=True)

    def test_base_only_database(self):
        from repro.fdb.database import FunctionalDatabase
        from repro.core.schema import FunctionDef
        from repro.core.types import ObjectType

        db = FunctionalDatabase()
        db.declare_base(FunctionDef(
            "f", ObjectType("A"), ObjectType("B")
        ))
        updates = random_updates(db, 10, WorkloadConfig(seed=0))
        assert all(u.function == "f" for u in updates)


class TestPairedWorkload:
    def test_view_and_derived_extensions_agree(self):
        relational, functional, targets = paired_chain_workload(
            3, 15, seed=11
        )
        view_tuples = set(
            relational.view("v").evaluate(relational).tuples
        )
        derived = {
            pair for pair, truth in
            derived_extension(functional, "v").items()
            if truth is Truth.TRUE
        }
        assert view_tuples == derived
        assert set(targets) == view_tuples

    def test_deterministic(self):
        a = paired_chain_workload(2, 10, seed=3)
        b = paired_chain_workload(2, 10, seed=3)
        assert a[2] == b[2]

    def test_validation(self):
        with pytest.raises(ValueError):
            paired_chain_workload(1, 10)


class TestUniversityFixtures:
    def test_design_trace_functions_order(self, trace_functions):
        names = [f.name for f in trace_functions]
        assert names == [
            "teach", "taught_by", "class_list", "lecturer_of", "grade",
            "attendance", "attendance_eval", "score", "cutoff",
        ]

    def test_s1_is_ufa_solvable(self, s1):
        result = minimal_schema_ams(s1)
        assert len(result.derived) == 2

    def test_pupil_database_instance(self, pupil_db):
        assert len(pupil_db.table("teach")) == 2
        assert len(pupil_db.table("class_list")) == 2
        assert pupil_db.derived_names == ("pupil",)

    def test_u_sequence_shape(self, u_sequence):
        assert [u.kind for u in u_sequence] == [
            "DEL", "INS", "DEL", "INS", "INS",
        ]
        assert [str(u) for u in u_sequence][0] == (
            "DEL(pupil, <euclid, john>)"
        )
