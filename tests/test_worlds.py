"""Tests for the possible-worlds quantification of ambiguity."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.fdb.facts import FactRef
from repro.fdb.logic import Truth
from repro.fdb.worlds import (
    EXACT_LIMIT,
    ambiguous_atoms,
    analyze,
    certain,
    count_worlds,
    derived_marginal,
    iter_worlds,
    marginal,
    possible,
)

TEACH = FactRef("teach", "euclid", "math")
CLASS = FactRef("class_list", "math", "john")


class TestCleanDatabase:
    def test_single_world(self, pupil_db):
        assert ambiguous_atoms(pupil_db) == ()
        assert count_worlds(pupil_db) == 1
        assert list(iter_worlds(pupil_db)) == [frozenset()]

    def test_true_facts_certain(self, pupil_db):
        assert marginal(pupil_db, "teach", "euclid", "math") == 1.0
        assert certain(pupil_db, "teach", "euclid", "math")

    def test_absent_facts_impossible(self, pupil_db):
        assert marginal(pupil_db, "teach", "gauss", "cs") == 0.0
        assert not possible(pupil_db, "teach", "gauss", "cs")


class TestAfterDerivedDelete:
    """DEL(pupil, <euclid, john>) leaves one NC over two facts: worlds
    are the three truth assignments with not-both-true."""

    @pytest.fixture
    def db(self, pupil_db):
        pupil_db.delete("pupil", "euclid", "john")
        return pupil_db

    def test_atoms(self, db):
        assert set(ambiguous_atoms(db)) == {TEACH, CLASS}

    def test_three_worlds(self, db):
        worlds = set(iter_worlds(db))
        assert worlds == {
            frozenset(), frozenset({TEACH}), frozenset({CLASS}),
        }
        assert count_worlds(db) == 3

    def test_member_marginals_one_third(self, db):
        assert marginal(db, "teach", "euclid", "math") == pytest.approx(1 / 3)
        assert marginal(db, "class_list", "math", "john") == pytest.approx(1 / 3)

    def test_deleted_derived_fact_impossible(self, db):
        # Its only chain needs both NC members true: in no world.
        assert derived_marginal(db, "pupil", "euclid", "john") == 0.0
        assert not possible(db, "pupil", "euclid", "john")

    def test_sibling_derived_marginals(self, db):
        # pupil(euclid, bill) needs only <teach, euclid, math>: 1/3.
        assert derived_marginal(db, "pupil", "euclid", "bill") == (
            pytest.approx(1 / 3)
        )
        # pupil(laplace, bill) needs only true facts: certain.
        assert derived_marginal(db, "pupil", "laplace", "bill") == 1.0
        assert certain(db, "pupil", "laplace", "bill")

    def test_modal_refinement(self, db):
        """An ambiguous fact is possible but not certain."""
        assert possible(db, "teach", "euclid", "math")
        assert not certain(db, "teach", "euclid", "math")


class TestTwoNCs:
    def test_overlapping_ncs(self, pupil_db):
        """NCs {teach, class_john} and {teach, class_bill}: worlds must
        violate neither."""
        pupil_db.delete("pupil", "euclid", "john")
        pupil_db.delete("pupil", "euclid", "bill")
        worlds = set(iter_worlds(pupil_db))
        class_bill = FactRef("class_list", "math", "bill")
        # Atoms: TEACH, CLASS, class_bill. Forbidden: TEACH with either
        # class fact. Allowed: {}, {T}, {Cj}, {Cb}, {Cj, Cb}.
        assert frozenset({TEACH, CLASS}) not in worlds
        assert frozenset({TEACH, class_bill}) not in worlds
        assert frozenset({CLASS, class_bill}) in worlds
        assert len(worlds) == 5

    def test_marginal_reflects_shared_member(self, pupil_db):
        pupil_db.delete("pupil", "euclid", "john")
        pupil_db.delete("pupil", "euclid", "bill")
        # TEACH is in both NCs: true in exactly 1 of 5 worlds.
        assert marginal(pupil_db, "teach", "euclid", "math") == (
            pytest.approx(1 / 5)
        )


class TestReport:
    def test_analyze(self, pupil_db):
        pupil_db.delete("pupil", "euclid", "john")
        report = analyze(pupil_db)
        assert report.exact
        assert report.atom_count == 2
        assert report.world_count == 3
        assert report.base_marginals[TEACH] == pytest.approx(1 / 3)
        assert 0 < report.entropy_like <= 0.5

    def test_clean_entropy_zero(self, pupil_db):
        assert analyze(pupil_db).entropy_like == 0.0

    def test_str(self, pupil_db):
        pupil_db.delete("pupil", "euclid", "john")
        text = str(analyze(pupil_db))
        assert "3 possible worlds" in text
        assert "P(<teach, euclid, math>)" in text


class TestDefaultLogic:
    def test_clean_db_single_preferred_world(self, pupil_db):
        from repro.fdb.worlds import default_truth, preferred_worlds

        assert preferred_worlds(pupil_db) == [frozenset()]
        assert default_truth(
            pupil_db, "teach", "euclid", "math"
        ) is Truth.TRUE

    def test_single_nc_preferred_worlds(self, pupil_db):
        from repro.fdb.worlds import preferred_worlds

        pupil_db.delete("pupil", "euclid", "john")
        preferred = set(preferred_worlds(pupil_db))
        # By default exactly one suspect is wrong, never both.
        assert preferred == {frozenset({TEACH}), frozenset({CLASS})}

    def test_default_truth_of_members(self, pupil_db):
        from repro.fdb.worlds import default_truth

        pupil_db.delete("pupil", "euclid", "john")
        # Each member holds in one of two preferred worlds: ambiguous.
        assert default_truth(
            pupil_db, "teach", "euclid", "math"
        ) is Truth.AMBIGUOUS
        # The deleted derived fact needs both: false in all preferred.
        assert default_truth(
            pupil_db, "pupil", "euclid", "john"
        ) is Truth.FALSE
        # Unrelated true facts stay true.
        assert default_truth(
            pupil_db, "pupil", "laplace", "bill"
        ) is Truth.TRUE

    def test_defaults_can_promote(self, pupil_db):
        """A fact in every maximal repair is defaulted true even though
        the three-valued verdict says ambiguous."""
        from repro.fdb.worlds import default_truth

        # Two NCs sharing teach: {T, Cj} and {T, Cb}. Worlds of max
        # size: {Cj, Cb} (size 2) only -- teach false by default, both
        # class facts defaulted true.
        pupil_db.delete("pupil", "euclid", "john")
        pupil_db.delete("pupil", "euclid", "bill")
        assert default_truth(
            pupil_db, "class_list", "math", "john"
        ) is Truth.TRUE
        assert default_truth(
            pupil_db, "teach", "euclid", "math"
        ) is Truth.FALSE
        assert pupil_db.truth_of(
            "class_list", "math", "john"
        ) is Truth.AMBIGUOUS  # 3VL stays cautious

    def test_absent_fact_false(self, pupil_db):
        from repro.fdb.worlds import default_truth

        assert default_truth(
            pupil_db, "teach", "nobody", "nothing"
        ) is Truth.FALSE


class TestSampling:
    def test_exact_limit_enforced(self, pupil_db):
        table = pupil_db.table("teach")
        for i in range(EXACT_LIMIT + 1):
            fact = table.add_pair(f"x{i}", f"y{i}")
            pupil_db.ncs.create([("teach", fact)] + [])
        with pytest.raises(ReproError):
            count_worlds(pupil_db)

    def test_sampled_marginal_close_to_exact(self, pupil_db):
        pupil_db.delete("pupil", "euclid", "john")
        exact = marginal(pupil_db, "teach", "euclid", "math")
        sampled = marginal(
            pupil_db, "teach", "euclid", "math", samples=4000, seed=1
        )
        assert abs(sampled - exact) < 0.05

    def test_sampling_deterministic_by_seed(self, pupil_db):
        pupil_db.delete("pupil", "euclid", "john")
        a = marginal(pupil_db, "teach", "euclid", "math",
                     samples=500, seed=7)
        b = marginal(pupil_db, "teach", "euclid", "math",
                     samples=500, seed=7)
        assert a == b
